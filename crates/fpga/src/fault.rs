//! Stuck-at fault simulation for netlists.
//!
//! A deployed accelerator whose comparator LUT suffers a configuration
//! upset (SEU) or a stuck net silently corrupts alignment scores. This
//! module provides classic single-stuck-at fault simulation over the
//! gate-level netlists: enumerate faults, apply one, and measure which
//! test vectors detect it — the coverage argument for the self-test
//! vectors a production bitstream would ship with.

use crate::netlist::{Netlist, NodeId, NodeKind};

/// A single stuck-at fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The node whose *output* is stuck.
    pub node: NodeId,
    /// The stuck value.
    pub stuck_at: bool,
}

impl Fault {
    /// Human-readable name (`n13/SA1` style).
    pub fn name(&self) -> String {
        format!("n{}/SA{}", self.node.index(), u8::from(self.stuck_at))
    }
}

/// Enumerates the single-stuck-at fault universe of a netlist: both
/// polarities at every LUT and register output (inputs and constants are
/// excluded — faults there are equivalent to faults at their driving
/// outputs or are environment errors).
pub fn enumerate_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for node in netlist.node_ids() {
        match netlist.node_kind(node) {
            NodeKind::Lut(..) | NodeKind::Reg { .. } | NodeKind::Carry { .. } => {
                faults.push(Fault {
                    node,
                    stuck_at: false,
                });
                faults.push(Fault {
                    node,
                    stuck_at: true,
                });
            }
            NodeKind::Input | NodeKind::Const(_) => {}
        }
    }
    faults
}

/// Builds a faulty copy of a netlist with one node's output stuck.
///
/// The stuck node becomes a constant driver, preserving node indices so
/// inputs and outputs keep their meaning.
pub fn inject_fault(netlist: &Netlist, fault: Fault) -> Netlist {
    let mut faulty = netlist.clone();
    faulty.override_node_const(fault.node, fault.stuck_at);
    faulty
}

/// Result of simulating a fault against a vector set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults detected by at least one vector.
    pub detected: Vec<Fault>,
    /// Faults no vector distinguishes from the good machine.
    pub undetected: Vec<Fault>,
}

impl FaultReport {
    /// Fault coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let total = self.detected.len() + self.undetected.len();
        if total == 0 {
            1.0
        } else {
            self.detected.len() as f64 / total as f64
        }
    }
}

/// Simulates every fault in `faults` against `vectors` (each vector is a
/// full input assignment), comparing all named outputs of the good and
/// faulty machines combinationally.
///
/// Sequential circuits are compared over `cycles` clock cycles per vector
/// (inputs held); `cycles = 1` suits combinational netlists.
pub fn simulate_faults(
    netlist: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<bool>],
    cycles: usize,
) -> FaultReport {
    let cycles = cycles.max(1);
    let outputs = netlist.named_outputs();

    // Reference responses of the good machine.
    let mut golden = Vec::with_capacity(vectors.len());
    let mut good = netlist.clone();
    for vector in vectors {
        good.reset();
        let mut responses = Vec::new();
        for _ in 0..cycles {
            good.eval(vector);
            responses.extend(outputs.iter().map(|(_, id)| good.value(*id)));
            good.clock();
        }
        golden.push(responses);
    }

    let mut detected = Vec::new();
    let mut undetected = Vec::new();
    'fault: for &fault in faults {
        let mut machine = inject_fault(netlist, fault);
        for (vector, expected) in vectors.iter().zip(&golden) {
            machine.reset();
            let mut responses = Vec::new();
            for _ in 0..cycles {
                machine.eval(vector);
                responses.extend(outputs.iter().map(|(_, id)| machine.value(*id)));
                machine.clock();
            }
            if &responses != expected {
                detected.push(fault);
                continue 'fault;
            }
        }
        undetected.push(fault);
    }

    FaultReport {
        detected,
        undetected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::build_comparator_netlist;
    use crate::popcount::{PopCounter, PopStyle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fault_universe_covers_both_polarities() {
        let (netlist, _) = build_comparator_netlist();
        let faults = enumerate_faults(&netlist);
        // Two LUTs × two polarities.
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().any(|f| f.name().ends_with("SA0")));
        assert!(faults.iter().any(|f| f.name().ends_with("SA1")));
    }

    #[test]
    fn exhaustive_vectors_detect_all_comparator_faults() {
        let (netlist, _) = build_comparator_netlist();
        let faults = enumerate_faults(&netlist);
        // Exhaustive 11-bit input space.
        let vectors: Vec<Vec<bool>> = (0u32..(1 << 11))
            .map(|v| (0..11).map(|b| (v >> b) & 1 == 1).collect())
            .collect();
        let report = simulate_faults(&netlist, &faults, &vectors, 1);
        assert_eq!(
            report.coverage(),
            1.0,
            "undetected: {:?}",
            report.undetected
        );
    }

    #[test]
    fn random_vectors_reach_high_coverage_on_pop36() {
        let pc = PopCounter::build(36, PopStyle::HandCrafted);
        let faults = enumerate_faults(pc.netlist());
        let mut rng = StdRng::seed_from_u64(0xFA17);
        let vectors: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..36).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let report = simulate_faults(pc.netlist(), &faults, &vectors, 1);
        assert!(
            report.coverage() > 0.95,
            "coverage {:.2}, undetected {:?}",
            report.coverage(),
            report.undetected.len()
        );
    }

    #[test]
    fn empty_vector_set_detects_nothing() {
        let (netlist, _) = build_comparator_netlist();
        let faults = enumerate_faults(&netlist);
        let report = simulate_faults(&netlist, &faults, &[], 1);
        assert!(report.detected.is_empty());
        assert_eq!(report.undetected.len(), faults.len());
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn injected_fault_changes_behaviour() {
        let (netlist, _) = build_comparator_netlist();
        // Stick the output LUT at 1: everything "matches".
        let out_fault = enumerate_faults(&netlist)
            .into_iter()
            .rev()
            .find(|f| f.stuck_at)
            .unwrap();
        let mut faulty = inject_fault(&netlist, out_fault);
        let mut good = netlist.clone();
        let zeros = vec![false; 11];
        good.eval(&zeros);
        faulty.eval(&zeros);
        // Good machine: exact-match A against A -> matches (both zero);
        // comparing with a mismatching vector must differ somewhere.
        let mut differs = false;
        for v in 0..(1u32 << 11) {
            let vector: Vec<bool> = (0..11).map(|b| (v >> b) & 1 == 1).collect();
            good.eval(&vector);
            faulty.eval(&vector);
            if good.output_value("match") != faulty.output_value("match") {
                differs = true;
                break;
            }
        }
        assert!(differs, "SA1 at the output must be observable");
    }

    #[test]
    fn coverage_of_empty_universe_is_one() {
        let report = FaultReport {
            detected: vec![],
            undetected: vec![],
        };
        assert_eq!(report.coverage(), 1.0);
    }
}
