//! A small structural netlist of FPGA primitives.
//!
//! The comparator and Pop-Counter modules are built as netlists of
//! [`Lut6`]s and [`FlipFlop`]s — the same primitives the paper's RTL
//! directly instantiates (§III-D) — so their resource footprints can be
//! *counted* rather than guessed, and their behaviour simulated gate by
//! gate.
//!
//! The netlist is a DAG of combinational nodes plus registers; [`Netlist::eval`]
//! computes all node values for given inputs, and [`Netlist::clock`]
//! advances the registers.

use crate::primitives::{FlipFlop, Lut6};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Sentinel id of an unconnected (dangling) pin — used for registers
    /// created with [`Netlist::reg_dangling`] before [`Netlist::connect_reg`],
    /// and by the lint defect-injection helpers to model a cut wire.
    pub const DANGLING: NodeId = NodeId(u32::MAX);

    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` when this id is the [`NodeId::DANGLING`] sentinel.
    pub fn is_dangling(self) -> bool {
        self == NodeId::DANGLING
    }
}

#[derive(Debug, Clone)]
enum Node {
    /// External input, set before each evaluation.
    Input,
    /// Constant 0 or 1.
    Const(bool),
    /// A LUT6 driven by six other nodes.
    Lut(Lut6, [NodeId; 6]),
    /// A carry-chain element: `cout = majority(a, b, cin)`. Models the
    /// dedicated CARRY4 silicon, so it does not count as a LUT.
    Carry { a: NodeId, b: NodeId, cin: NodeId },
    /// A register; its combinational value is the stored `Q`.
    Reg { d: NodeId },
}

/// Public, read-only view of a netlist node's kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// External input.
    Input,
    /// Constant driver.
    Const(bool),
    /// A LUT6 with its truth table and six input pins.
    Lut(Lut6, [NodeId; 6]),
    /// Carry-chain element `cout = majority(a, b, cin)`.
    Carry {
        /// First operand bit.
        a: NodeId,
        /// Second operand bit.
        b: NodeId,
        /// Carry input.
        cin: NodeId,
    },
    /// Register; `d` is its data input.
    Reg {
        /// Data input node.
        d: NodeId,
    },
}

/// Description of one seeded defect, returned by the defect-injection
/// helpers ([`Netlist::rewire_lut_pin`], [`Netlist::set_lut_table`],
/// [`Netlist::disconnect_reg`], [`Netlist::override_node_const`]) so
/// adversarial tests can assert that downstream analyses — DRC findings
/// and `fabp-verify` equivalence counterexamples — localise to the
/// injected cone rather than merely firing somewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionSite {
    /// The mutated node.
    pub node: NodeId,
    /// Machine-readable mutation kind: `rewire-lut-pin`,
    /// `set-lut-table`, `disconnect-reg` or `override-const`.
    pub kind: &'static str,
    /// Human description of the change (old vs. new state).
    pub detail: String,
}

impl fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@n{}: {}", self.kind, self.node.index(), self.detail)
    }
}

/// Resource count of a netlist (or an analytical module estimate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceCount {
    /// Number of LUT6 primitives.
    pub luts: usize,
    /// Number of flip-flops.
    pub ffs: usize,
    /// Number of DSP slices.
    pub dsps: usize,
    /// BRAM bits.
    pub bram_bits: usize,
}

impl ResourceCount {
    /// A zero count.
    pub const fn zero() -> ResourceCount {
        ResourceCount {
            luts: 0,
            ffs: 0,
            dsps: 0,
            bram_bits: 0,
        }
    }

    /// Component-wise sum.
    #[allow(clippy::should_implement_trait)] // established call sites; value semantics
    pub fn add(self, other: ResourceCount) -> ResourceCount {
        ResourceCount {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            dsps: self.dsps + other.dsps,
            bram_bits: self.bram_bits + other.bram_bits,
        }
    }

    /// Component-wise scale.
    pub fn scale(self, n: usize) -> ResourceCount {
        ResourceCount {
            luts: self.luts * n,
            ffs: self.ffs * n,
            dsps: self.dsps * n,
            bram_bits: self.bram_bits * n,
        }
    }
}

impl std::ops::Add for ResourceCount {
    type Output = ResourceCount;

    fn add(self, rhs: ResourceCount) -> ResourceCount {
        ResourceCount::add(self, rhs)
    }
}

impl std::iter::Sum for ResourceCount {
    fn sum<I: Iterator<Item = ResourceCount>>(iter: I) -> ResourceCount {
        iter.fold(ResourceCount::zero(), ResourceCount::add)
    }
}

impl fmt::Display for ResourceCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} DSPs, {} BRAM bits",
            self.luts, self.ffs, self.dsps, self.bram_bits
        )
    }
}

/// A gate-level netlist of LUT6s, registers and constants.
///
/// Nodes must be added in topological order for combinational paths
/// (a LUT's inputs must already exist), which the builder enforces by
/// construction since [`NodeId`]s are only obtainable for existing nodes.
/// Registers may close cycles: a register's `d` input can be set *after*
/// creation via [`Netlist::connect_reg`], enabling feedback (accumulators).
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    nodes: Vec<Node>,
    regs: Vec<(NodeId, FlipFlop)>, // (register node, state)
    /// node index -> position in `regs` (registers only).
    reg_lookup: HashMap<u32, usize>,
    outputs: HashMap<String, NodeId>,
    values: Vec<bool>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Netlist {
        Netlist::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.nodes.push(node);
        self.values.push(false);
        id
    }

    /// Adds an external input.
    pub fn input(&mut self) -> NodeId {
        self.push(Node::Input)
    }

    /// Adds `n` external inputs.
    pub fn inputs(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Node::Const(value))
    }

    /// Adds a LUT6 node.
    pub fn lut(&mut self, lut: Lut6, inputs: [NodeId; 6]) -> NodeId {
        for input in inputs {
            assert!(
                input.index() < self.nodes.len(),
                "LUT input {input:?} does not exist"
            );
        }
        self.push(Node::Lut(lut, inputs))
    }

    /// Adds a LUT computing a function of up to six nodes; unused inputs
    /// are tied to constant 0.
    ///
    /// Like a synthesizer, this folds the LUT into a constant driver when
    /// its output cannot vary given the constant pins (see
    /// [`Netlist::lut_folded`]).
    pub fn lut_fn<F: FnMut(u8) -> bool>(&mut self, inputs: &[NodeId], f: F) -> NodeId {
        assert!(inputs.len() <= 6, "a LUT6 has at most 6 inputs");
        let zero = self.constant(false);
        let mut pins = [zero; 6];
        pins[..inputs.len()].copy_from_slice(inputs);
        self.lut_folded(Lut6::from_fn(f), pins)
    }

    /// Adds a LUT like [`Netlist::lut`], but constant-folds it away when
    /// the truth table, restricted to the current values of any
    /// constant-driven pins, no longer depends on the live pins — exactly
    /// what synthesis does to a cone whose inputs are partly tied off.
    ///
    /// Returns the LUT node, or a constant node when the cone folds.
    pub fn lut_folded(&mut self, lut: Lut6, pins: [NodeId; 6]) -> NodeId {
        for pin in pins {
            assert!(
                pin.index() < self.nodes.len(),
                "LUT input {pin:?} does not exist"
            );
        }
        match self.projected_lut_value(lut, pins) {
            Some(v) => self.constant(v),
            None => self.lut(lut, pins),
        }
    }

    /// The constant value a LUT would always produce given the constant
    /// pins among `pins`, or `None` if the output still depends on a live
    /// pin. Addresses are enumerated only over the free (non-constant)
    /// pins.
    fn projected_lut_value(&self, lut: Lut6, pins: [NodeId; 6]) -> Option<bool> {
        let mut fixed_mask = 0u8;
        let mut fixed_bits = 0u8;
        let mut free = Vec::new();
        for (bit, pin) in pins.iter().enumerate() {
            match self.const_value(*pin) {
                Some(v) => {
                    fixed_mask |= 1 << bit;
                    fixed_bits |= (v as u8) << bit;
                }
                None => free.push(bit),
            }
        }
        let mut value = None;
        for combo in 0u8..(1 << free.len()) {
            let mut addr = fixed_bits & fixed_mask;
            for (k, &bit) in free.iter().enumerate() {
                addr |= ((combo >> k) & 1) << bit;
            }
            let out = lut.eval_addr(addr);
            match value {
                None => value = Some(out),
                Some(v) if v != out => return None,
                Some(_) => {}
            }
        }
        value
    }

    /// Adds a carry-chain element computing `majority(a, b, cin)` — the
    /// carry-out of a full adder. Free of LUT cost (dedicated CARRY4
    /// silicon).
    pub fn carry(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> NodeId {
        for pin in [a, b, cin] {
            assert!(
                pin.index() < self.nodes.len(),
                "carry input {pin:?} does not exist"
            );
        }
        self.push(Node::Carry { a, b, cin })
    }

    /// Adds a register with a dangling `d` input (connect later with
    /// [`Netlist::connect_reg`]), returning its node id.
    pub fn reg_dangling(&mut self) -> NodeId {
        let id = self.push(Node::Reg {
            d: NodeId::DANGLING,
        });
        self.reg_lookup.insert(id.0, self.regs.len());
        self.regs.push((id, FlipFlop::new()));
        id
    }

    /// Adds a register driven by `d`.
    pub fn reg(&mut self, d: NodeId) -> NodeId {
        let id = self.push(Node::Reg { d });
        self.reg_lookup.insert(id.0, self.regs.len());
        self.regs.push((id, FlipFlop::new()));
        id
    }

    /// Connects (or reconnects) a register's `d` input; used to close
    /// feedback loops.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register node.
    pub fn connect_reg(&mut self, reg: NodeId, d: NodeId) {
        match &mut self.nodes[reg.index()] {
            Node::Reg { d: slot } => *slot = d,
            other => panic!("{reg:?} is not a register: {other:?}"),
        }
    }

    /// Replaces a node with a constant driver — the mechanism behind
    /// stuck-at fault injection (`fault` module). Registers lose their
    /// state entry (a stuck output ignores the clock). Returns the
    /// [`InjectionSite`].
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn override_node_const(&mut self, node: NodeId, value: bool) -> InjectionSite {
        assert!(node.index() < self.nodes.len(), "no node {node:?}");
        let was = format!("{:?}", self.nodes[node.index()]);
        self.nodes[node.index()] = Node::Const(value);
        self.regs.retain(|(id, _)| *id != node);
        self.reg_lookup = self
            .regs
            .iter()
            .enumerate()
            .map(|(slot, (id, _))| (id.0, slot))
            .collect();
        InjectionSite {
            node,
            kind: "override-const",
            detail: format!("stuck-at-{} (was {was})", value as u8),
        }
    }

    /// Iterator over all node ids in creation (topological) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Number of nodes in the netlist.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Public view of a node's kind, or `None` when `id` does not exist
    /// (including the [`NodeId::DANGLING`] sentinel). The panic-free
    /// sibling of [`Netlist::node_kind`] used by static analysis, which
    /// must survive structurally corrupt netlists.
    pub fn try_node_kind(&self, id: NodeId) -> Option<NodeKind> {
        if id.index() < self.nodes.len() {
            Some(self.node_kind(id))
        } else {
            None
        }
    }

    /// The driver pins of a node, in pin order: six pins for a LUT,
    /// `[a, b, cin]` for a carry element, `[d]` for a register (the
    /// [`NodeId::DANGLING`] sentinel is reported as-is), and empty for
    /// inputs and constants.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn fanin(&self, id: NodeId) -> Vec<NodeId> {
        match &self.nodes[id.index()] {
            Node::Input | Node::Const(_) => Vec::new(),
            Node::Lut(_, pins) => pins.to_vec(),
            Node::Carry { a, b, cin } => vec![*a, *b, *cin],
            Node::Reg { d } => vec![*d],
        }
    }

    /// Fan-out of every node: `fanouts[i]` counts the pins (LUT inputs,
    /// carry operands, register D pins) driven by node `i`. Pins that
    /// reference nonexistent nodes are ignored — the floating-pin lint
    /// reports those separately.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for id in self.node_ids() {
            for pin in self.fanin(id) {
                if let Some(c) = counts.get_mut(pin.index()) {
                    *c += 1;
                }
            }
        }
        counts
    }

    /// Rewires one input pin of a LUT node — **defect-injection surface**
    /// for the lint test corpus and fault studies. `src` is *not*
    /// validated: pointing a pin at a later node (or the LUT itself)
    /// creates a combinational loop, and [`NodeId::DANGLING`] models a
    /// cut wire; `fabp-lint` must flag both. Netlists mutated this way
    /// may panic in [`Netlist::eval`]. Returns the [`InjectionSite`]
    /// describing the mutation.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a LUT or `pin >= 6`.
    pub fn rewire_lut_pin(&mut self, node: NodeId, pin: usize, src: NodeId) -> InjectionSite {
        assert!(pin < 6, "a LUT6 has pins 0..6, got {pin}");
        match &mut self.nodes[node.index()] {
            Node::Lut(_, pins) => {
                let old = pins[pin];
                pins[pin] = src;
                InjectionSite {
                    node,
                    kind: "rewire-lut-pin",
                    detail: format!(
                        "pin {pin} rewired from n{} to n{}",
                        old.index(),
                        src.index()
                    ),
                }
            }
            other => panic!("{node:?} is not a LUT: {other:?}"),
        }
    }

    /// Replaces a LUT node's truth table — **defect-injection surface**
    /// (e.g. blanking a LUT to a constant-0 table, the SEU model the
    /// lint's constant-LUT rule must catch; or single-bit flips, the
    /// functional SEU model `fabp-verify` must catch). Returns the
    /// [`InjectionSite`], with the old/new INIT and flipped-bit mask.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a LUT.
    pub fn set_lut_table(&mut self, node: NodeId, table: Lut6) -> InjectionSite {
        match &mut self.nodes[node.index()] {
            Node::Lut(lut, _) => {
                let old = *lut;
                *lut = table;
                InjectionSite {
                    node,
                    kind: "set-lut-table",
                    detail: format!(
                        "INIT {:#018x} -> {:#018x} (flipped bits {:#018x})",
                        old.init(),
                        table.init(),
                        old.init() ^ table.init()
                    ),
                }
            }
            other => panic!("{node:?} is not a LUT: {other:?}"),
        }
    }

    /// Disconnects a register's D input back to the dangling sentinel —
    /// **defect-injection surface** for the dangling-register lint.
    /// Returns the [`InjectionSite`].
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register node.
    pub fn disconnect_reg(&mut self, reg: NodeId) -> InjectionSite {
        let old = match &self.nodes[reg.index()] {
            Node::Reg { d } => *d,
            other => panic!("{reg:?} is not a register: {other:?}"),
        };
        self.connect_reg(reg, NodeId::DANGLING);
        InjectionSite {
            node: reg,
            kind: "disconnect-reg",
            detail: format!("D input cut (was n{})", old.index()),
        }
    }

    /// Public view of a node's kind (for emitters and inspectors).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        match &self.nodes[id.index()] {
            Node::Input => NodeKind::Input,
            Node::Const(v) => NodeKind::Const(*v),
            Node::Lut(lut, pins) => NodeKind::Lut(*lut, *pins),
            Node::Carry { a, b, cin } => NodeKind::Carry {
                a: *a,
                b: *b,
                cin: *cin,
            },
            Node::Reg { d } => NodeKind::Reg { d: *d },
        }
    }

    /// Ids of all input nodes, in creation order.
    pub fn input_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| matches!(self.nodes[id.index()], Node::Input))
            .collect()
    }

    /// Named outputs, sorted by name for deterministic emission.
    pub fn named_outputs(&self) -> Vec<(String, NodeId)> {
        let mut v: Vec<(String, NodeId)> = self
            .outputs
            .iter()
            .map(|(name, id)| (name.clone(), *id))
            .collect();
        v.sort();
        v
    }

    /// Number of registers in the netlist.
    pub fn register_count(&self) -> usize {
        self.regs.len()
    }

    /// Node ids holding flip-flop state, in state-table order. Each entry
    /// must be a register node and each register node must appear exactly
    /// once — the invariant behind the lint's multi-driver rule.
    pub fn register_state_nodes(&self) -> Vec<NodeId> {
        self.regs.iter().map(|(id, _)| *id).collect()
    }

    /// The value of a constant node, or `None` for any other node kind.
    /// Lets builders constant-fold (e.g. skip adder bits driven by shifted
    /// zeros, as a synthesizer would).
    pub fn const_value(&self, id: NodeId) -> Option<bool> {
        match self.nodes[id.index()] {
            Node::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Names a node as an output.
    pub fn mark_output(&mut self, name: impl Into<String>, id: NodeId) {
        self.outputs.insert(name.into(), id);
    }

    /// Looks up a named output.
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs.get(name).copied()
    }

    /// Resource count: LUTs and registers actually instantiated.
    pub fn resources(&self) -> ResourceCount {
        let luts = self
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::Lut(..)))
            .count();
        ResourceCount {
            luts,
            ffs: self.regs.len(),
            dsps: 0,
            bram_bits: 0,
        }
    }

    /// Evaluates all combinational values for the given input assignment
    /// (in input-creation order). Register nodes read their stored state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the number of input nodes.
    pub fn eval(&mut self, inputs: &[bool]) {
        let mut next_input = 0usize;
        for i in 0..self.nodes.len() {
            let value = match &self.nodes[i] {
                Node::Input => {
                    let v = *inputs
                        .get(next_input)
                        .expect("not enough input values supplied");
                    next_input += 1;
                    v
                }
                Node::Const(v) => *v,
                Node::Lut(lut, pins) => {
                    let mut addr = 0u8;
                    for (bit, pin) in pins.iter().enumerate() {
                        addr |= (self.read_pin(*pin, i) as u8) << bit;
                    }
                    lut.eval_addr(addr)
                }
                Node::Carry { a, b, cin } => {
                    let (a, b, cin) = (*a, *b, *cin);
                    let va = self.read_pin(a, i);
                    let vb = self.read_pin(b, i);
                    let vc = self.read_pin(cin, i);
                    (va & vb) | (vc & (va ^ vb))
                }
                Node::Reg { .. } => self.reg_state(NodeId(i as u32)),
            };
            self.values[i] = value;
        }
        assert_eq!(next_input, inputs.len(), "too many input values supplied");
    }

    /// Reads a pin's value during evaluation of node `at`: registers read
    /// their stored state; combinational nodes must already be evaluated.
    fn read_pin(&self, pin: NodeId, at: usize) -> bool {
        match &self.nodes[pin.index()] {
            Node::Reg { .. } => self.reg_state(pin),
            _ => {
                assert!(pin.index() < at, "combinational loop through node {pin:?}");
                self.values[pin.index()]
            }
        }
    }

    fn reg_state(&self, id: NodeId) -> bool {
        let slot = *self.reg_lookup.get(&id.0).expect("register state missing");
        self.regs[slot].1.q()
    }

    /// Value of a node after the last [`Netlist::eval`].
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Value of a named output after the last [`Netlist::eval`].
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist.
    pub fn output_value(&self, name: &str) -> bool {
        self.value(
            self.output(name)
                .unwrap_or_else(|| panic!("no output {name:?}")),
        )
    }

    /// Clock edge: every register latches the current value of its `d`
    /// node (call after [`Netlist::eval`]).
    ///
    /// # Panics
    ///
    /// Panics if any register's `d` input is still dangling.
    pub fn clock(&mut self) {
        // Collect D values first so all registers update simultaneously.
        let ds: Vec<bool> = self
            .regs
            .iter()
            .map(|(id, _)| match &self.nodes[id.index()] {
                Node::Reg { d } => {
                    assert!(!d.is_dangling(), "register {id:?} has a dangling D input");
                    self.values[d.index()]
                }
                _ => unreachable!("reg list points at a non-register"),
            })
            .collect();
        for ((_, ff), d) in self.regs.iter_mut().zip(ds) {
            ff.clock(d);
        }
    }

    /// Resets every register to 0.
    pub fn reset(&mut self) {
        for (_, ff) in &mut self.regs {
            ff.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_netlist() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.lut_fn(&[a, b], |addr| (addr & 1) ^ ((addr >> 1) & 1) == 1);
        n.mark_output("x", x);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            n.eval(&[va, vb]);
            assert_eq!(n.output_value("x"), va ^ vb);
        }
    }

    #[test]
    fn register_pipeline_delays() {
        let mut n = Netlist::new();
        let a = n.input();
        let r1 = n.reg(a);
        let r2 = n.reg(r1);
        n.mark_output("out", r2);
        let stimulus = [true, false, true, true, false];
        let mut seen = Vec::new();
        for &s in &stimulus {
            n.eval(&[s]);
            seen.push(n.output_value("out"));
            n.clock();
        }
        // Two-stage delay: outputs are 0, 0, s0, s1, s2.
        assert_eq!(seen, vec![false, false, true, false, true]);
    }

    #[test]
    fn feedback_accumulator_toggles() {
        // T flip-flop: d = q XOR enable.
        let mut n = Netlist::new();
        let enable = n.input();
        let q = n.reg_dangling();
        let d = n.lut_fn(&[q, enable], |addr| ((addr & 1) ^ ((addr >> 1) & 1)) == 1);
        n.connect_reg(q, d);
        n.mark_output("q", q);
        let mut states = Vec::new();
        for _ in 0..4 {
            n.eval(&[true]);
            states.push(n.output_value("q"));
            n.clock();
        }
        assert_eq!(states, vec![false, true, false, true]);
    }

    #[test]
    fn resources_count_luts_and_ffs() {
        let mut n = Netlist::new();
        let a = n.input();
        let l1 = n.lut_fn(&[a], |addr| addr & 1 == 1);
        let _r = n.reg(l1);
        let _l2 = n.lut_fn(&[l1], |addr| addr & 1 == 0);
        let r = n.resources();
        assert_eq!(r.luts, 2);
        assert_eq!(r.ffs, 1);
    }

    #[test]
    fn resource_count_arithmetic() {
        let a = ResourceCount {
            luts: 2,
            ffs: 3,
            dsps: 1,
            bram_bits: 8,
        };
        let b = ResourceCount {
            luts: 1,
            ffs: 1,
            dsps: 0,
            bram_bits: 0,
        };
        let sum = a + b;
        assert_eq!(sum.luts, 3);
        assert_eq!(sum.ffs, 4);
        let scaled = a.scale(3);
        assert_eq!(scaled.luts, 6);
        assert_eq!(scaled.bram_bits, 24);
        let total: ResourceCount = [a, b, scaled].into_iter().sum();
        assert_eq!(total.luts, 9);
    }

    #[test]
    #[should_panic(expected = "not enough input values")]
    fn eval_checks_input_arity() {
        let mut n = Netlist::new();
        let _ = n.input();
        n.eval(&[]);
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn clock_rejects_dangling_register() {
        let mut n = Netlist::new();
        let _q = n.reg_dangling();
        n.eval(&[]);
        n.clock();
    }

    #[test]
    fn injection_helpers_describe_their_site() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let lut = n.lut_fn(&[a, b], |addr| addr != 0);
        let reg = n.reg(lut);

        let site = n.rewire_lut_pin(lut, 0, b);
        assert_eq!(site.node, lut);
        assert_eq!(site.kind, "rewire-lut-pin");
        assert!(site.detail.contains(&format!("n{}", b.index())));

        let old_init = match n.node_kind(lut) {
            NodeKind::Lut(l, _) => l.init(),
            _ => unreachable!(),
        };
        let site = n.set_lut_table(lut, Lut6::from_init(old_init ^ 1));
        assert_eq!(site.kind, "set-lut-table");
        assert!(site.detail.contains("flipped bits 0x0000000000000001"));

        let site = n.disconnect_reg(reg);
        assert_eq!(site.node, reg);
        assert_eq!(site.kind, "disconnect-reg");
        assert!(site.detail.contains(&format!("n{}", lut.index())));

        let site = n.override_node_const(lut, true);
        assert_eq!(site.kind, "override-const");
        assert!(site.to_string().starts_with("override-const@n"));
    }

    #[test]
    fn constants_evaluate() {
        let mut n = Netlist::new();
        let one = n.constant(true);
        let zero = n.constant(false);
        let or = n.lut_fn(&[one, zero], |addr| addr != 0);
        n.eval(&[]);
        assert!(n.value(or));
    }
}
