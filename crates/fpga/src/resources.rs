//! Architecture planning and resource estimation (Table I, experiment E3/E5).
//!
//! For a query of `L_q` elements the planner decides how many *segments*
//! `S` the query must be split into so the 256-instance comparator array
//! fits the device: "Due to FPGA resource limitation, for long query sizes,
//! there are not enough resources to perform all the operations in one
//! cycle. FabP uses a set of multiplexers to divide Query Seq. and
//! Reference Stream into multiple segments and process each segment in a
//! cycle" (§III-C). Segmentation divides the effective memory bandwidth by
//! `S`, which is the paper's explanation for FabP-250's 3.4 GB/s.
//!
//! The component costs are *counted* from the gate-level netlists of this
//! crate (comparator = 2 LUTs, Pop-Counter per [`popcounter_cost`]);
//! wiring/pipeline overheads and the fixed shell are calibrated constants
//! documented in `DESIGN.md` and validated against Table I in
//! `EXPERIMENTS.md`.

use crate::device::{FpgaDevice, Utilization};
use crate::netlist::ResourceCount;
use crate::popcount::{popcounter_cost, PopStyle};
use std::fmt;

/// Number of parallel alignment instances — one per new reference element
/// delivered in a 512-bit beat (§III-C).
pub const INSTANCES_PER_CHANNEL: usize = 256;

/// Calibrated overhead constants of the resource model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchParams {
    /// Extra LUTs per query element per instance for pipeline/routing
    /// logic not captured by the comparator + Pop-Counter netlists.
    pub per_element_overhead_luts: f64,
    /// Fixed LUTs per instance: write-back interface, position tag, valid
    /// logic, score register glue.
    pub per_instance_luts: usize,
    /// Fixed FFs per instance beyond per-element pipeline registers.
    pub per_instance_ffs: usize,
    /// Pipeline FFs per query element per instance.
    pub per_element_ffs: f64,
    /// Additional pipeline FFs per element per *segment* when the query is
    /// segmented (accumulator staging, segment-boundary registers).
    pub per_element_segment_ffs: f64,
    /// Fixed shell (AXI, control FSM, host interface) LUTs.
    pub infra_luts: usize,
    /// Fixed shell FFs.
    pub infra_ffs: usize,
    /// Fixed shell DSPs (address generators).
    pub infra_dsps: usize,
    /// Fixed BRAM bits (AXI FIFOs + base write-back buffer).
    pub infra_bram_bits: usize,
    /// Additional write-back BRAM bits when unsegmented (hit burst buffer,
    /// shrinks with segmentation since the hit rate per cycle drops).
    pub wb_bram_bits: usize,
    /// Maximum utilisation fraction accepted by the placer.
    pub headroom: f64,
    /// Pop-Counter style used by the design.
    pub pop_style: PopStyle,
    /// Store the query and reference stream buffer in BRAM instead of
    /// distributed flip-flops. The paper rejects this: "FabP uses
    /// distributed memory resources (FFs) ... rather than using the BRAMs
    /// to avoid the routing congestion that may happen due to high fanout
    /// of the memory blocks, and reduce the power consumption" (§IV-B).
    /// Modelled costs: the buffered bits move to BRAM, but every 32-bit
    /// BRAM read port needs replication/fanout buffering to feed 256
    /// instances, charged as extra LUTs per buffered bit.
    pub buffers_in_bram: bool,
}

impl Default for ArchParams {
    fn default() -> ArchParams {
        ArchParams {
            per_element_overhead_luts: 1.0,
            per_instance_luts: 40,
            per_instance_ffs: 24,
            per_element_ffs: 1.33,
            per_element_segment_ffs: 0.32,
            infra_luts: 20_000,
            infra_ffs: 12_000,
            infra_dsps: 4,
            infra_bram_bits: 2_400_000,
            wb_bram_bits: 640_000,
            headroom: 0.99,
            pop_style: PopStyle::HandCrafted,
            buffers_in_bram: false,
        }
    }
}

/// Error returned when no segmentation makes the design fit the device.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// The query length (elements) that failed to fit.
    pub query_len: usize,
    /// The device that was targeted.
    pub device: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no feasible FabP configuration for a {}-element query on {}",
            self.query_len, self.device
        )
    }
}

impl std::error::Error for PlanError {}

/// What limits throughput for a planned configuration (§IV-B: "for
/// sequences longer than ~70, the resource utilization is the bottleneck;
/// while for shorter sequences the bandwidth is the limiting factor").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Memory bandwidth limits throughput (one beat per cycle, `S = 1`).
    Bandwidth,
    /// LUT/FF resources force segmentation (`S > 1`).
    Resources,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Bottleneck::Bandwidth => "bandwidth-bound",
            Bottleneck::Resources => "resource-bound",
        })
    }
}

/// A planned FabP configuration for one query length on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct FabpPlan {
    /// Query length in elements (3 × protein residues).
    pub query_len: usize,
    /// Memory channels used.
    pub channels: usize,
    /// Segments the query is split into (`S`; cycles per beat).
    pub segments: usize,
    /// Elements processed per segment (`⌈L_q / S⌉`).
    pub segment_len: usize,
    /// Total resources of the design.
    pub resources: ResourceCount,
    /// Utilisation against the device.
    pub utilization: Utilization,
    /// What limits throughput.
    pub bottleneck: Bottleneck,
}

impl FabpPlan {
    /// Cycles the instance array needs per 256-element beat.
    pub fn cycles_per_beat(&self) -> u64 {
        self.segments as u64
    }
}

/// Resource cost of the design with query length `query_len` (elements)
/// split into `segments`, on `channels` memory channels.
pub fn design_cost(
    query_len: usize,
    segments: usize,
    channels: usize,
    params: &ArchParams,
) -> ResourceCount {
    assert!(query_len > 0 && segments > 0 && channels > 0);
    let seg_len = query_len.div_ceil(segments);
    let instances = INSTANCES_PER_CHANNEL * channels;

    // Per-instance datapath, counted from netlists where possible.
    let comparator_luts = 2 * seg_len;
    let pop = popcounter_cost(seg_len, params.pop_style);
    // Score accumulator across segments (10-bit) maps to the DSP that also
    // performs the threshold compare when S = 1; S > 1 needs a second DSP.
    let dsps_per_instance = if segments > 1 { 2 } else { 1 };

    let per_instance_luts = comparator_luts
        + pop.luts
        + (seg_len as f64 * params.per_element_overhead_luts) as usize
        + params.per_instance_luts;
    let per_instance_ffs = (seg_len as f64 * params.per_element_ffs) as usize
        + (seg_len as f64 * params.per_element_segment_ffs) as usize
            * if segments > 1 { segments } else { 0 }
        + pop.ffs
        + params.per_instance_ffs;

    // Shared logic: query storage and its segment mux (6 bits/element),
    // the active slice of the reference stream buffer behind a shared
    // segment mux (2 bits per buffered element; one LUT6 implements a 4:1
    // single-bit mux, ⌈S/4⌉ LUTs per bit), and the fixed shell. The
    // segment muxes select which query/buffer slice all 256 instances see
    // in a given cycle, so they are instantiated once, not per instance.
    let mux_per_bit = if segments > 1 {
        segments.div_ceil(4)
    } else {
        0
    };
    let buffered_bits = 6 * query_len + 2 * (query_len + 256 * channels);
    let (query_store_ffs, stream_buffer_ffs, buffer_bram_bits, fanout_luts) =
        if params.buffers_in_bram {
            // BRAM variant: bits live in block RAM; wide-fanout reads need
            // LUT-based replication buffers (~1.5 LUTs per buffered bit to
            // drive 256 instances through a fanout tree).
            (0, 0, buffered_bits * 8, buffered_bits * 3 / 2)
        } else {
            (6 * query_len, 2 * (query_len + 256 * channels), 0, 0)
        };
    let query_mux_luts = 6 * seg_len * mux_per_bit;
    let stream_mux_luts = 2 * (seg_len + 256 * channels) * mux_per_bit;

    let instance_total = ResourceCount {
        luts: per_instance_luts,
        ffs: per_instance_ffs,
        dsps: dsps_per_instance,
        bram_bits: 0,
    }
    .scale(instances);

    let wb_bram = params.wb_bram_bits / segments;

    instance_total
        + ResourceCount {
            luts: params.infra_luts * channels + query_mux_luts + stream_mux_luts + fanout_luts,
            ffs: params.infra_ffs * channels + query_store_ffs + stream_buffer_ffs,
            dsps: params.infra_dsps,
            bram_bits: params.infra_bram_bits + wb_bram + buffer_bram_bits,
        }
}

/// Plans the smallest segmentation that fits the device.
///
/// # Errors
///
/// Returns [`PlanError`] when even maximal segmentation does not fit
/// (query longer than the device can hold at all).
pub fn plan(
    device: &FpgaDevice,
    query_len: usize,
    channels: usize,
    params: &ArchParams,
) -> Result<FabpPlan, PlanError> {
    assert!(query_len > 0, "query must be non-empty");
    let channels = channels.clamp(1, device.mem_channels.max(1));
    for segments in 1..=query_len {
        let resources = design_cost(query_len, segments, channels, params);
        // Skip segment counts that do not reduce the segment length —
        // they only add mux cost.
        let seg_len = query_len.div_ceil(segments);
        if segments > 1 && query_len.div_ceil(segments - 1) == seg_len {
            continue;
        }
        if device.fits(resources, params.headroom) {
            return Ok(FabpPlan {
                query_len,
                channels,
                segments,
                segment_len: seg_len,
                utilization: device.utilization(resources),
                resources,
                bottleneck: if segments == 1 {
                    Bottleneck::Bandwidth
                } else {
                    Bottleneck::Resources
                },
            });
        }
    }
    Err(PlanError {
        query_len,
        device: device.name.to_string(),
    })
}

/// The largest query length (in elements) that still fits unsegmented —
/// the paper's bandwidth/resource crossover point (§IV-B, "~70" amino
/// acids ⇒ ~210 elements).
pub fn crossover_query_len(device: &FpgaDevice, params: &ArchParams) -> usize {
    let mut lo = 1usize;
    let mut hi = 4096usize;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let fits = device.fits(design_cost(mid, 1, 1, params), params.headroom);
        if fits {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kintex() -> FpgaDevice {
        FpgaDevice::kintex7()
    }

    #[test]
    fn fabp50_plan_matches_table1_shape() {
        // 50 amino acids = 150 elements: unsegmented, LUT-dominant,
        // ~58% LUT, ~31% DSP, full bandwidth.
        let plan = plan(&kintex(), 150, 1, &ArchParams::default()).unwrap();
        assert_eq!(plan.segments, 1);
        assert_eq!(plan.bottleneck, Bottleneck::Bandwidth);
        assert!(
            (plan.utilization.lut - 0.58).abs() < 0.08,
            "LUT util {:.2}",
            plan.utilization.lut
        );
        assert!(
            (plan.utilization.dsp - 0.31).abs() < 0.05,
            "DSP util {:.2}",
            plan.utilization.dsp
        );
    }

    #[test]
    fn fabp250_plan_is_segmented_and_nearly_full() {
        // 250 amino acids = 750 elements: segmented, ~98% LUT.
        let plan = plan(&kintex(), 750, 1, &ArchParams::default()).unwrap();
        assert!(plan.segments >= 3, "segments {}", plan.segments);
        assert_eq!(plan.bottleneck, Bottleneck::Resources);
        assert!(
            plan.utilization.lut > 0.85,
            "LUT util {:.2}",
            plan.utilization.lut
        );
        assert!(plan.utilization.max_fraction() <= ArchParams::default().headroom + 1e-9);
    }

    #[test]
    fn utilization_grows_with_query_length() {
        let params = ArchParams::default();
        let mut last = 0.0f64;
        for len in [30usize, 90, 150, 210] {
            let p = plan(&kintex(), len, 1, &params).unwrap();
            assert!(p.utilization.lut > last, "len {len}");
            last = p.utilization.lut;
        }
    }

    #[test]
    fn crossover_is_in_the_paper_ballpark() {
        // Paper: ~70 aa (210 elements). The model lands in 200..300.
        let cross = crossover_query_len(&kintex(), &ArchParams::default());
        assert!(
            (180..=320).contains(&cross),
            "crossover {cross} elements ({} aa)",
            cross / 3
        );
    }

    #[test]
    fn segments_divide_bandwidth_expectation() {
        let params = ArchParams::default();
        let p50 = plan(&kintex(), 150, 1, &params).unwrap();
        let p250 = plan(&kintex(), 750, 1, &params).unwrap();
        assert_eq!(p50.cycles_per_beat(), 1);
        assert!(p250.cycles_per_beat() >= 3);
    }

    #[test]
    fn bigger_device_defers_segmentation() {
        let params = ArchParams::default();
        let on_kintex = plan(&kintex(), 750, 1, &params).unwrap();
        let on_virtex = plan(&FpgaDevice::virtex7(), 750, 1, &params).unwrap();
        assert!(on_virtex.segments < on_kintex.segments);
    }

    #[test]
    fn tiny_device_eventually_fails() {
        let mut tiny = FpgaDevice::artix7();
        tiny.luts = 2_000;
        tiny.ffs = 2_000;
        tiny.bram_bits = 100_000;
        let err = plan(&tiny, 300, 1, &ArchParams::default()).unwrap_err();
        assert_eq!(err.query_len, 300);
        assert!(err.to_string().contains("300-element"));
    }

    #[test]
    fn design_cost_monotone_in_segments_for_dsps() {
        let params = ArchParams::default();
        let s1 = design_cost(600, 1, 1, &params);
        let s2 = design_cost(600, 2, 1, &params);
        assert!(s2.dsps > s1.dsps, "segmented design uses accumulator DSPs");
        assert!(
            s2.luts < s1.luts,
            "segmentation shrinks the comparator array"
        );
    }

    #[test]
    fn bram_buffer_variant_trades_ffs_for_luts_and_bram() {
        // The §IV-B design choice: FF buffers avoid BRAM fanout cost.
        let ff_params = ArchParams::default();
        let bram_params = ArchParams {
            buffers_in_bram: true,
            ..ArchParams::default()
        };
        let ff = design_cost(450, 1, 1, &ff_params);
        let bram = design_cost(450, 1, 1, &bram_params);
        assert!(bram.ffs < ff.ffs, "buffer FFs move to BRAM");
        assert!(bram.bram_bits > ff.bram_bits);
        assert!(bram.luts > ff.luts, "fanout buffering costs LUTs");
        // And the power model charges for it.
        let model = crate::power_model::PowerModel::default();
        let ff_w = model.power(ff, 200.0e6).total();
        let bram_w = model.power(bram, 200.0e6).total();
        assert!(bram_w > ff_w, "{bram_w} vs {ff_w}");
    }

    #[test]
    fn two_channels_double_instances() {
        let params = ArchParams::default();
        let c1 = design_cost(150, 1, 1, &params);
        let c2 = design_cost(150, 1, 2, &params);
        assert!(c2.luts > c1.luts * 3 / 2, "per-instance logic doubles");
    }
}
