//! Cycle-level simulator of the FabP accelerator (Fig. 3).
//!
//! The engine couples the planned architecture (`resources`), the AXI
//! timing model (`axi`) and the gate-level comparator truth tables
//! (`comparator`) into a beat-by-beat simulation: every 512-bit beat
//! delivers 256 reference elements into the *Reference Stream* buffer, the
//! 256 alignment instances score their windows through the two-LUT
//! comparator cells, a Pop-Counter reduction produces each score, DSP
//! threshold comparators select hits, and the WB buffer writes hit
//! positions back. Scores are **bit-exact** with the golden model (the
//! datapath evaluates the same LUT truth tables the RTL would) while the
//! cycle accounting reproduces the paper's bandwidth/segmentation
//! behaviour.

use crate::axi::{AxiChannel, AxiConfig};
use crate::comparator::ComparatorCell;
use crate::device::FpgaDevice;
use crate::primitives::DspThreshold;
use crate::resources::{plan, ArchParams, FabpPlan, PlanError};
use fabp_bio::seq::PackedSeq;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::packing::{axi_beats, ReferenceStream};
use std::fmt;

/// Configuration of a FabP engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target device.
    pub device: FpgaDevice,
    /// AXI channel timing.
    pub axi: AxiConfig,
    /// Resource-model overheads.
    pub arch: ArchParams,
    /// Score threshold: positions with `score >= threshold` are reported.
    pub threshold: u32,
    /// Memory channels to use (clamped to the device's).
    pub channels: usize,
    /// Hit positions the WB buffer can retire per cycle.
    pub wb_rate_per_cycle: usize,
    /// Pipeline depth in cycles (comparator + Pop-Counter + threshold
    /// stages), added once as drain latency.
    pub pipeline_depth: u64,
}

impl EngineConfig {
    /// Default configuration on the paper's Kintex-7 with the given
    /// threshold.
    pub fn kintex7(threshold: u32) -> EngineConfig {
        EngineConfig {
            device: FpgaDevice::kintex7(),
            axi: AxiConfig::default(),
            arch: ArchParams::default(),
            threshold,
            channels: 1,
            wb_rate_per_cycle: 4,
            pipeline_depth: 12,
        }
    }
}

/// One reported alignment hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hit {
    /// Start position of the alignment window in the reference.
    pub position: usize,
    /// Alignment score: number of matching elements.
    pub score: u32,
}

impl fmt::Display for Hit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hit @{} score {}", self.position, self.score)
    }
}

/// Cycle/bandwidth statistics of one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Total kernel cycles (including AXI warm-up and pipeline drain).
    pub cycles: u64,
    /// AXI beats consumed.
    pub beats: u64,
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Cycles spent waiting on the AXI channel.
    pub stall_cycles: u64,
    /// Extra cycles spent draining the write-back buffer.
    pub wb_stall_cycles: u64,
    /// Compute cycles (`beats × segments`, summed over channels).
    pub busy_cycles: u64,
    /// Alignment instances evaluated.
    pub instances_evaluated: u64,
    /// Kernel wall time at the device clock, in seconds.
    pub kernel_seconds: f64,
    /// Achieved DRAM read bandwidth in bytes/second.
    pub achieved_bandwidth: f64,
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Hits at or above the threshold, in ascending position order.
    pub hits: Vec<Hit>,
    /// Timing statistics.
    pub stats: EngineStats,
}

/// The simulated FabP accelerator.
#[derive(Debug, Clone)]
pub struct FabpEngine {
    query: EncodedQuery,
    plan: FabpPlan,
    config: EngineConfig,
    cell: ComparatorCell,
    dsp: DspThreshold,
}

impl FabpEngine {
    /// Plans the architecture for `query` and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the query cannot fit the device at any
    /// segmentation.
    ///
    /// # Panics
    ///
    /// Panics if the query is empty.
    pub fn new(query: EncodedQuery, config: EngineConfig) -> Result<FabpEngine, PlanError> {
        assert!(!query.is_empty(), "query must be non-empty");
        let plan = plan(&config.device, query.len(), config.channels, &config.arch)?;
        let dsp = DspThreshold::new(config.threshold.min((1 << DspThreshold::SCORE_WIDTH) - 1));
        Ok(FabpEngine {
            query,
            plan,
            config,
            cell: ComparatorCell::new(),
            dsp,
        })
    }

    /// The planned architecture (segments, utilisation, bottleneck).
    pub fn plan(&self) -> &FabpPlan {
        &self.plan
    }

    /// The encoded query the engine holds in distributed memory.
    pub fn query(&self) -> &EncodedQuery {
        &self.query
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the kernel over a packed reference, producing hits and cycle
    /// statistics. Counters are published to the global telemetry
    /// registry; use [`FabpEngine::run_with_registry`] to direct them
    /// elsewhere.
    pub fn run(&self, reference: &PackedSeq) -> EngineRun {
        self.run_with_registry(reference, fabp_telemetry::Registry::global())
    }

    /// Runs the kernel, publishing telemetry to an explicit `registry`
    /// (e.g. a scoped [`fabp_telemetry::Registry::new`] for isolated
    /// benchmarking).
    pub fn run_with_registry(
        &self,
        reference: &PackedSeq,
        registry: &fabp_telemetry::Registry,
    ) -> EngineRun {
        let query_len = self.query.len();
        let beats = axi_beats(reference);
        let channels = self.plan.channels.max(1) as u64;
        let segments = self.plan.segments as u64;

        let mut stream = ReferenceStream::new(query_len);
        let mut hits = Vec::new();
        let mut stats = EngineStats::default();

        // Per-channel compute-ready times (C parallel instance arrays),
        // each fed by its own AXI read channel streaming its own address
        // range — stall cycles are attributed to the channel that
        // caused them.
        let mut channel_ready = vec![0u64; channels as usize];
        let mut axi: Vec<AxiChannel> = (0..channels as usize)
            .map(|_| AxiChannel::new(self.config.axi))
            .collect();
        let mut next_position = 0usize; // next unscored alignment start

        for (beat_idx, beat) in beats.iter().enumerate() {
            let ch = beat_idx % channels as usize;
            // The channel's own beat sequence index drives availability.
            let t_data = axi[ch].fetch_beat(channel_ready[ch]);

            // Bit-exact scoring of every alignment instance this beat
            // completes.
            let window = stream.push_beat(beat);
            let mut beat_hits = 0u64;
            if window.elements.len() >= query_len {
                for offset in 0..=window.elements.len() - query_len {
                    let position = window.start_position + offset;
                    if position < next_position {
                        continue;
                    }
                    let score = self
                        .cell
                        .score_window(self.query.instructions(), &window.elements[offset..])
                        as u32;
                    stats.instances_evaluated += 1;
                    if self.dsp.exceeds(score) {
                        hits.push(Hit { position, score });
                        beat_hits += 1;
                    }
                }
                next_position = window.start_position + window.elements.len() - query_len + 1;
            }

            // Cycle accounting: S segment cycles, plus WB back-pressure if
            // this beat produced more hits than the WB port can retire.
            let wb_cycles = beat_hits.div_ceil(self.config.wb_rate_per_cycle.max(1) as u64);
            let compute = segments.max(1);
            let extra_wb = wb_cycles.saturating_sub(compute);
            channel_ready[ch] = t_data + compute + extra_wb;
            stats.busy_cycles += compute;
            stats.wb_stall_cycles += extra_wb;
        }

        let end = channel_ready.iter().copied().max().unwrap_or(0) + self.config.pipeline_depth;
        let per_channel: Vec<_> = axi.iter().map(|ch| ch.stats()).collect();
        stats.cycles = end;
        stats.beats = per_channel.iter().map(|s| s.beats).sum();
        stats.bytes_read = per_channel.iter().map(|s| s.bytes).sum();
        stats.stall_cycles = per_channel.iter().map(|s| s.stall_cycles).sum();
        stats.kernel_seconds = end as f64 / self.config.device.clock_hz;
        stats.achieved_bandwidth = if end > 0 {
            stats.bytes_read as f64 / stats.kernel_seconds
        } else {
            0.0
        };

        crate::telemetry::record_engine_run(registry, &stats, &per_channel, hits.len());

        EngineRun { hits, stats }
    }

    /// Analytical kernel time for a reference of `reference_bytes` bytes,
    /// without simulating the datapath — used to extrapolate the paper's
    /// 1 GB workloads from smaller simulated runs.
    ///
    /// Matches [`FabpEngine::run`]'s cycle accounting for hit-sparse
    /// workloads (no WB back-pressure).
    pub fn model_kernel_seconds(&self, reference_bytes: u64) -> f64 {
        let beats_total = reference_bytes.div_ceil(64);
        let channels = self.plan.channels.max(1) as u64;
        let beats_per_channel = beats_total.div_ceil(channels);
        let segments = self.plan.segments as u64;
        // Per channel: beats arrive at efficiency eff; compute needs S
        // cycles per beat. The slower of the two pipelines dominates.
        let eff = self.config.axi.efficiency();
        let mem_cycles = (beats_per_channel as f64 / eff).ceil();
        let compute_cycles = (beats_per_channel * segments) as f64;
        let cycles = mem_cycles.max(compute_cycles)
            + self.config.axi.read_latency as f64
            + self.config.pipeline_depth as f64;
        cycles / self.config.device.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use fabp_bio::seq::{ProteinSeq, RnaSeq};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_for(protein: &str, threshold: u32) -> FabpEngine {
        let protein: ProteinSeq = protein.parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        FabpEngine::new(query, EngineConfig::kintex7(threshold)).unwrap()
    }

    #[test]
    fn finds_planted_perfect_hit() {
        let mut rng = StdRng::seed_from_u64(42);
        let protein = random_protein(20, &mut rng);
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let mut reference = random_rna(1000, &mut rng);
        // Plant at position 400.
        let mut bases: Vec<_> = reference.as_slice().to_vec();
        bases.splice(400..400 + coding.len(), coding.iter().copied());
        reference = RnaSeq::from(bases);

        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len() as u32;
        let engine = FabpEngine::new(query, EngineConfig::kintex7(qlen)).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));
        assert!(
            run.hits
                .iter()
                .any(|h| h.position == 400 && h.score == qlen),
            "hits: {:?}",
            run.hits
        );
    }

    #[test]
    fn hits_match_functional_scorer_across_chunk_boundaries() {
        // Reference long enough to span several 256-element beats; verify
        // against EncodedQuery::score_all_positions at every position.
        let mut rng = StdRng::seed_from_u64(7);
        let protein = random_protein(15, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(1500, &mut rng);
        let threshold = 30u32;
        let engine = FabpEngine::new(query.clone(), EngineConfig::kintex7(threshold)).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));

        let expected: Vec<Hit> = query
            .score_all_positions(reference.as_slice())
            .into_iter()
            .enumerate()
            .filter(|&(_, s)| s as u32 >= threshold)
            .map(|(position, score)| Hit {
                position,
                score: score as u32,
            })
            .collect();
        assert_eq!(run.hits, expected);
    }

    #[test]
    fn all_positions_evaluated_exactly_once() {
        let mut rng = StdRng::seed_from_u64(8);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let reference = random_rna(900, &mut rng);
        // Threshold 0: every instance is a hit.
        let engine = FabpEngine::new(query, EngineConfig::kintex7(0)).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));
        assert_eq!(run.hits.len(), reference.len() - qlen + 1);
        for (i, h) in run.hits.iter().enumerate() {
            assert_eq!(h.position, i);
        }
        assert_eq!(run.stats.instances_evaluated, run.hits.len() as u64);
    }

    #[test]
    fn short_query_is_bandwidth_bound_with_high_bw() {
        let engine = engine_for(&"M".repeat(50), 1000);
        assert_eq!(engine.plan().segments, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let reference = random_rna(256 * 1024, &mut rng);
        let run = engine.run(&PackedSeq::from_rna(&reference));
        let bw = run.stats.achieved_bandwidth;
        assert!(
            bw > 11.0e9 && bw <= 12.8e9,
            "achieved bandwidth {:.2} GB/s",
            bw / 1e9
        );
    }

    #[test]
    fn long_query_bandwidth_drops_by_segment_factor() {
        let engine = engine_for(&"M".repeat(250), 1000);
        let s = engine.plan().segments as f64;
        assert!(s >= 3.0);
        let mut rng = StdRng::seed_from_u64(10);
        let reference = random_rna(64 * 1024, &mut rng);
        let run = engine.run(&PackedSeq::from_rna(&reference));
        let expected = 12.8e9 / s;
        let bw = run.stats.achieved_bandwidth;
        assert!(
            (bw - expected).abs() / expected < 0.15,
            "bw {:.2} GB/s, expected ≈{:.2} GB/s",
            bw / 1e9,
            expected / 1e9
        );
    }

    #[test]
    fn model_time_agrees_with_simulation() {
        for protein_len in [30usize, 120] {
            let engine = engine_for(&"M".repeat(protein_len), 1000);
            let mut rng = StdRng::seed_from_u64(11);
            let reference = random_rna(32 * 1024, &mut rng);
            let run = engine.run(&PackedSeq::from_rna(&reference));
            let modeled = engine.model_kernel_seconds((reference.len() as u64).div_ceil(4));
            // bytes = len/4 (2 bits per base -> 4 bases per byte).
            let simulated = run.stats.kernel_seconds;
            let ratio = modeled / simulated;
            assert!(
                (0.8..1.2).contains(&ratio),
                "len {protein_len}: modeled {modeled:.2e} vs simulated {simulated:.2e}"
            );
        }
    }

    #[test]
    fn wb_backpressure_adds_cycles_when_everything_hits() {
        let mut rng = StdRng::seed_from_u64(12);
        let protein = random_protein(5, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(8 * 1024, &mut rng);
        let mut config = EngineConfig::kintex7(0); // every position hits
        config.wb_rate_per_cycle = 4;
        let engine = FabpEngine::new(query, config).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));
        assert!(
            run.stats.wb_stall_cycles > 0,
            "256 hits/beat must exceed 4/cycle WB rate"
        );
    }

    #[test]
    fn empty_reference_is_graceful() {
        let engine = engine_for("MFW", 0);
        let run = engine.run(&PackedSeq::new());
        assert!(run.hits.is_empty());
        assert_eq!(run.stats.beats, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_query_panics() {
        let query = EncodedQuery::from_exact_rna(&RnaSeq::new());
        let _ = FabpEngine::new(query, EngineConfig::kintex7(0));
    }
}
