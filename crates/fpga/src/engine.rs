//! Cycle-level simulator of the FabP accelerator (Fig. 3).
//!
//! The engine couples the planned architecture (`resources`), the AXI
//! timing model (`axi`) and the gate-level comparator truth tables
//! (`comparator`) into a beat-by-beat simulation: every 512-bit beat
//! delivers 256 reference elements into the *Reference Stream* buffer, the
//! 256 alignment instances score their windows through the two-LUT
//! comparator cells, a Pop-Counter reduction produces each score, DSP
//! threshold comparators select hits, and the WB buffer writes hit
//! positions back. Scores are **bit-exact** with the golden model (the
//! datapath evaluates the same LUT truth tables the RTL would) while the
//! cycle accounting reproduces the paper's bandwidth/segmentation
//! behaviour.

use crate::axi::{AxiChannel, AxiConfig};
use crate::comparator::ComparatorCell;
use crate::device::FpgaDevice;
use crate::primitives::DspThreshold;
use crate::resources::{plan, ArchParams, FabpPlan, PlanError};
use fabp_bio::seq::PackedSeq;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::fused::FusedScorer;
use fabp_encoding::packing::{axi_beats, AxiBeat, ReferenceStream};
use std::fmt;

/// Configuration of a FabP engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target device.
    pub device: FpgaDevice,
    /// AXI channel timing.
    pub axi: AxiConfig,
    /// Resource-model overheads.
    pub arch: ArchParams,
    /// Score threshold: positions with `score >= threshold` are reported.
    pub threshold: u32,
    /// Memory channels to use (clamped to the device's).
    pub channels: usize,
    /// Hit positions the WB buffer can retire per cycle.
    pub wb_rate_per_cycle: usize,
    /// Pipeline depth in cycles (comparator + Pop-Counter + threshold
    /// stages), added once as drain latency.
    pub pipeline_depth: u64,
}

impl EngineConfig {
    /// Default configuration on the paper's Kintex-7 with the given
    /// threshold.
    pub fn kintex7(threshold: u32) -> EngineConfig {
        EngineConfig {
            device: FpgaDevice::kintex7(),
            axi: AxiConfig::default(),
            arch: ArchParams::default(),
            threshold,
            channels: 1,
            wb_rate_per_cycle: 4,
            pipeline_depth: 12,
        }
    }
}

/// One reported alignment hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hit {
    /// Start position of the alignment window in the reference.
    pub position: usize,
    /// Alignment score: number of matching elements.
    pub score: u32,
}

impl fmt::Display for Hit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hit @{} score {}", self.position, self.score)
    }
}

/// The per-kernel cycle accounting report — alias of [`EngineStats`],
/// named for the fast-forward/per-cycle equivalence contract: the
/// event-driven fast-forward path ([`EngineSession::push_beats_fast`])
/// must produce a `CycleReport` whose `cycles`, `stall_cycles`,
/// `wb_stall_cycles` and `busy_cycles` fields are **bit-identical** to
/// the per-beat model's.
pub type CycleReport = EngineStats;

/// Cycle/bandwidth statistics of one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Total kernel cycles (including AXI warm-up and pipeline drain).
    pub cycles: u64,
    /// AXI beats consumed.
    pub beats: u64,
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Cycles spent waiting on the AXI channel.
    pub stall_cycles: u64,
    /// Extra cycles spent draining the write-back buffer.
    pub wb_stall_cycles: u64,
    /// Compute cycles (`beats × segments`, summed over channels).
    pub busy_cycles: u64,
    /// Alignment instances evaluated.
    pub instances_evaluated: u64,
    /// Kernel wall time at the device clock, in seconds.
    pub kernel_seconds: f64,
    /// Achieved DRAM read bandwidth in bytes/second.
    pub achieved_bandwidth: f64,
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Hits at or above the threshold, in ascending position order.
    pub hits: Vec<Hit>,
    /// Timing statistics.
    pub stats: EngineStats,
}

/// The simulated FabP accelerator.
#[derive(Debug, Clone)]
pub struct FabpEngine {
    query: EncodedQuery,
    plan: FabpPlan,
    config: EngineConfig,
    cell: ComparatorCell,
    dsp: DspThreshold,
    /// Fused per-element truth tables — functionally identical to the
    /// golden `cell` (same LUT contents, property-tested), used by the
    /// fast-forward datapath while the live configuration is pristine.
    fused: FusedScorer,
}

impl FabpEngine {
    /// Plans the architecture for `query` and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the query cannot fit the device at any
    /// segmentation.
    ///
    /// # Panics
    ///
    /// Panics if the query is empty.
    pub fn new(query: EncodedQuery, config: EngineConfig) -> Result<FabpEngine, PlanError> {
        assert!(!query.is_empty(), "query must be non-empty");
        let plan = plan(&config.device, query.len(), config.channels, &config.arch)?;
        let dsp = DspThreshold::new(config.threshold.min((1 << DspThreshold::SCORE_WIDTH) - 1));
        let fused = FusedScorer::build(&query.decode());
        Ok(FabpEngine {
            query,
            plan,
            config,
            cell: ComparatorCell::new(),
            dsp,
            fused,
        })
    }

    /// The planned architecture (segments, utilisation, bottleneck).
    pub fn plan(&self) -> &FabpPlan {
        &self.plan
    }

    /// The encoded query the engine holds in distributed memory.
    pub fn query(&self) -> &EncodedQuery {
        &self.query
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the kernel over a packed reference, producing hits and cycle
    /// statistics. Counters are published to the global telemetry
    /// registry; use [`FabpEngine::run_with_registry`] to direct them
    /// elsewhere.
    pub fn run(&self, reference: &PackedSeq) -> EngineRun {
        self.run_with_registry(reference, fabp_telemetry::Registry::global())
    }

    /// Runs the kernel, publishing telemetry to an explicit `registry`
    /// (e.g. a scoped [`fabp_telemetry::Registry::new`] for isolated
    /// benchmarking).
    pub fn run_with_registry(
        &self,
        reference: &PackedSeq,
        registry: &fabp_telemetry::Registry,
    ) -> EngineRun {
        self.run_beats(&axi_beats(reference), registry)
    }

    /// [`FabpEngine::run_with_registry`] with request-scoped tracing: on
    /// completion one `fpga_kernel` work span is recorded into `flight`
    /// under `trace`, with the modelled kernel time as its duration (so
    /// span durations stay deterministic under an injectable clock) and
    /// the consumed-base count as its argument. A disabled context or
    /// recorder costs one branch.
    pub fn run_traced(
        &self,
        reference: &PackedSeq,
        registry: &fabp_telemetry::Registry,
        flight: &fabp_telemetry::FlightRecorder,
        trace: fabp_telemetry::TraceContext,
        start_us: f64,
    ) -> EngineRun {
        let run = self.run_with_registry(reference, registry);
        let dur_us = self.model_kernel_seconds(reference.len().div_ceil(4) as u64) * 1e6;
        flight.record(
            fabp_telemetry::TraceEvent::new(trace, "fpga_kernel", start_us, dur_us)
                .with_arg(reference.len() as u64),
        );
        run
    }

    /// Runs the kernel over an explicit beat stream (the decomposed form
    /// of [`FabpEngine::run`]). This is the injection surface the
    /// resilience layer uses: corrupted or re-ordered beats can be fed
    /// directly, without re-packing a [`PackedSeq`].
    ///
    /// Uses the event-driven fast-forward path
    /// ([`EngineSession::push_beats_fast`]): hits and [`CycleReport`]
    /// fields are bit-identical to [`FabpEngine::run_beats_exact`]
    /// (enforced by the equivalence test matrix), but stall-free bursts
    /// are advanced in O(1) and the datapath is scored by the fused
    /// comparator tables instead of per-element LUT evaluation.
    pub fn run_beats(&self, beats: &[AxiBeat], registry: &fabp_telemetry::Registry) -> EngineRun {
        let mut session = self.session();
        session.push_beats_fast(beats);
        session.finish_with_registry(registry)
    }

    /// Runs the kernel strictly beat-by-beat through the exact per-cycle
    /// model ([`EngineSession::push_beat`]) — the reference
    /// implementation the fast-forward path is verified against, and the
    /// path fault-injection campaigns exercise.
    pub fn run_beats_exact(
        &self,
        beats: &[AxiBeat],
        registry: &fabp_telemetry::Registry,
    ) -> EngineRun {
        let mut session = self.session();
        for beat in beats {
            session.push_beat(beat);
        }
        session.finish_with_registry(registry)
    }

    /// Opens a resumable, beat-by-beat execution session.
    ///
    /// [`EngineSession::push_beat`] is exactly one iteration of
    /// [`FabpEngine::run`]'s loop; [`EngineSession::finish`] closes the
    /// accounting. Sessions additionally support configuration-upset
    /// injection ([`EngineSession::set_cell`]), live configuration
    /// readback ([`EngineSession::cell`]), datapath checkpoint/replay
    /// ([`EngineSession::checkpoint`]/[`EngineSession::restore`]) and
    /// idle-cycle insertion ([`EngineSession::inject_idle`]) — the
    /// mechanisms `fabp-resilience` builds its inject → detect → recover
    /// loop on.
    pub fn session(&self) -> EngineSession<'_> {
        let channels = self.plan.channels.max(1);
        EngineSession {
            engine: self,
            cell: self.cell,
            stream: ReferenceStream::new(self.query.len()),
            channel_ready: vec![0u64; channels],
            axi: (0..channels)
                .map(|_| AxiChannel::new(self.config.axi))
                .collect(),
            next_position: 0,
            beat_index: 0,
            consumed: 0,
            hits: Vec::new(),
            stats: EngineStats::default(),
            finished: false,
        }
    }

    /// Analytical kernel time for a reference of `reference_bytes` bytes,
    /// without simulating the datapath — used to extrapolate the paper's
    /// 1 GB workloads from smaller simulated runs.
    ///
    /// Matches [`FabpEngine::run`]'s cycle accounting for hit-sparse
    /// workloads (no WB back-pressure).
    pub fn model_kernel_seconds(&self, reference_bytes: u64) -> f64 {
        let beats_total = reference_bytes.div_ceil(64);
        let channels = self.plan.channels.max(1) as u64;
        let beats_per_channel = beats_total.div_ceil(channels);
        let segments = self.plan.segments as u64;
        // Per channel: beats arrive at efficiency eff; compute needs S
        // cycles per beat. The slower of the two pipelines dominates.
        let eff = self.config.axi.efficiency();
        let mem_cycles = (beats_per_channel as f64 / eff).ceil();
        let compute_cycles = (beats_per_channel * segments) as f64;
        let cycles = mem_cycles.max(compute_cycles)
            + self.config.axi.read_latency as f64
            + self.config.pipeline_depth as f64;
        cycles / self.config.device.clock_hz
    }
}

/// Outcome of delivering one beat into an [`EngineSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatOutcome {
    /// Cycle at which the consumer held the beat (after AXI latency and
    /// any injected stall).
    pub delivered_cycle: u64,
    /// Hits this beat's alignment instances produced.
    pub hits: u64,
}

/// Restorable datapath state of an [`EngineSession`].
///
/// A checkpoint captures the *datapath* (stream buffer, scan frontier,
/// accepted hits) but deliberately **not** the AXI channels or cycle
/// accounting: restoring and replaying beats models a real re-fetch, so
/// replayed beats cost additional cycles and DRAM reads — the honest
/// price of recovery.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    stream: ReferenceStream,
    next_position: usize,
    beat_index: u64,
    consumed: u64,
    hit_count: usize,
    instances_evaluated: u64,
}

impl EngineCheckpoint {
    /// Beat index the checkpoint was taken at (the next beat to deliver
    /// after a restore).
    pub fn beat_index(&self) -> u64 {
        self.beat_index
    }
}

/// A resumable, beat-by-beat execution of a [`FabpEngine`] kernel.
///
/// Created by [`FabpEngine::session`]; behaviourally identical to
/// [`FabpEngine::run`] when every beat is pushed in order and the session
/// is finished, but additionally exposes the state a resilience layer
/// needs: live comparator configuration, progress (`consumed`),
/// checkpoints, and stall injection.
#[derive(Debug, Clone)]
pub struct EngineSession<'e> {
    engine: &'e FabpEngine,
    /// Live comparator configuration — starts as the engine's golden
    /// cell; a configuration upset (SEU) may corrupt it mid-run.
    cell: ComparatorCell,
    stream: ReferenceStream,
    channel_ready: Vec<u64>,
    axi: Vec<AxiChannel>,
    next_position: usize,
    beat_index: u64,
    consumed: u64,
    hits: Vec<Hit>,
    stats: EngineStats,
    finished: bool,
}

impl<'e> EngineSession<'e> {
    /// The engine this session executes.
    pub fn engine(&self) -> &'e FabpEngine {
        self.engine
    }

    /// Delivers the next beat to the datapath.
    pub fn push_beat(&mut self, beat: &AxiBeat) -> BeatOutcome {
        self.push_beat_delayed(beat, 0)
    }

    /// Delivers the next beat with `extra_delay_cycles` of additional
    /// channel latency — the fault-injection surface for modelling a
    /// stream that stalls past its deadline (row hammer mitigation,
    /// refresh storms, a wedged upstream DMA).
    pub fn push_beat_delayed(&mut self, beat: &AxiBeat, extra_delay_cycles: u64) -> BeatOutcome {
        debug_assert!(!self.finished, "session already finished");
        let query_len = self.engine.query.len();
        let segments = self.engine.plan.segments.max(1) as u64;
        let channels = self.channel_ready.len();
        let ch = (self.beat_index % channels as u64) as usize;
        self.beat_index += 1;

        // The channel's own beat sequence index drives availability.
        let t_data = self.axi[ch].fetch_beat(self.channel_ready[ch]) + extra_delay_cycles;
        if extra_delay_cycles > 0 {
            self.stats.stall_cycles += extra_delay_cycles;
        }

        // Bit-exact scoring of every alignment instance this beat
        // completes.
        let window = self.stream.push_beat(beat);
        let mut beat_hits = 0u64;
        if window.elements.len() >= query_len {
            for offset in 0..=window.elements.len() - query_len {
                let position = window.start_position + offset;
                if position < self.next_position {
                    continue;
                }
                let score = self
                    .cell
                    .score_window(self.engine.query.instructions(), &window.elements[offset..])
                    as u32;
                self.stats.instances_evaluated += 1;
                if self.engine.dsp.exceeds(score) {
                    self.hits.push(Hit { position, score });
                    beat_hits += 1;
                }
            }
            self.next_position = window.start_position + window.elements.len() - query_len + 1;
        }
        self.consumed += beat.valid as u64;

        // Cycle accounting: S segment cycles, plus WB back-pressure if
        // this beat produced more hits than the WB port can retire.
        let wb_cycles = beat_hits.div_ceil(self.engine.config.wb_rate_per_cycle.max(1) as u64);
        let extra_wb = wb_cycles.saturating_sub(segments);
        self.channel_ready[ch] = t_data + segments + extra_wb;
        self.stats.busy_cycles += segments;
        self.stats.wb_stall_cycles += extra_wb;
        BeatOutcome {
            delivered_cycle: t_data,
            hits: beat_hits,
        }
    }

    /// Delivers a whole beat stream through the event-driven
    /// **fast-forward** path.
    ///
    /// Semantics are bit-identical to calling [`EngineSession::push_beat`]
    /// once per beat (same hits, same [`CycleReport`] fields — enforced by
    /// the `fast_forward_equivalence` test matrix), but two per-beat costs
    /// are amortised:
    ///
    /// * **Datapath**: alignment instances are scored through the fused
    ///   per-element truth tables ([`FusedScorer`]) with a
    ///   mismatch-budget early exit, instead of per-element evaluation of
    ///   the two-LUT comparator netlist. This is only valid while the
    ///   live configuration equals the engine's golden cell; if a
    ///   configuration upset is present ([`EngineSession::set_cell`]),
    ///   the whole stream takes the exact per-beat slow path so the
    ///   corrupted netlist is faithfully modelled.
    /// * **Cycle accounting**: stall-free beats are batched per channel
    ///   and advanced over whole AXI bursts in O(1)
    ///   ([`AxiChannel::fetch_burst`]). Only two events can interrupt a
    ///   batch — a burst boundary (the next beat may stall on the
    ///   inter-burst gap) and WB back-pressure (`extra_wb > 0` changes
    ///   the consumer's pace) — and both fall back to the exact
    ///   single-beat update.
    pub fn push_beats_fast(&mut self, beats: &[AxiBeat]) {
        debug_assert!(!self.finished, "session already finished");
        if self.cell != self.engine.cell {
            // A live SEU is present: the fused scorer models the *golden*
            // datapath, so it cannot reproduce the corrupted netlist's
            // outputs. Take the exact per-beat path for the whole stream.
            for beat in beats {
                self.push_beat(beat);
            }
            return;
        }
        let query_len = self.engine.query.len();
        let segments = self.engine.plan.segments.max(1) as u64;
        let channels = self.channel_ready.len();
        let bpb = self.engine.config.axi.beats_per_burst;
        let wb_rate = self.engine.config.wb_rate_per_cycle.max(1) as u64;
        let threshold = self.engine.dsp.threshold();
        // Stall-free beats deferred per channel, waiting to be advanced
        // in one `fetch_burst` call.
        let mut pending = vec![0u64; channels];
        for beat in beats {
            let ch = (self.beat_index % channels as u64) as usize;
            self.beat_index += 1;

            // Fused-table scoring — bit-identical to the golden
            // comparator netlist (property-tested in `fabp-encoding` and
            // revalidated by the equivalence matrix).
            let mut beat_hits = 0u64;
            {
                let window = self.stream.push_beat(beat);
                if window.elements.len() >= query_len {
                    for offset in 0..=window.elements.len() - query_len {
                        let position = window.start_position + offset;
                        if position < self.next_position {
                            continue;
                        }
                        self.stats.instances_evaluated += 1;
                        if let Some(score) = self
                            .engine
                            .fused
                            .score_window_thresholded(&window.elements[offset..], threshold)
                        {
                            self.hits.push(Hit { position, score });
                            beat_hits += 1;
                        }
                    }
                    self.next_position =
                        window.start_position + window.elements.len() - query_len + 1;
                }
            }
            self.consumed += beat.valid as u64;

            let wb_cycles = beat_hits.div_ceil(wb_rate);
            let extra_wb = wb_cycles.saturating_sub(segments);

            // This beat's index within the channel's own sequence: beats
            // already fetched plus beats deferred ahead of it.
            let local = self.axi[ch].stats().beats + pending[ch];
            let new_burst = bpb != u64::MAX && local.is_multiple_of(bpb);
            if pending[ch] > 0 && (new_burst || extra_wb > 0) {
                // Event boundary: advance the deferred stall-free beats
                // in O(1) before handling this one exactly.
                self.flush_pending(ch, pending[ch], segments);
                pending[ch] = 0;
            }
            if extra_wb > 0 {
                // WB back-pressure alters the consumer's pace for this
                // beat: exact single-beat update, as in `push_beat`.
                let t_data = self.axi[ch].fetch_beat(self.channel_ready[ch]);
                self.channel_ready[ch] = t_data + segments + extra_wb;
                self.stats.busy_cycles += segments;
                self.stats.wb_stall_cycles += extra_wb;
            } else {
                pending[ch] += 1;
            }
        }
        for (ch, &deferred) in pending.iter().enumerate() {
            if deferred > 0 {
                self.flush_pending(ch, deferred, segments);
            }
        }
    }

    /// Advances `n` deferred stall-free beats on channel `ch` in O(1) —
    /// the closed form of `n` successive `fetch_beat` + `+= segments`
    /// steps (bit-identical by [`AxiChannel::fetch_burst`]'s contract:
    /// within a burst at `segments >= 1` cycles/beat, only the first beat
    /// can stall).
    fn flush_pending(&mut self, ch: usize, n: u64, segments: u64) {
        self.channel_ready[ch] = self.axi[ch].fetch_burst(self.channel_ready[ch], n, segments);
        self.stats.busy_cycles += segments * n;
    }

    /// Total reference elements consumed so far — the progress signal a
    /// watchdog monitors; a session whose `consumed()` stops advancing
    /// while cycles elapse is wedged.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Index of the next beat to be delivered.
    pub fn beat_index(&self) -> u64 {
        self.beat_index
    }

    /// The current cycle frontier (max over channels).
    pub fn current_cycle(&self) -> u64 {
        self.channel_ready.iter().copied().max().unwrap_or(0)
    }

    /// Hits accepted so far.
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// The live comparator configuration (readback surface for
    /// configuration scrubbing).
    pub fn cell(&self) -> ComparatorCell {
        self.cell
    }

    /// Overwrites the live comparator configuration — the configuration
    /// upset (SEU) injection surface. The engine's golden cell is
    /// untouched; [`EngineSession::scrub_cell`] restores it.
    pub fn set_cell(&mut self, cell: ComparatorCell) {
        self.cell = cell;
    }

    /// Restores the comparator configuration from the engine's golden
    /// copy, returning `true` when the live configuration differed
    /// (i.e. an upset was present).
    pub fn scrub_cell(&mut self) -> bool {
        let dirty = self.cell != self.engine.cell;
        self.cell = self.engine.cell;
        dirty
    }

    /// Inserts `cycles` idle cycles on every channel — models the
    /// datapath pausing for a configuration readback (scrub) window.
    pub fn inject_idle(&mut self, cycles: u64) {
        for ready in &mut self.channel_ready {
            *ready += cycles;
        }
    }

    /// Captures the datapath state for later [`EngineSession::restore`].
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            stream: self.stream.clone(),
            next_position: self.next_position,
            beat_index: self.beat_index,
            consumed: self.consumed,
            hit_count: self.hits.len(),
            instances_evaluated: self.stats.instances_evaluated,
        }
    }

    /// Rewinds the datapath to a checkpoint (hits after it are
    /// discarded). Cycle and DRAM-traffic accounting are *not* rewound:
    /// the beats replayed after a restore are genuinely re-fetched and
    /// re-scored, so their cost stays on the books.
    pub fn restore(&mut self, checkpoint: &EngineCheckpoint) {
        self.stream = checkpoint.stream.clone();
        self.next_position = checkpoint.next_position;
        self.beat_index = checkpoint.beat_index;
        self.consumed = checkpoint.consumed;
        self.hits.truncate(checkpoint.hit_count);
        self.stats.instances_evaluated = checkpoint.instances_evaluated;
    }

    /// Closes the session, publishing telemetry to the global registry.
    pub fn finish(self) -> EngineRun {
        self.finish_with_registry(fabp_telemetry::Registry::global())
    }

    /// Closes the session: adds the pipeline-drain latency, derives the
    /// summary statistics and publishes telemetry to `registry`.
    pub fn finish_with_registry(mut self, registry: &fabp_telemetry::Registry) -> EngineRun {
        self.finished = true;
        let end = self.current_cycle() + self.engine.config.pipeline_depth;
        let per_channel: Vec<_> = self.axi.iter().map(AxiChannel::stats).collect();
        let mut stats = self.stats;
        stats.cycles = end;
        stats.beats = per_channel.iter().map(|s| s.beats).sum();
        stats.bytes_read = per_channel.iter().map(|s| s.bytes).sum();
        stats.stall_cycles += per_channel.iter().map(|s| s.stall_cycles).sum::<u64>();
        stats.kernel_seconds = end as f64 / self.engine.config.device.clock_hz;
        stats.achieved_bandwidth = if end > 0 {
            stats.bytes_read as f64 / stats.kernel_seconds
        } else {
            0.0
        };
        crate::telemetry::record_engine_run(registry, &stats, &per_channel, self.hits.len());
        EngineRun {
            hits: self.hits,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use fabp_bio::seq::{ProteinSeq, RnaSeq};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_for(protein: &str, threshold: u32) -> FabpEngine {
        let protein: ProteinSeq = protein.parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        FabpEngine::new(query, EngineConfig::kintex7(threshold)).unwrap()
    }

    #[test]
    fn finds_planted_perfect_hit() {
        let mut rng = StdRng::seed_from_u64(42);
        let protein = random_protein(20, &mut rng);
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let mut reference = random_rna(1000, &mut rng);
        // Plant at position 400.
        let mut bases: Vec<_> = reference.as_slice().to_vec();
        bases.splice(400..400 + coding.len(), coding.iter().copied());
        reference = RnaSeq::from(bases);

        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len() as u32;
        let engine = FabpEngine::new(query, EngineConfig::kintex7(qlen)).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));
        assert!(
            run.hits
                .iter()
                .any(|h| h.position == 400 && h.score == qlen),
            "hits: {:?}",
            run.hits
        );
    }

    #[test]
    fn hits_match_functional_scorer_across_chunk_boundaries() {
        // Reference long enough to span several 256-element beats; verify
        // against EncodedQuery::score_all_positions at every position.
        let mut rng = StdRng::seed_from_u64(7);
        let protein = random_protein(15, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(1500, &mut rng);
        let threshold = 30u32;
        let engine = FabpEngine::new(query.clone(), EngineConfig::kintex7(threshold)).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));

        let expected: Vec<Hit> = query
            .score_all_positions(reference.as_slice())
            .into_iter()
            .enumerate()
            .filter(|&(_, s)| s as u32 >= threshold)
            .map(|(position, score)| Hit {
                position,
                score: score as u32,
            })
            .collect();
        assert_eq!(run.hits, expected);
    }

    #[test]
    fn all_positions_evaluated_exactly_once() {
        let mut rng = StdRng::seed_from_u64(8);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let reference = random_rna(900, &mut rng);
        // Threshold 0: every instance is a hit.
        let engine = FabpEngine::new(query, EngineConfig::kintex7(0)).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));
        assert_eq!(run.hits.len(), reference.len() - qlen + 1);
        for (i, h) in run.hits.iter().enumerate() {
            assert_eq!(h.position, i);
        }
        assert_eq!(run.stats.instances_evaluated, run.hits.len() as u64);
    }

    #[test]
    fn short_query_is_bandwidth_bound_with_high_bw() {
        let engine = engine_for(&"M".repeat(50), 1000);
        assert_eq!(engine.plan().segments, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let reference = random_rna(256 * 1024, &mut rng);
        let run = engine.run(&PackedSeq::from_rna(&reference));
        let bw = run.stats.achieved_bandwidth;
        assert!(
            bw > 11.0e9 && bw <= 12.8e9,
            "achieved bandwidth {:.2} GB/s",
            bw / 1e9
        );
    }

    #[test]
    fn long_query_bandwidth_drops_by_segment_factor() {
        let engine = engine_for(&"M".repeat(250), 1000);
        let s = engine.plan().segments as f64;
        assert!(s >= 3.0);
        let mut rng = StdRng::seed_from_u64(10);
        let reference = random_rna(64 * 1024, &mut rng);
        let run = engine.run(&PackedSeq::from_rna(&reference));
        let expected = 12.8e9 / s;
        let bw = run.stats.achieved_bandwidth;
        assert!(
            (bw - expected).abs() / expected < 0.15,
            "bw {:.2} GB/s, expected ≈{:.2} GB/s",
            bw / 1e9,
            expected / 1e9
        );
    }

    #[test]
    fn model_time_agrees_with_simulation() {
        for protein_len in [30usize, 120] {
            let engine = engine_for(&"M".repeat(protein_len), 1000);
            let mut rng = StdRng::seed_from_u64(11);
            let reference = random_rna(32 * 1024, &mut rng);
            let run = engine.run(&PackedSeq::from_rna(&reference));
            let modeled = engine.model_kernel_seconds((reference.len() as u64).div_ceil(4));
            // bytes = len/4 (2 bits per base -> 4 bases per byte).
            let simulated = run.stats.kernel_seconds;
            let ratio = modeled / simulated;
            assert!(
                (0.8..1.2).contains(&ratio),
                "len {protein_len}: modeled {modeled:.2e} vs simulated {simulated:.2e}"
            );
        }
    }

    #[test]
    fn wb_backpressure_adds_cycles_when_everything_hits() {
        let mut rng = StdRng::seed_from_u64(12);
        let protein = random_protein(5, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(8 * 1024, &mut rng);
        let mut config = EngineConfig::kintex7(0); // every position hits
        config.wb_rate_per_cycle = 4;
        let engine = FabpEngine::new(query, config).unwrap();
        let run = engine.run(&PackedSeq::from_rna(&reference));
        assert!(
            run.stats.wb_stall_cycles > 0,
            "256 hits/beat must exceed 4/cycle WB rate"
        );
    }

    #[test]
    fn empty_reference_is_graceful() {
        let engine = engine_for("MFW", 0);
        let run = engine.run(&PackedSeq::new());
        assert!(run.hits.is_empty());
        assert_eq!(run.stats.beats, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_query_panics() {
        let query = EncodedQuery::from_exact_rna(&RnaSeq::new());
        let _ = FabpEngine::new(query, EngineConfig::kintex7(0));
    }
}
