//! FPGA primitive models: LUT6, flip-flop and DSP threshold slice.
//!
//! "Each LUT has 6 inputs, and every function with 6 inputs can be
//! implemented in a LUT … we directly instantiate LUT primitives"
//! (paper §III-D). [`Lut6`] models a Xilinx LUT6 as its 64-bit truth
//! table (the `INIT` value); the comparator and Pop-Counter netlists are
//! built from these, so the simulated datapath computes exactly what the
//! synthesized RTL would.

use std::fmt;

/// A 6-input lookup table: 64-bit truth table, one output.
///
/// Input bit `i` of the address corresponds to LUT input `I{i}`; the
/// output is bit `address` of the truth table — the same convention as a
/// Xilinx `LUT6` primitive's `INIT` parameter.
///
/// # Examples
///
/// ```
/// use fabp_fpga::primitives::Lut6;
///
/// // A 6-input AND gate: only address 0b111111 is true.
/// let and6 = Lut6::from_fn(|addr| addr == 0b11_1111);
/// assert!(and6.eval_addr(0b11_1111));
/// assert!(!and6.eval_addr(0b11_1110));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lut6 {
    init: u64,
}

impl Lut6 {
    /// A LUT whose output is constant 0.
    pub const ZERO: Lut6 = Lut6 { init: 0 };

    /// Builds a LUT from its 64-bit `INIT` truth table.
    #[inline]
    pub const fn from_init(init: u64) -> Lut6 {
        Lut6 { init }
    }

    /// Builds a LUT by evaluating `f` on all 64 input addresses.
    pub fn from_fn<F: FnMut(u8) -> bool>(mut f: F) -> Lut6 {
        let mut init = 0u64;
        for addr in 0..64u8 {
            if f(addr) {
                init |= 1 << addr;
            }
        }
        Lut6 { init }
    }

    /// The raw `INIT` truth table.
    #[inline]
    pub const fn init(self) -> u64 {
        self.init
    }

    /// Evaluates the LUT at a 6-bit input address.
    #[inline]
    pub const fn eval_addr(self, addr: u8) -> bool {
        (self.init >> (addr & 0b11_1111)) & 1 == 1
    }

    /// Evaluates the LUT on individual input bits `I0..I5`.
    #[inline]
    pub fn eval(self, inputs: [bool; 6]) -> bool {
        let mut addr = 0u8;
        for (i, &bit) in inputs.iter().enumerate() {
            addr |= (bit as u8) << i;
        }
        self.eval_addr(addr)
    }
}

impl fmt::Display for Lut6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LUT6 #INIT=64'h{:016X}", self.init)
    }
}

impl fmt::LowerHex for Lut6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.init, f)
    }
}

/// A D flip-flop with synchronous reset, modelled at the cycle level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipFlop {
    q: bool,
}

impl FlipFlop {
    /// A flip-flop initialised to 0.
    pub const fn new() -> FlipFlop {
        FlipFlop { q: false }
    }

    /// Current output `Q`.
    #[inline]
    pub const fn q(self) -> bool {
        self.q
    }

    /// Clock edge: latches `d`, returns the *previous* output.
    #[inline]
    pub fn clock(&mut self, d: bool) -> bool {
        std::mem::replace(&mut self.q, d)
    }

    /// Synchronous reset to 0.
    #[inline]
    pub fn reset(&mut self) {
        self.q = false;
    }
}

/// A DSP slice used as an `N`-bit compare-against-threshold unit.
///
/// FabP "uses DSPs to compare the alignment score with the user-defined
/// threshold" to save LUTs for the comparators and Pop-Counters
/// (paper §IV-B). The alignment score is a 10-bit number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DspThreshold {
    threshold: u32,
}

impl DspThreshold {
    /// Width of the score operand (paper: "the alignment score is a 10-bit
    /// number").
    pub const SCORE_WIDTH: u32 = 10;

    /// Creates a threshold comparator.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` does not fit in [`Self::SCORE_WIDTH`] bits.
    pub fn new(threshold: u32) -> DspThreshold {
        assert!(
            threshold < (1 << Self::SCORE_WIDTH),
            "threshold {threshold} exceeds {} bits",
            Self::SCORE_WIDTH
        );
        DspThreshold { threshold }
    }

    /// The configured threshold.
    #[inline]
    pub const fn threshold(self) -> u32 {
        self.threshold
    }

    /// `true` when `score >= threshold` — the hit condition ("a higher
    /// score than a user-defined threshold", §III-C).
    #[inline]
    pub const fn exceeds(self, score: u32) -> bool {
        score >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_from_fn_matches_eval() {
        let parity = Lut6::from_fn(|addr| addr.count_ones() % 2 == 1);
        for addr in 0..64u8 {
            assert_eq!(parity.eval_addr(addr), addr.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn lut_eval_bit_order() {
        // Output = I5 (address bit 5).
        let i5 = Lut6::from_fn(|addr| addr & 0b10_0000 != 0);
        assert!(i5.eval([false, false, false, false, false, true]));
        assert!(!i5.eval([true, true, true, true, true, false]));
    }

    #[test]
    fn lut_init_round_trip() {
        let lut = Lut6::from_init(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(Lut6::from_fn(|a| lut.eval_addr(a)).init(), lut.init());
    }

    #[test]
    fn lut_addr_is_masked() {
        let lut = Lut6::from_init(1); // true only at addr 0
        assert!(lut.eval_addr(0b0100_0000)); // high bits ignored
    }

    #[test]
    fn flip_flop_delays_by_one_cycle() {
        let mut ff = FlipFlop::new();
        assert!(!ff.q());
        assert!(!ff.clock(true)); // returns old value
        assert!(ff.q());
        assert!(ff.clock(false));
        assert!(!ff.q());
        ff.clock(true);
        ff.reset();
        assert!(!ff.q());
    }

    #[test]
    fn dsp_threshold_semantics() {
        let dsp = DspThreshold::new(100);
        assert!(dsp.exceeds(100));
        assert!(dsp.exceeds(1023));
        assert!(!dsp.exceeds(99));
        assert_eq!(dsp.threshold(), 100);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn dsp_threshold_rejects_wide_values() {
        let _ = DspThreshold::new(1024);
    }

    #[test]
    fn lut_display_shows_init() {
        let lut = Lut6::from_init(0xFF);
        assert!(lut.to_string().contains("00000000000000FF"));
    }
}
