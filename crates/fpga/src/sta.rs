//! Static timing analysis (STA) over netlists.
//!
//! Answers the question the paper settles empirically — does the design
//! close timing at 200 MHz? — by propagating arrival times through the
//! gate-level netlist with 7-series-flavoured delay constants: LUT logic +
//! average routing per hop, fast dedicated carry propagation, register
//! clock-to-out and setup. The flat (combinational) wide Pop-Counter fails
//! 200 MHz exactly where the paper pipelines it; the register-staged
//! variant closes comfortably.

use crate::netlist::{Netlist, NodeId, NodeKind};

/// Delay constants in nanoseconds (Kintex-7-flavoured, -2 speed grade,
/// routing averaged in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// LUT6 logic delay plus average net delay to its loads.
    pub lut_ns: f64,
    /// Carry propagation per chain element.
    pub carry_ns: f64,
    /// Entry into a carry chain (operand routing + first MUXCY).
    pub carry_entry_ns: f64,
    /// Register clock-to-output.
    pub clk_to_q_ns: f64,
    /// Register setup time.
    pub setup_ns: f64,
}

impl Default for DelayModel {
    fn default() -> DelayModel {
        DelayModel {
            lut_ns: 0.45,
            carry_ns: 0.06,
            carry_entry_ns: 0.35,
            clk_to_q_ns: 0.40,
            setup_ns: 0.10,
        }
    }
}

/// Result of a timing analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Longest combinational path in nanoseconds (input/register to
    /// output/register, including clk-to-q and setup where applicable).
    pub critical_path_ns: f64,
    /// Maximum clock frequency implied by the critical path.
    pub fmax_hz: f64,
    /// Logic levels (LUTs) on the critical path.
    pub levels: usize,
    /// Deepest LUT level count over *all* timing endpoints (register `D`
    /// pins and named outputs) — the figure `fabp-lint`'s independent
    /// depth analysis must reproduce exactly. Can exceed [`Self::levels`]
    /// when the nanosecond-critical path runs through carry chains.
    pub max_levels: usize,
    /// The node at the end of the critical path.
    pub endpoint: Option<NodeId>,
}

impl TimingReport {
    /// Whether the design closes timing at `clock_hz`.
    pub fn meets(&self, clock_hz: f64) -> bool {
        self.fmax_hz >= clock_hz
    }
}

/// Analyses a netlist under the delay model.
///
/// Arrival times start at 0 for inputs/constants and at `clk_to_q` for
/// register outputs; the critical path is the maximum over all register
/// `D` pins (plus setup) and all named outputs.
pub fn analyze(netlist: &Netlist, delays: &DelayModel) -> TimingReport {
    let ids: Vec<NodeId> = netlist.node_ids().collect();
    let n = ids.len();
    let mut arrival = vec![0.0f64; n];
    let mut levels = vec![0usize; n];

    for &id in &ids {
        let idx = id.index();
        match netlist.node_kind(id) {
            NodeKind::Input | NodeKind::Const(_) => {
                arrival[idx] = 0.0;
            }
            NodeKind::Reg { .. } => {
                arrival[idx] = delays.clk_to_q_ns;
            }
            NodeKind::Lut(_, pins) => {
                let (worst, lvl) = pins
                    .iter()
                    .map(|p| (arrival[p.index()], levels[p.index()]))
                    .fold((0.0f64, 0usize), |(a, l), (pa, pl)| (a.max(pa), l.max(pl)));
                arrival[idx] = worst + delays.lut_ns;
                levels[idx] = lvl + 1;
            }
            NodeKind::Carry { a, b, cin } => {
                // Operand entry pays routing + mux; the chain itself is
                // fast.
                let via_operand =
                    arrival[a.index()].max(arrival[b.index()]) + delays.carry_entry_ns;
                let via_chain = arrival[cin.index()] + delays.carry_ns;
                arrival[idx] = via_operand.max(via_chain);
                levels[idx] = levels[a.index()]
                    .max(levels[b.index()])
                    .max(levels[cin.index()]);
            }
        }
    }

    // Endpoints: register D pins (plus setup) and named outputs.
    let mut critical = 0.0f64;
    let mut endpoint = None;
    let mut end_levels = 0usize;
    let mut max_levels = 0usize;
    for &id in &ids {
        if let NodeKind::Reg { d } = netlist.node_kind(id) {
            if d.index() >= arrival.len() {
                continue; // dangling D input; fabp-lint flags it
            }
            let t = arrival[d.index()] + delays.setup_ns;
            max_levels = max_levels.max(levels[d.index()]);
            if t > critical {
                critical = t;
                endpoint = Some(id);
                end_levels = levels[d.index()];
            }
        }
    }
    for (_, id) in netlist.named_outputs() {
        let t = arrival[id.index()];
        max_levels = max_levels.max(levels[id.index()]);
        if t > critical {
            critical = t;
            endpoint = Some(id);
            end_levels = levels[id.index()];
        }
    }

    TimingReport {
        critical_path_ns: critical,
        fmax_hz: if critical > 0.0 {
            1e9 / critical
        } else {
            f64::INFINITY
        },
        levels: end_levels,
        max_levels,
        endpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::build_comparator_netlist;
    use crate::pipeline::PipelinedPopCounter;
    use crate::popcount::{PopCounter, PopStyle};

    const CLOCK_200MHZ: f64 = 200.0e6;

    #[test]
    fn comparator_closes_timing_easily() {
        let (netlist, _) = build_comparator_netlist();
        let report = analyze(&netlist, &DelayModel::default());
        assert_eq!(report.levels, 2, "mux LUT + compare LUT");
        assert!((report.critical_path_ns - 0.9).abs() < 1e-9);
        assert!(report.meets(CLOCK_200MHZ));
        assert!(report.fmax_hz > 1.0e9);
    }

    #[test]
    fn flat_wide_popcounter_fails_200mhz() {
        // A combinational 750-bit Pop-Counter cannot run at 200 MHz —
        // the reason the paper pipelines it.
        let pc = PopCounter::build(750, PopStyle::HandCrafted);
        let report = analyze(pc.netlist(), &DelayModel::default());
        assert!(
            !report.meets(CLOCK_200MHZ),
            "critical path only {:.2} ns",
            report.critical_path_ns
        );
        assert!(report.critical_path_ns > 5.0);
    }

    #[test]
    fn pipelined_popcounter_closes_200mhz() {
        let pc = PipelinedPopCounter::build(750, PopStyle::HandCrafted);
        let report = analyze(pc.netlist(), &DelayModel::default());
        assert!(
            report.meets(CLOCK_200MHZ),
            "critical path {:.2} ns (fmax {:.0} MHz)",
            report.critical_path_ns,
            report.fmax_hz / 1e6
        );
    }

    #[test]
    fn pipelining_strictly_shortens_the_critical_path() {
        for width in [72usize, 150, 300] {
            let flat = analyze(
                PopCounter::build(width, PopStyle::HandCrafted).netlist(),
                &DelayModel::default(),
            );
            let staged = analyze(
                PipelinedPopCounter::build(width, PopStyle::HandCrafted).netlist(),
                &DelayModel::default(),
            );
            assert!(
                staged.critical_path_ns < flat.critical_path_ns,
                "width {width}: {:.2} vs {:.2}",
                staged.critical_path_ns,
                flat.critical_path_ns
            );
        }
    }

    #[test]
    fn empty_netlist_has_infinite_fmax() {
        let n = Netlist::new();
        let report = analyze(&n, &DelayModel::default());
        assert_eq!(report.critical_path_ns, 0.0);
        assert!(report.fmax_hz.is_infinite());
        assert!(report.endpoint.is_none());
    }

    #[test]
    fn carry_chains_are_faster_than_lut_paths() {
        // A 10-bit ripple adder's chain should cost far less than 10 LUT
        // levels.
        let mut n = Netlist::new();
        let a = n.inputs(10);
        let b = n.inputs(10);
        let sum = crate::popcount::add_vectors(&mut n, &a, &b);
        for (i, &s) in sum.iter().enumerate() {
            n.mark_output(format!("s{i}"), s);
        }
        let report = analyze(&n, &DelayModel::default());
        let ten_luts = 10.0 * DelayModel::default().lut_ns;
        assert!(
            report.critical_path_ns < ten_luts,
            "{:.2} ns vs {ten_luts:.2} ns",
            report.critical_path_ns
        );
    }
}
