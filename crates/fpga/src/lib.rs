#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # fabp-fpga — gate-level and cycle-level model of the FabP accelerator
//!
//! The paper's accelerator is Verilog on a Kintex-7; this crate is its
//! software twin, faithful at two levels:
//!
//! * **Gate level** — [`primitives::Lut6`]/[`primitives::FlipFlop`]
//!   models of the directly-instantiated FPGA primitives, composed into
//!   [`netlist::Netlist`]s for the two-LUT custom [`comparator`] (Fig. 5)
//!   and the hand-crafted Pop36 [`popcount`] (Fig. 4). Truth tables are
//!   generated from the semantic spec and verified against the golden
//!   model and the paper's printed tables.
//! * **Cycle level** — the [`axi`] DRAM channel model, the
//!   [`resources`] planner that decides query segmentation (Table I),
//!   and the [`engine`] that streams AXI beats through 256 alignment
//!   instances with bit-exact scoring and honest cycle accounting.
//!
//! ```
//! use fabp_fpga::engine::{EngineConfig, FabpEngine};
//! use fabp_encoding::encoder::EncodedQuery;
//! use fabp_bio::seq::{PackedSeq, ProteinSeq, RnaSeq};
//!
//! let protein: ProteinSeq = "MF".parse()?;
//! let query = EncodedQuery::from_protein(&protein);
//! let engine = FabpEngine::new(query, EngineConfig::kintex7(6)).unwrap();
//! let reference: RnaSeq = "GGAUGUUCGG".parse()?;
//! let run = engine.run(&PackedSeq::from_rna(&reference));
//! assert_eq!(run.hits[0].position, 2); // AUGUUC
//! # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
//! ```

pub mod axi;
pub mod comparator;
pub mod device;
pub mod engine;
pub mod fault;
pub mod instance;
pub mod netlist;
pub mod pipeline;
pub mod popcount;
pub mod power_model;
pub mod primitives;
pub mod resources;
pub mod sta;
pub mod telemetry;
pub mod vcd;
pub mod verilog;

pub use comparator::ComparatorCell;
pub use device::FpgaDevice;
pub use engine::{EngineConfig, EngineRun, EngineStats, FabpEngine, Hit};
pub use netlist::{Netlist, NodeKind, ResourceCount};
pub use pipeline::PipelinedPopCounter;
pub use primitives::{DspThreshold, FlipFlop, Lut6};
pub use resources::{crossover_query_len, plan, ArchParams, Bottleneck, FabpPlan};
pub use verilog::emit_verilog;
