//! AXI/DRAM read-channel timing model.
//!
//! "FPGA communicates with the DRAM using AXI ports … In practice, if the
//! memory access pattern is sequential, the achieved memory bandwidth will
//! be close to the nominal value. In clock cycles that the AXI port does
//! not have valid data … FabP will be stalled" (§III-C).
//!
//! The model is deterministic: sequential reads are delivered in bursts of
//! `beats_per_burst` back-to-back 512-bit beats separated by
//! `inter_burst_gap` idle cycles (row activation / refresh overhead),
//! after an initial `read_latency` pipeline fill. This reproduces the
//! paper's measured 12.2 GB/s out of the nominal 12.8 GB/s for
//! bandwidth-bound configurations.

/// Timing parameters of one AXI memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiConfig {
    /// Cycles before the first beat of a transfer arrives.
    pub read_latency: u64,
    /// Consecutive valid beats per burst.
    pub beats_per_burst: u64,
    /// Idle cycles between bursts.
    pub inter_burst_gap: u64,
}

impl Default for AxiConfig {
    /// Defaults calibrated so a fully bandwidth-bound design achieves
    /// ≈ 95 % of nominal (12.2 / 12.8 GB/s in Table I): 20-beat bursts
    /// with a 1-cycle gap.
    fn default() -> AxiConfig {
        AxiConfig {
            read_latency: 32,
            beats_per_burst: 20,
            inter_burst_gap: 1,
        }
    }
}

impl AxiConfig {
    /// An ideal channel: a beat every cycle, no latency.
    pub fn ideal() -> AxiConfig {
        AxiConfig {
            read_latency: 0,
            beats_per_burst: u64::MAX,
            inter_burst_gap: 0,
        }
    }

    /// Steady-state fraction of cycles carrying valid data.
    pub fn efficiency(&self) -> f64 {
        if self.inter_burst_gap == 0 || self.beats_per_burst == u64::MAX {
            return 1.0;
        }
        self.beats_per_burst as f64 / (self.beats_per_burst + self.inter_burst_gap) as f64
    }

    /// Cycle at which sequential beat `index` (0-based) becomes available.
    pub fn beat_available_cycle(&self, index: u64) -> u64 {
        if self.beats_per_burst == u64::MAX {
            return self.read_latency + index;
        }
        let bursts_before = index / self.beats_per_burst;
        self.read_latency + index + bursts_before * self.inter_burst_gap
    }
}

/// Running statistics of a channel during one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AxiStats {
    /// Beats delivered.
    pub beats: u64,
    /// Bytes delivered (64 per beat).
    pub bytes: u64,
    /// Cycles the consumer waited on the channel.
    pub stall_cycles: u64,
}

/// A sequential-read AXI channel: hands out beat-availability times and
/// accumulates stall statistics.
#[derive(Debug, Clone)]
pub struct AxiChannel {
    config: AxiConfig,
    next_beat: u64,
    stats: AxiStats,
}

impl AxiChannel {
    /// Creates a channel with the given timing.
    pub fn new(config: AxiConfig) -> AxiChannel {
        AxiChannel {
            config,
            next_beat: 0,
            stats: AxiStats::default(),
        }
    }

    /// The channel's timing configuration.
    pub fn config(&self) -> AxiConfig {
        self.config
    }

    /// Requests the next sequential beat, given that the consumer becomes
    /// ready at `consumer_ready_cycle`. Returns the cycle at which the
    /// consumer holds the beat.
    pub fn fetch_beat(&mut self, consumer_ready_cycle: u64) -> u64 {
        let available = self.config.beat_available_cycle(self.next_beat);
        self.next_beat += 1;
        self.stats.beats += 1;
        self.stats.bytes += 64;
        if available > consumer_ready_cycle {
            self.stats.stall_cycles += available - consumer_ready_cycle;
        }
        available.max(consumer_ready_cycle)
    }

    /// Fast-forward: fetches `n` sequential beats that all lie within a
    /// **single burst** (no inter-burst gap between them), for a consumer
    /// that becomes ready at `consumer_ready_cycle` and needs
    /// `cycles_per_beat >= 1` cycles per beat. Returns the consumer's
    /// ready cycle after the last beat.
    ///
    /// Bit-identical to `n` successive
    /// [`AxiChannel::fetch_beat`]/advance steps: within a burst,
    /// availability advances one cycle per beat while the consumer
    /// advances `cycles_per_beat >= 1`, so at most the *first* beat can
    /// stall — the whole stall-free remainder is advanced in O(1).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the `n` beats do not cross a burst boundary and
    /// that `cycles_per_beat >= 1`.
    pub fn fetch_burst(&mut self, consumer_ready_cycle: u64, n: u64, cycles_per_beat: u64) -> u64 {
        debug_assert!(n > 0, "fetch_burst needs at least one beat");
        debug_assert!(cycles_per_beat >= 1, "consumer must take >= 1 cycle/beat");
        debug_assert!(
            self.config.beats_per_burst == u64::MAX
                || (self.next_beat % self.config.beats_per_burst) + n
                    <= self.config.beats_per_burst,
            "fetch_burst range crosses a burst boundary"
        );
        let first_available = self.config.beat_available_cycle(self.next_beat);
        self.next_beat += n;
        self.stats.beats += n;
        self.stats.bytes += 64 * n;
        let start = if first_available > consumer_ready_cycle {
            self.stats.stall_cycles += first_available - consumer_ready_cycle;
            first_available
        } else {
            consumer_ready_cycle
        };
        start + n * cycles_per_beat
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> AxiStats {
        self.stats
    }

    /// Resets the channel for a new transfer.
    pub fn reset(&mut self) {
        self.next_beat = 0;
        self.stats = AxiStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_efficiency_matches_table1_ratio() {
        let eff = AxiConfig::default().efficiency();
        // 12.2 / 12.8 = 0.953; our 20/21 = 0.952.
        assert!((eff - 12.2 / 12.8).abs() < 0.01, "efficiency {eff}");
    }

    #[test]
    fn ideal_channel_streams_every_cycle() {
        let cfg = AxiConfig::ideal();
        assert_eq!(cfg.beat_available_cycle(0), 0);
        assert_eq!(cfg.beat_available_cycle(1000), 1000);
        assert_eq!(cfg.efficiency(), 1.0);
    }

    #[test]
    fn bursts_insert_gaps() {
        let cfg = AxiConfig {
            read_latency: 10,
            beats_per_burst: 4,
            inter_burst_gap: 2,
        };
        assert_eq!(cfg.beat_available_cycle(0), 10);
        assert_eq!(cfg.beat_available_cycle(3), 13);
        assert_eq!(cfg.beat_available_cycle(4), 16); // +2 gap
        assert_eq!(cfg.beat_available_cycle(8), 22); // two gaps
    }

    #[test]
    fn channel_tracks_stalls_for_fast_consumer() {
        let mut ch = AxiChannel::new(AxiConfig {
            read_latency: 5,
            beats_per_burst: 2,
            inter_burst_gap: 3,
        });
        // Consumer ready immediately each time: every gap is a stall.
        let t0 = ch.fetch_beat(0);
        assert_eq!(t0, 5);
        let t1 = ch.fetch_beat(t0 + 1);
        assert_eq!(t1, 6);
        let t2 = ch.fetch_beat(t1 + 1);
        assert_eq!(t2, 10); // burst boundary: 2 beats then 3-cycle gap
        let stats = ch.stats();
        assert_eq!(stats.beats, 3);
        assert_eq!(stats.bytes, 192);
        assert!(stats.stall_cycles >= 5 + 3);
    }

    #[test]
    fn slow_consumer_sees_no_stalls_in_steady_state() {
        let mut ch = AxiChannel::new(AxiConfig::default());
        let mut t = 100u64; // past the read latency
        for _ in 0..100 {
            // Consumer needs 4 cycles per beat (segmented long query):
            // memory always keeps up after warm-up.
            t = ch.fetch_beat(t) + 4;
        }
        let stats = ch.stats();
        assert!(
            stats.stall_cycles <= AxiConfig::default().read_latency,
            "stalls {}",
            stats.stall_cycles
        );
    }

    #[test]
    fn fetch_burst_matches_per_beat_loop() {
        let cfg = AxiConfig {
            read_latency: 7,
            beats_per_burst: 5,
            inter_burst_gap: 3,
        };
        for cycles_per_beat in [1u64, 2, 4] {
            for initial_ready in [0u64, 3, 7, 50] {
                let mut slow = AxiChannel::new(cfg);
                let mut fast = AxiChannel::new(cfg);
                let mut ready_slow = initial_ready;
                let mut ready_fast = initial_ready;
                // Whole bursts of 5, then a 3-beat partial burst.
                for n in [5u64, 5, 3] {
                    for _ in 0..n {
                        let t = slow.fetch_beat(ready_slow);
                        ready_slow = t + cycles_per_beat;
                    }
                    ready_fast = fast.fetch_burst(ready_fast, n, cycles_per_beat);
                    assert_eq!(ready_slow, ready_fast, "cpb {cycles_per_beat}");
                    assert_eq!(slow.stats(), fast.stats(), "cpb {cycles_per_beat}");
                }
            }
        }
    }

    #[test]
    fn fetch_burst_on_ideal_channel() {
        let mut slow = AxiChannel::new(AxiConfig::ideal());
        let mut fast = AxiChannel::new(AxiConfig::ideal());
        let mut ready_slow = 0u64;
        for _ in 0..100 {
            ready_slow = slow.fetch_beat(ready_slow) + 2;
        }
        let ready_fast = fast.fetch_burst(0, 100, 2);
        assert_eq!(ready_slow, ready_fast);
        assert_eq!(slow.stats(), fast.stats());
    }

    #[test]
    fn reset_clears_state() {
        let mut ch = AxiChannel::new(AxiConfig::default());
        let _ = ch.fetch_beat(0);
        ch.reset();
        assert_eq!(ch.stats().beats, 0);
        assert_eq!(ch.fetch_beat(0), AxiConfig::default().read_latency);
    }
}
