//! Property-based tests for the gate-level models.

use fabp_bio::alphabet::{AminoAcid, Nucleotide};
use fabp_bio::backtranslate::back_translate;
use fabp_encoding::instruction::Instruction;
use fabp_fpga::comparator::ComparatorCell;
use fabp_fpga::pipeline::PipelinedPopCounter;
use fabp_fpga::popcount::{PopCounter, PopStyle};
use fabp_fpga::primitives::Lut6;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Both pop-counter styles equal `count_ones` at arbitrary widths.
    #[test]
    fn popcount_equals_count_ones(
        bits in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let expected = bits.iter().filter(|&&b| b).count() as u32;
        let mut hc = PopCounter::build(bits.len(), PopStyle::HandCrafted);
        let mut tree = PopCounter::build(bits.len(), PopStyle::TreeAdder);
        prop_assert_eq!(hc.count(&bits), expected);
        prop_assert_eq!(tree.count(&bits), expected);
    }

    /// The pipelined counter settles to the combinational value.
    #[test]
    fn pipelined_popcount_settles(
        bits in prop::collection::vec(any::<bool>(), 1..80),
    ) {
        let expected = bits.iter().filter(|&&b| b).count() as u32;
        let mut pc = PipelinedPopCounter::build(bits.len(), PopStyle::HandCrafted);
        prop_assert_eq!(pc.count_blocking(&bits), expected);
    }

    /// LUT6 truth tables round-trip through from_fn/eval.
    #[test]
    fn lut6_init_round_trip(init in any::<u64>()) {
        let lut = Lut6::from_init(init);
        let rebuilt = Lut6::from_fn(|addr| lut.eval_addr(addr));
        prop_assert_eq!(rebuilt.init(), init);
    }

    /// The comparator cell agrees with the golden model on arbitrary
    /// (amino acid, codon position, reference context) tuples.
    #[test]
    fn comparator_cell_matches_golden(
        aa_index in 0usize..21,
        position in 0usize..3,
        ref_code in 0u8..4,
        p1 in 0u8..4,
        p2 in 0u8..4,
    ) {
        let cell = ComparatorCell::new();
        let element = back_translate(AminoAcid::ALL[aa_index]).0[position];
        let instr = Instruction::encode(element);
        let reference = Nucleotide::from_code2(ref_code);
        let prev1 = Some(Nucleotide::from_code2(p1));
        let prev2 = Some(Nucleotide::from_code2(p2));
        prop_assert_eq!(
            cell.matches(instr, reference, prev1, prev2),
            element.matches(reference, prev1, prev2)
        );
    }

    /// Verilog emission is deterministic and structurally complete for
    /// arbitrary-width pop-counters.
    #[test]
    fn verilog_is_deterministic(width in 1usize..60) {
        let pc = PopCounter::build(width, PopStyle::HandCrafted);
        let a = fabp_fpga::verilog::emit_verilog(pc.netlist(), "m");
        let b = fabp_fpga::verilog::emit_verilog(pc.netlist(), "m");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.matches("LUT6 #(").count(), pc.resources().luts);
        prop_assert!(a.ends_with("endmodule\n"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cycle engine and the plan agree on segmentation-driven
    /// bandwidth for arbitrary query lengths that fit the device.
    #[test]
    fn plan_bandwidth_consistency(aa in 5usize..250) {
        use fabp_fpga::device::FpgaDevice;
        use fabp_fpga::resources::{plan, ArchParams};
        let p = plan(&FpgaDevice::kintex7(), aa * 3, 1, &ArchParams::default());
        prop_assume!(p.is_ok());
        let p = p.unwrap();
        prop_assert!(p.segments >= 1);
        prop_assert!(p.segment_len * p.segments >= aa * 3);
        prop_assert!(p.utilization.max_fraction() <= ArchParams::default().headroom + 1e-9);
        if p.segments == 1 {
            prop_assert_eq!(p.bottleneck, fabp_fpga::resources::Bottleneck::Bandwidth);
        }
    }
}
