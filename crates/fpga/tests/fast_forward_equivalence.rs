//! Fast-forward ⇄ per-beat equivalence matrix.
//!
//! The event-driven fast path ([`fabp_fpga::engine::EngineSession::push_beats_fast`],
//! used by [`fabp_fpga::engine::FabpEngine::run_beats`]) must produce a
//! [`fabp_fpga::engine::CycleReport`] that is **field-for-field identical**
//! to the exact per-beat model ([`fabp_fpga::engine::FabpEngine::run_beats_exact`])
//! — same `cycles`, `stall_cycles`, `wb_stall_cycles`, `busy_cycles`,
//! `beats`, `bytes_read`, `instances_evaluated` — and the same hit list,
//! across devices, channel counts, AXI timings, segmentation depths,
//! thresholds, reference shapes, injected stream stalls and injected
//! configuration faults.

use fabp_bio::generate::{random_protein, random_rna};
use fabp_bio::seq::PackedSeq;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::packing::axi_beats;
use fabp_fpga::axi::AxiConfig;
use fabp_fpga::comparator::ComparatorCell;
use fabp_fpga::device::FpgaDevice;
use fabp_fpga::engine::{CycleReport, EngineConfig, FabpEngine};
use fabp_fpga::primitives::Lut6;
use fabp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts every cycle-accounting field of two reports is identical.
fn assert_reports_identical(fast: &CycleReport, exact: &CycleReport, label: &str) {
    assert_eq!(fast.cycles, exact.cycles, "{label}: cycles");
    assert_eq!(fast.beats, exact.beats, "{label}: beats");
    assert_eq!(fast.bytes_read, exact.bytes_read, "{label}: bytes_read");
    assert_eq!(
        fast.stall_cycles, exact.stall_cycles,
        "{label}: stall_cycles"
    );
    assert_eq!(
        fast.wb_stall_cycles, exact.wb_stall_cycles,
        "{label}: wb_stall_cycles"
    );
    assert_eq!(fast.busy_cycles, exact.busy_cycles, "{label}: busy_cycles");
    assert_eq!(
        fast.instances_evaluated, exact.instances_evaluated,
        "{label}: instances_evaluated"
    );
    assert_eq!(
        fast.kernel_seconds, exact.kernel_seconds,
        "{label}: kernel_seconds"
    );
}

#[test]
fn matrix_devices_axi_thresholds_lengths() {
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let devices: [(&str, FpgaDevice); 2] = [
        ("kintex7/1ch", FpgaDevice::kintex7()),
        ("virtex7/2ch", FpgaDevice::virtex7()),
    ];
    let axis: [(&str, AxiConfig); 3] = [
        ("default", AxiConfig::default()),
        ("ideal", AxiConfig::ideal()),
        (
            "tight",
            AxiConfig {
                read_latency: 3,
                beats_per_burst: 2,
                inter_burst_gap: 5,
            },
        ),
    ];
    // Short query → 1 segment; long query → several segments (compute
    // bound), exercising both sides of the burst fast-forward condition.
    for protein_len in [8usize, 90] {
        let protein = random_protein(protein_len, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len() as u32;
        for (dev_name, device) in &devices {
            for (axi_name, axi) in &axis {
                // Threshold 0 floods the WB port (every instance hits);
                // qlen is hit-sparse; a mid threshold mixes both.
                for threshold in [0u32, qlen / 2, qlen] {
                    let config = EngineConfig {
                        device: device.clone(),
                        axi: *axi,
                        channels: device.mem_channels,
                        threshold,
                        ..EngineConfig::kintex7(threshold)
                    };
                    let engine = FabpEngine::new(query.clone(), config).unwrap();
                    for ref_len in [0usize, protein_len, 4096, 10_000] {
                        let reference = random_rna(ref_len, &mut rng);
                        let packed = PackedSeq::from_rna(&reference);
                        let beats = axi_beats(&packed);
                        let fast = engine.run_beats(&beats, &Registry::new());
                        let exact = engine.run_beats_exact(&beats, &Registry::new());
                        let label =
                            format!("{dev_name}/{axi_name}/q{protein_len}/t{threshold}/r{ref_len}");
                        assert_eq!(fast.hits, exact.hits, "{label}: hits");
                        assert_reports_identical(&fast.stats, &exact.stats, &label);
                    }
                }
            }
        }
    }
}

#[test]
fn injected_stream_stalls_keep_reports_identical() {
    // Random beats are delayed (refresh storm / wedged DMA model) in both
    // sessions identically; the fast path must degrade to the exact model
    // around each event with no accounting drift.
    let mut rng = StdRng::seed_from_u64(0xD1A7);
    let protein = random_protein(20, &mut rng);
    let query = EncodedQuery::from_protein(&protein);
    let reference = random_rna(6_000, &mut rng);
    let packed = PackedSeq::from_rna(&reference);
    let beats = axi_beats(&packed);
    let engine = FabpEngine::new(query, EngineConfig::kintex7(30)).unwrap();

    // Delay schedule: ~1 beat in 5 gets a random extra latency.
    let delays: Vec<u64> = beats
        .iter()
        .map(|_| {
            if rng.gen_range(0..5) == 0 {
                rng.gen_range(1..100)
            } else {
                0
            }
        })
        .collect();

    // Exact session: per-beat throughout.
    let mut exact = engine.session();
    for (beat, &d) in beats.iter().zip(&delays) {
        exact.push_beat_delayed(beat, d);
    }
    let exact = exact.finish_with_registry(&Registry::new());

    // Fast session: stall-free runs go through push_beats_fast; delayed
    // beats take the exact injection surface.
    let mut fast = engine.session();
    let mut run_start = 0usize;
    for (i, &d) in delays.iter().enumerate() {
        if d > 0 {
            fast.push_beats_fast(&beats[run_start..i]);
            fast.push_beat_delayed(&beats[i], d);
            run_start = i + 1;
        }
    }
    fast.push_beats_fast(&beats[run_start..]);
    let fast = fast.finish_with_registry(&Registry::new());

    assert_eq!(fast.hits, exact.hits);
    assert_reports_identical(&fast.stats, &exact.stats, "delayed-stream");
}

#[test]
fn configuration_fault_forces_slow_path_and_stays_exact() {
    // A configuration upset makes the live cell diverge from the golden
    // netlist. The fused fast datapath models the *golden* tables, so the
    // fast-forward entry point must detect the upset and take the exact
    // per-beat path — reproducing the corrupted netlist's (wrong) hits
    // bit-for-bit, not the golden ones.
    let mut rng = StdRng::seed_from_u64(0x5E0);
    let protein = random_protein(12, &mut rng);
    let query = EncodedQuery::from_protein(&protein);
    let reference = random_rna(3_000, &mut rng);
    let packed = PackedSeq::from_rna(&reference);
    let beats = axi_beats(&packed);
    let engine = FabpEngine::new(query, EngineConfig::kintex7(0)).unwrap();

    let golden = ComparatorCell::new();
    // Invert the compare LUT wholesale: every match decision flips.
    let corrupted = ComparatorCell::from_luts(golden.mux(), Lut6::from_init(!golden.cmp().init()));

    let mut fast = engine.session();
    fast.set_cell(corrupted);
    fast.push_beats_fast(&beats);
    let fast = fast.finish_with_registry(&Registry::new());

    let mut exact = engine.session();
    exact.set_cell(corrupted);
    for beat in &beats {
        exact.push_beat(beat);
    }
    let exact = exact.finish_with_registry(&Registry::new());

    assert_eq!(fast.hits, exact.hits);
    assert_reports_identical(&fast.stats, &exact.stats, "seu-corrupted");

    // Sanity: the corruption genuinely changes the datapath — a pristine
    // run must disagree, otherwise this test proves nothing.
    let pristine = engine.run_beats(&beats, &Registry::new());
    assert_ne!(
        pristine.hits, fast.hits,
        "inverted compare LUT should alter scoring"
    );
}

#[test]
fn single_beat_runs_and_wb_flood_agree() {
    // Degenerate shapes: exactly one beat; and threshold 0 on a dense
    // reference so *every* beat carries WB back-pressure (the fast path
    // never accumulates a burst).
    let mut rng = StdRng::seed_from_u64(0xBEA7);
    let protein = random_protein(5, &mut rng);
    let query = EncodedQuery::from_protein(&protein);
    let mut config = EngineConfig::kintex7(0);
    config.wb_rate_per_cycle = 1; // worst-case WB drain
    let engine = FabpEngine::new(query, config).unwrap();
    for ref_len in [256usize, 257, 2_048] {
        let reference = random_rna(ref_len, &mut rng);
        let packed = PackedSeq::from_rna(&reference);
        let beats = axi_beats(&packed);
        let fast = engine.run_beats(&beats, &Registry::new());
        let exact = engine.run_beats_exact(&beats, &Registry::new());
        assert_eq!(fast.hits, exact.hits, "r{ref_len}: hits");
        assert_reports_identical(&fast.stats, &exact.stats, &format!("wb-flood/r{ref_len}"));
        assert!(
            fast.stats.wb_stall_cycles > 0,
            "r{ref_len}: flood must exercise WB back-pressure"
        );
    }
}
