//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This vendored shim keeps the workspace's
//! property tests compiling and running with the same source text:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`);
//! * [`strategy::Strategy`] with `prop_map`, integer/float range
//!   strategies, [`arbitrary::any`], `prop::collection::vec`,
//!   `prop::option::of`, and a tiny `"[chars]{min,max}"` regex-string
//!   strategy;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (mapped to panicking asserts).
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name, overridable with the
//! `PROPTEST_SEED` environment variable) and failing cases are **not
//! shrunk** — the panic message reports the failing values instead.

#![forbid(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters generated values (regenerates until `f` accepts, up to
        /// an attempt cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.unit_f64_inclusive() * (end - start)
        }
    }

    /// String strategy from a micro-regex: `[chars]{min,max}` (a single
    /// character class with a bounded repetition; the only shape the
    /// workspace uses). Literal strings without a class repeat verbatim.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((chars, min, max)) => {
                    let len = min + rng.below((max - min + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[abc]{1,80}` into (chars, min, max). Returns `None` for
    /// anything else.
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let body = rest.strip_suffix('}')?;
        let (min, max) = match body.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = body.trim().parse().ok()?;
                (n, n)
            }
        };
        if min > max || class.is_empty() {
            return None;
        }
        Some((class.chars().collect(), min, max))
    }

    /// Strategy for a type's whole value space ([`crate::arbitrary::any`]).
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for AnyStrategy<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// Strategy over the whole value space of `T` (supported: ints, bool,
    /// f64).
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The `prop::` namespace (`collection`, `option`, `num`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Permitted element counts for collection strategies.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        // The workspace writes `vec(strategy, 1..6)` with an i32-literal
        // range; accept it for source compatibility.
        impl From<Range<i32>> for SizeRange {
            fn from(r: Range<i32>) -> SizeRange {
                SizeRange::from(r.start as usize..r.end as usize)
            }
        }

        /// Strategy producing `Vec`s of `element` values.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vector of `size.into()` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min + rng.below(span + 1) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Option<S::Value>` (≈ 25 % `None`, like upstream).
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S>(S);

        /// `None` a quarter of the time, `Some(element)` otherwise.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    /// Upstream-compatible name.
    pub use Config as ProptestConfig;

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic xoshiro256++ RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from a 64-bit value via SplitMix64.
        pub fn seed_from_u64(mut state: u64) -> TestRng {
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            TestRng { s }
        }

        /// Next uniform 64-bit value (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound == 0` yields 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound <= 1 {
                return 0;
            }
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `f64` in `[0, 1]`.
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }
    }

    /// Runs the configured number of cases for one `proptest!` test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        /// Builds a runner whose RNG is seeded from `name` (override with
        /// the `PROPTEST_SEED` environment variable).
        pub fn new(config: Config, name: &str) -> TestRunner {
            let seed = match std::env::var("PROPTEST_SEED") {
                Ok(v) => v.parse().unwrap_or(0xF00D),
                // FNV-1a over the test name: deterministic per test.
                Err(_) => name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                }),
            };
            TestRunner {
                config,
                rng: TestRng::seed_from_u64(seed),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The case-generation RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current random case when the assumption does not hold.
///
/// Upstream proptest rejects the case and draws a replacement; this
/// subset simply `continue`s to the next iteration of the case loop
/// (the macro therefore only works inside `proptest!` bodies, which is
/// also upstream's contract).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property test (no shrinking: panics with
/// the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(binding in strategy, ...)` body
/// runs for the configured number of random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            // Build each strategy once; generate per case.
            $(let __strategy_of = &$strategy;
              // Shadow into a uniquely named binding per strategy via tuple
              // construction below.
              let $binding = __strategy_of;)+
            for __case in 0..runner.cases() {
                $(let $binding =
                    $crate::strategy::Strategy::generate($binding, runner.rng());)+
                $body
            }
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}
