//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched from crates.io. This vendored shim implements exactly
//! the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`), matching the real API shape (the
//!   *stream* differs from upstream `rand`, which is fine: callers only
//!   rely on determinism, never on specific upstream values);
//! * [`Rng`] — `gen`, `gen_range` (integer and float ranges, half-open and
//!   inclusive) and `gen_bool`;
//! * [`SeedableRng`] — `seed_from_u64` and `from_seed`.
//!
//! Anything outside this subset is intentionally absent; add it here if a
//! new caller needs it rather than reaching for the network.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53-bit uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public domain; Vigna 2015).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the standard (uniform) distribution via
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection
/// (simplified: 64-bit modulo with rejection of the biased tail).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    ///
    /// Not cryptographically secure; same API shape as `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (public domain; Blackman & Vigna 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: this shim's small generator is the same engine.
    pub type SmallRng = StdRng;
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0..4);
            assert!(v < 4);
            let w = rng.gen_range(10usize..=20);
            assert!((10..=20).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(5u32..=5), 5);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn works_through_mut_references_and_dyn_bounds() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_generic(&mut rng);
        let _: u8 = rng.gen();
        let _: bool = rng.gen();
        let _: f64 = rng.gen();
    }
}
