//! Offline drop-in subset of the `criterion` 0.5 bench API.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This vendored shim keeps the workspace's
//! `harness = false` benches compiling and producing useful numbers:
//!
//! * [`Criterion`], [`BenchmarkGroup`] (`bench_function`,
//!   `bench_with_input`, `throughput`, `sample_size`, `finish`);
//! * [`Bencher::iter`] — auto-calibrated iteration count, reports the
//!   minimum and mean wall-clock per iteration plus derived throughput;
//! * [`criterion_group!`] / [`criterion_main!`] and [`black_box`].
//!
//! Differences from upstream: no statistical analysis, HTML reports, or
//! baseline comparison — one plain-text line per benchmark. Honour
//! `--bench` (ignored) and a substring filter argument like upstream so
//! `cargo bench <filter>` works.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times one closure; the shim's analogue of criterion's sampler.
#[derive(Debug, Default)]
pub struct Bencher {
    min_ns: f64,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly: calibrates an iteration count targeting
    /// ~200 ms of total work (capped), then reports min/mean per-iteration
    /// wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up + calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut min = f64::INFINITY;
        let mut total = 0.0f64;
        let batches = 5u64;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
            min = min.min(per_iter);
            total += per_iter;
        }
        self.min_ns = min;
        self.mean_ns = total / batches as f64;
        self.iters = iters * batches;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the shim auto-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&full, &b);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&full, &b);
    }

    /// Ends the group (no-op; accepted for API compatibility).
    pub fn finish(self) {}

    fn report(&self, full: &str, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>10.2} MiB/s",
                    n as f64 / (b.min_ns * 1e-9) / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / (b.min_ns * 1e-9) / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{full:<48} min {:>12}  mean {:>12}  ({} iters){rate}",
            fmt_ns(b.min_ns),
            fmt_ns(b.mean_ns),
            b.iters
        );
    }
}

/// Top-level bench context; parses the CLI filter like upstream.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench` invokes the harness with libtest-style flags plus
        // an optional substring filter; keep the first non-flag argument.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        if !self.matches(&id.id) {
            return;
        }
        let mut b = Bencher::default();
        f(&mut b);
        let group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            throughput: None,
        };
        group.report(&id.id, &b);
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
