//! # fabp-serve — the production query-serving layer
//!
//! The paper's headline claim is throughput over *many* queries against
//! one resident database (§IV-A's 10 000-query evaluation); the natural
//! deployment is a long-running service in front of the scan engines —
//! the accelerator-as-a-service shape of ASAP and of Nguyen & Lavenier's
//! fine-grained protein-search parallelization. This crate turns the
//! one-shot `fabp-core` engines into that service:
//!
//! * [`queue::AdmissionQueue`] — a bounded admission queue with
//!   backpressure ([`fabp_resilience::FabpError::Overloaded`] typed
//!   rejections) and per-tenant round-robin fair scheduling, so one
//!   heavy tenant cannot starve the rest.
//! * [`batcher::AdaptiveBatcher`] — adaptive micro-batching: queued
//!   queries are coalesced into `fabp_core::batch` /
//!   `fabp_core::cluster::FpgaCluster` dispatches whose size adapts to
//!   queue depth and a configurable latency SLO via an EWMA of observed
//!   per-query cost.
//! * [`cache::LruCache`] — content-hash-keyed LRU caches for built
//!   aligners (encoded queries) and packed reference shards, with
//!   hit/miss/eviction telemetry.
//! * [`server::FabpServer`] — the serving loop: admission → shed
//!   expired deadlines → micro-batch → dispatch → per-request
//!   responses, wired into `fabp-resilience` recovery (cluster backend)
//!   and `fabp-telemetry` metrics/spans throughout.
//! * **Federated fleet backend** ([`server::ServeBackend::Fleet`]) —
//!   replicated shards with anti-affinity placement, primary reads
//!   routed through a persistent phi-accrual
//!   [`fabp_resilience::health::FailureDetector`], hedged tail reads
//!   deduped by the shared merge, graceful drain
//!   ([`server::FabpServer::begin_drain`]) and brownout shedding by
//!   tenant priority when surviving capacity drops below demand.
//!
//! **Transparency invariant:** batching is provably invisible — the
//! hits served for a request are bit-identical to a sequential
//! single-query [`fabp_core::FabpAligner`] run, whatever the
//! interleaving of tenants, batch sizes, or cache state
//! (pinned by the crate's proptest).
//!
//! ```
//! use fabp_bio::seq::{ProteinSeq, RnaSeq};
//! use fabp_serve::server::{FabpServer, ServeConfig};
//!
//! let reference: RnaSeq = "GGAUGUUUGGAUGUUUGG".parse()?;
//! let registry = fabp_telemetry::Registry::new();
//! let mut server = FabpServer::new(reference, ServeConfig::default(), &registry)?;
//! let protein: ProteinSeq = "MF".parse()?;
//! let ticket = server.submit("tenant-a", &protein)?;
//! let responses = server.run_to_completion();
//! let served = responses.iter().find(|r| r.id == ticket).expect("served");
//! assert!(served.result.is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod batcher;
pub mod cache;
pub mod index_store;
pub mod queue;
pub mod server;

pub use batcher::{AdaptiveBatcher, BatchPolicy};
pub use cache::{content_hash, LruCache};
pub use index_store::{IndexLoad, IndexStore};
pub use queue::{AdmissionQueue, Request};
pub use server::{
    AnomalyDump, FabpServer, Response, ServeBackend, ServeConfig, ServerStats, MAX_ANOMALY_DUMPS,
};

// One import for callers that match on rejection reasons.
pub use fabp_resilience::{FabpError, FabpResult};
