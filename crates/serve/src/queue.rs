//! Bounded admission with backpressure and per-tenant fair scheduling.
//!
//! The queue is the service's only intake: every query enters through
//! [`AdmissionQueue::try_admit`], which rejects with a typed
//! [`FabpError::Overloaded`] once the configured capacity is reached —
//! callers get backpressure they can retry on, instead of unbounded
//! memory growth under a traffic spike.
//!
//! Dequeue order is **round-robin across tenants** (in first-seen tenant
//! order), not FIFO across the whole queue: a tenant that floods the
//! queue with thousands of requests still yields one slot per scheduling
//! round to every other tenant, so light tenants see near-ideal latency
//! regardless of heavy neighbours. Within one tenant, order is FIFO.
//!
//! Deadline shedding happens at dequeue time ([`AdmissionQueue::take_batch`]):
//! requests whose deadline passed while queued are returned separately
//! with a [`FabpError::DeadlineExceeded`] carrying how late they were, so
//! the server can answer them immediately instead of wasting engine time
//! on results nobody is waiting for.

use fabp_bio::seq::ProteinSeq;
use fabp_resilience::FabpError;
use fabp_telemetry::{Counter, Gauge, Registry, TraceContext};
use std::collections::HashMap;
use std::collections::VecDeque;

/// One admitted query: who asked, what to search, and when the answer
/// stops being useful.
#[derive(Debug, Clone)]
pub struct Request {
    /// Server-assigned ticket, unique per server instance.
    pub id: u64,
    /// Tenant the request is accounted to (fair-scheduling key).
    pub tenant: String,
    /// The protein query to back-translate and align.
    pub protein: ProteinSeq,
    /// Absolute expiry on the server clock, microseconds; `None` means
    /// the request never expires.
    pub deadline_us: Option<u64>,
    /// Server-clock admission timestamp, microseconds.
    pub submitted_us: u64,
    /// Trace identity minted at submit; every span this request
    /// produces (queue wait, batch, shards, retries) shares its
    /// `trace_id`.
    pub trace: TraceContext,
}

/// A bounded multi-tenant admission queue with round-robin fairness.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    depth: usize,
    /// Tenant name → FIFO of that tenant's pending requests.
    lanes: HashMap<String, VecDeque<Request>>,
    /// Tenants in first-seen order — the round-robin ring.
    ring: Vec<String>,
    /// Next ring index to serve.
    cursor: usize,
    depth_gauge: Gauge,
    admitted_ctr: Counter,
    rejected_ctr: Counter,
    shed_ctr: Counter,
}

impl AdmissionQueue {
    /// Builds a queue admitting at most `capacity` in-flight requests.
    pub fn new(capacity: usize, registry: &Registry) -> AdmissionQueue {
        AdmissionQueue {
            capacity,
            depth: 0,
            lanes: HashMap::new(),
            ring: Vec::new(),
            cursor: 0,
            depth_gauge: registry.gauge(
                "fabp_serve_queue_depth",
                "Requests admitted and not yet dispatched or shed",
            ),
            admitted_ctr: registry.counter(
                "fabp_serve_admitted_total",
                "Requests accepted by the admission queue",
            ),
            rejected_ctr: registry.counter(
                "fabp_serve_rejected_total",
                "Requests rejected with Overloaded backpressure",
            ),
            shed_ctr: registry.counter(
                "fabp_serve_shed_total",
                "Queued requests shed because their deadline expired",
            ),
        }
    }

    /// Requests currently queued across all tenants.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tenants ever admitted, in round-robin ring order.
    pub fn tenants(&self) -> &[String] {
        &self.ring
    }

    /// Admits `request`, or rejects it with backpressure.
    ///
    /// # Errors
    ///
    /// [`FabpError::Overloaded`] when the queue is at capacity; the
    /// request is returned to the caller untouched (inside the error's
    /// context the caller still owns it — nothing is stored).
    pub fn try_admit(&mut self, request: Request) -> Result<(), FabpError> {
        if self.depth >= self.capacity {
            self.rejected_ctr.inc();
            return Err(FabpError::Overloaded {
                queue_depth: self.depth,
                capacity: self.capacity,
            });
        }
        let lane = match self.lanes.get_mut(&request.tenant) {
            Some(lane) => lane,
            None => {
                self.ring.push(request.tenant.clone());
                self.lanes.entry(request.tenant.clone()).or_default()
            }
        };
        lane.push_back(request);
        self.depth += 1;
        self.admitted_ctr.inc();
        self.depth_gauge.set(self.depth as i64);
        Ok(())
    }

    /// Dequeues up to `max` runnable requests in round-robin tenant
    /// order, shedding any whose deadline expired by `now_us`.
    ///
    /// Returns `(runnable, shed)`; each shed entry pairs the request with
    /// the [`FabpError::DeadlineExceeded`] the server should answer it
    /// with. Shed requests do **not** count against `max` — a burst of
    /// expired work can never starve live work of its batch slots.
    pub fn take_batch(
        &mut self,
        max: usize,
        now_us: u64,
    ) -> (Vec<Request>, Vec<(Request, FabpError)>) {
        let mut runnable = Vec::new();
        let mut shed = Vec::new();
        if self.ring.is_empty() {
            return (runnable, shed);
        }
        // One pass per ring slot until `max` runnable requests are drawn
        // or the queue drains. `cursor` persists across calls so fairness
        // holds across batches, not just within one.
        let mut idle_rounds = 0usize;
        while runnable.len() < max && self.depth > 0 && idle_rounds < self.ring.len() {
            let tenant = self.ring[self.cursor % self.ring.len()].clone();
            self.cursor = (self.cursor + 1) % self.ring.len();
            let Some(lane) = self.lanes.get_mut(&tenant) else {
                idle_rounds += 1;
                continue;
            };
            // Shed this lane's expired head(s), then take one runnable.
            let mut took = false;
            while let Some(front) = lane.front() {
                let expired = front.deadline_us.is_some_and(|d| d < now_us);
                let Some(request) = lane.pop_front() else {
                    break; // unreachable: front() just succeeded
                };
                self.depth -= 1;
                if expired {
                    let late_us = now_us.saturating_sub(request.deadline_us.unwrap_or(now_us));
                    self.shed_ctr.inc();
                    shed.push((request, FabpError::DeadlineExceeded { late_us }));
                    continue;
                }
                runnable.push(request);
                took = true;
                break;
            }
            idle_rounds = if took { 0 } else { idle_rounds + 1 };
        }
        self.depth_gauge.set(self.depth as i64);
        (runnable, shed)
    }

    /// Brownout shedding: drops queued requests until at most
    /// `target_depth` remain, taking from the lowest-priority tenants
    /// first (priority given by `priority`; higher values survive
    /// longer, ties break by first-seen tenant order). Within one
    /// tenant, the *newest* requests are shed first — the oldest work,
    /// closest to completion, keeps its place.
    ///
    /// Returns the shed requests so the server can answer each with a
    /// typed brownout error instead of leaving callers hanging.
    pub fn shed_lowest_priority(
        &mut self,
        target_depth: usize,
        priority: impl Fn(&str) -> i32,
    ) -> Vec<Request> {
        let mut shed = Vec::new();
        if self.depth <= target_depth {
            return shed;
        }
        // Stable sort: equal priorities keep ring (first-seen) order.
        let mut order: Vec<String> = self.ring.clone();
        order.sort_by_key(|tenant| priority(tenant));
        for tenant in order {
            let Some(lane) = self.lanes.get_mut(&tenant) else {
                continue;
            };
            while self.depth > target_depth {
                match lane.pop_back() {
                    Some(request) => {
                        self.depth -= 1;
                        self.shed_ctr.inc();
                        shed.push(request);
                    }
                    None => break,
                }
            }
            if self.depth <= target_depth {
                break;
            }
        }
        self.depth_gauge.set(self.depth as i64);
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tenant: &str, deadline_us: Option<u64>) -> Request {
        Request {
            id,
            tenant: tenant.to_string(),
            protein: "MF".parse().unwrap(),
            deadline_us,
            submitted_us: 0,
            trace: TraceContext::none(),
        }
    }

    fn queue(capacity: usize) -> AdmissionQueue {
        AdmissionQueue::new(capacity, &Registry::disabled())
    }

    #[test]
    fn overload_is_a_typed_rejection() {
        let mut q = queue(2);
        q.try_admit(req(1, "a", None)).unwrap();
        q.try_admit(req(2, "a", None)).unwrap();
        match q.try_admit(req(3, "a", None)) {
            Err(FabpError::Overloaded {
                queue_depth,
                capacity,
            }) => {
                assert_eq!((queue_depth, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut q = queue(16);
        // Heavy tenant floods first; light tenants trickle in after.
        for i in 0..6 {
            q.try_admit(req(i, "heavy", None)).unwrap();
        }
        q.try_admit(req(10, "light-1", None)).unwrap();
        q.try_admit(req(11, "light-2", None)).unwrap();
        let (batch, shed) = q.take_batch(4, 0);
        assert!(shed.is_empty());
        let tenants: Vec<&str> = batch.iter().map(|r| r.tenant.as_str()).collect();
        // One slot per tenant per round: heavy, light-1, light-2, heavy.
        assert_eq!(tenants, vec!["heavy", "light-1", "light-2", "heavy"]);
        // The cursor persists: the next batch continues the rotation and
        // drains the heavy lane FIFO.
        let (batch2, _) = q.take_batch(4, 0);
        let ids: Vec<u64> = batch2.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn expired_requests_are_shed_not_run() {
        let mut q = queue(8);
        q.try_admit(req(1, "a", Some(100))).unwrap();
        q.try_admit(req(2, "a", Some(5_000))).unwrap();
        q.try_admit(req(3, "b", None)).unwrap();
        let (batch, shed) = q.take_batch(8, 1_000);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.id, 1);
        match &shed[0].1 {
            FabpError::DeadlineExceeded { late_us } => assert_eq!(*late_us, 900),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn shedding_does_not_consume_batch_slots() {
        let mut q = queue(8);
        for i in 0..3 {
            q.try_admit(req(i, "a", Some(1))).unwrap(); // all expired
        }
        q.try_admit(req(10, "a", None)).unwrap();
        let (batch, shed) = q.take_batch(1, 50);
        assert_eq!(batch.len(), 1, "the live request still got its slot");
        assert_eq!(batch[0].id, 10);
        assert_eq!(shed.len(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn deadline_exactly_now_is_not_late() {
        let mut q = queue(4);
        q.try_admit(req(1, "a", Some(1_000))).unwrap();
        let (batch, shed) = q.take_batch(4, 1_000);
        assert_eq!(batch.len(), 1);
        assert!(shed.is_empty());
    }

    #[test]
    fn empty_queue_yields_empty_batch() {
        let mut q = queue(4);
        let (batch, shed) = q.take_batch(8, 0);
        assert!(batch.is_empty() && shed.is_empty());
    }

    #[test]
    fn brownout_sheds_lowest_priority_newest_first() {
        let mut q = queue(16);
        for i in 0..4 {
            q.try_admit(req(i, "gold", None)).unwrap();
        }
        for i in 10..14 {
            q.try_admit(req(i, "bronze", None)).unwrap();
        }
        for i in 20..22 {
            q.try_admit(req(i, "silver", None)).unwrap();
        }
        // Priorities: gold 2, silver 1, bronze 0. Shed down to 5.
        let priority = |t: &str| match t {
            "gold" => 2,
            "silver" => 1,
            _ => 0,
        };
        let shed = q.shed_lowest_priority(5, priority);
        assert_eq!(q.depth(), 5);
        // All of bronze (newest first), then one silver.
        let ids: Vec<u64> = shed.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![13, 12, 11, 10, 21]);
        // Gold survived untouched; the surviving silver is the oldest.
        let (batch, _) = q.take_batch(16, 0);
        let mut survivors: Vec<u64> = batch.iter().map(|r| r.id).collect();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![0, 1, 2, 3, 20]);
    }

    #[test]
    fn brownout_below_target_is_a_no_op() {
        let mut q = queue(8);
        q.try_admit(req(1, "a", None)).unwrap();
        assert!(q.shed_lowest_priority(4, |_| 0).is_empty());
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn admission_telemetry_is_exported() {
        let registry = Registry::new();
        let mut q = AdmissionQueue::new(1, &registry);
        q.try_admit(req(1, "a", Some(1))).unwrap();
        let _ = q.try_admit(req(2, "a", None)); // rejected
        let _ = q.take_batch(4, 10); // sheds 1
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("fabp_serve_admitted_total 1"), "{text}");
        assert!(text.contains("fabp_serve_rejected_total 1"), "{text}");
        assert!(text.contains("fabp_serve_shed_total 1"), "{text}");
        assert!(text.contains("fabp_serve_queue_depth 0"), "{text}");
    }
}
