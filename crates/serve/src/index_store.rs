//! Resident-index store: cold load vs warm re-load of persistent
//! reference indexes.
//!
//! A **cold** load reads the whole on-disk index, CRC-verifying every
//! shard frame ([`ReferenceIndex::load`]). A **warm** re-load of the
//! same path hands back the resident [`Arc`] — the in-process
//! equivalent of an mmap whose pages are already hot, and the backend
//! path `bench_serve` times as `index_warm_reload`. Entries are keyed
//! by canonicalized path and validated by fingerprint, so a file
//! overwritten on disk is *not* silently served stale: pass
//! `revalidate = true` to force a fresh read.

use fabp_core::index::ReferenceIndex;
use fabp_resilience::{FabpError, FabpResult};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One completed load, with provenance and timing.
#[derive(Debug, Clone)]
pub struct IndexLoad {
    /// The loaded (or resident) index.
    pub index: Arc<ReferenceIndex>,
    /// `true` when the bytes were read and CRC-verified from disk;
    /// `false` for a warm hit on the resident copy.
    pub cold: bool,
    /// Wall-clock load time, microseconds.
    pub load_us: u64,
}

/// Keeps loaded [`ReferenceIndex`]es resident, one per path.
#[derive(Debug, Default)]
pub struct IndexStore {
    resident: HashMap<PathBuf, Arc<ReferenceIndex>>,
    cold_loads: u64,
    warm_hits: u64,
}

impl IndexStore {
    /// An empty store.
    pub fn new() -> IndexStore {
        IndexStore::default()
    }

    /// Loads `path`, cold on first touch and warm afterwards. With
    /// `revalidate` the disk copy is re-read even when resident (and
    /// replaces the resident copy on success).
    ///
    /// # Errors
    ///
    /// Propagates [`ReferenceIndex::load`] failures — typed CRC or
    /// decode errors; a corrupted file never yields an index.
    pub fn load(&mut self, path: impl AsRef<Path>, revalidate: bool) -> FabpResult<IndexLoad> {
        let key = path
            .as_ref()
            .canonicalize()
            .map_err(|e| FabpError::Decode(format!("index path: {e}")))?;
        let start = Instant::now();
        if !revalidate {
            if let Some(resident) = self.resident.get(&key) {
                self.warm_hits += 1;
                self.publish();
                return Ok(IndexLoad {
                    index: Arc::clone(resident),
                    cold: false,
                    load_us: start.elapsed().as_micros() as u64,
                });
            }
        }
        let index = Arc::new(ReferenceIndex::load(&key)?);
        self.resident.insert(key, Arc::clone(&index));
        self.cold_loads += 1;
        self.publish();
        Ok(IndexLoad {
            index,
            cold: true,
            load_us: start.elapsed().as_micros() as u64,
        })
    }

    /// Drops the resident copy for `path` (the next load is cold).
    pub fn evict(&mut self, path: impl AsRef<Path>) {
        if let Ok(key) = path.as_ref().canonicalize() {
            self.resident.remove(&key);
        }
    }

    /// Cold loads performed since construction.
    pub fn cold_loads(&self) -> u64 {
        self.cold_loads
    }

    /// Warm (resident) hits since construction.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    fn publish(&self) {
        let registry = fabp_telemetry::Registry::global();
        registry
            .gauge(
                "fabp_index_store_resident",
                "Reference indexes held resident by the store",
            )
            .set(self.resident.len() as i64);
        registry
            .counter(
                "fabp_index_store_cold_loads_total",
                "Cold (disk, CRC-verified) index loads",
            )
            .add(0); // registered so the series exists even before a cold load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::random_rna;
    use fabp_core::index::IndexBuildOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn write_index(name: &str) -> PathBuf {
        let mut rng = StdRng::seed_from_u64(99);
        let reference = random_rna(2_000, &mut rng);
        let index = ReferenceIndex::build_from_rna(
            &reference,
            IndexBuildOptions {
                overlap: 32,
                target_shard_bases: 512,
            },
        )
        .unwrap();
        let dir = std::env::temp_dir().join("fabp_index_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        index.write_to(&path).unwrap();
        path
    }

    #[test]
    fn cold_then_warm_loads_share_one_resident_copy() {
        let path = write_index("cold_warm.fabpidx");
        let mut store = IndexStore::new();
        let first = store.load(&path, false).unwrap();
        assert!(first.cold);
        let second = store.load(&path, false).unwrap();
        assert!(!second.cold);
        assert!(Arc::ptr_eq(&first.index, &second.index));
        assert_eq!(store.cold_loads(), 1);
        assert_eq!(store.warm_hits(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn revalidate_rereads_from_disk() {
        let path = write_index("revalidate.fabpidx");
        let mut store = IndexStore::new();
        let first = store.load(&path, false).unwrap();
        let second = store.load(&path, true).unwrap();
        assert!(second.cold);
        assert_eq!(first.index.fingerprint(), second.index.fingerprint());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_makes_the_next_load_cold() {
        let path = write_index("evict.fabpidx");
        let mut store = IndexStore::new();
        store.load(&path, false).unwrap();
        store.evict(&path);
        assert!(store.load(&path, false).unwrap().cold);
        assert_eq!(store.cold_loads(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_file_load_fails_typed_and_leaves_store_clean() {
        let path = write_index("corrupt.fabpidx");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = IndexStore::new();
        match store.load(&path, false) {
            Err(FabpError::CrcMismatch { .. }) => {}
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
        assert_eq!(store.cold_loads(), 0);
        std::fs::remove_file(&path).ok();
    }
}
