//! The serving loop: admission → shed → micro-batch → dispatch → respond.
//!
//! [`FabpServer`] owns one resident reference database and serves a
//! multi-tenant query stream against it:
//!
//! ```text
//! submit() ──► AdmissionQueue (bounded, per-tenant round-robin)
//!                 │ pump()
//!                 ▼
//!           shed expired deadlines ──► Err(DeadlineExceeded) responses
//!                 │
//!                 ▼
//!           AdaptiveBatcher picks the batch size (EWMA vs. SLO)
//!                 │
//!                 ▼
//!           backend dispatch ──► Software: cached aligners +
//!                 │               work-stealing batch::search_all_prebuilt
//!                 │              Cluster: cached per-query FpgaCluster +
//!                 │               cached packed shards, optional fault
//!                 ▼               schedule through search_resilient
//!           per-request Response { result, latency, … }
//! ```
//!
//! **Transparency invariant.** Whatever batch sizes, tenant
//! interleavings or cache states occur, the hits in a successful
//! [`Response`] are bit-identical to a sequential single-query
//! [`FabpAligner`] run with the same threshold — batching is an
//! execution-schedule optimisation, never a semantic one. The crate's
//! proptest pins this.
//!
//! Time is injectable: production servers run on a wall clock, tests use
//! [`FabpServer::with_manual_clock`] plus [`FabpServer::advance_clock_us`]
//! so deadline-shedding behaviour is deterministic.

use crate::batcher::{AdaptiveBatcher, BatchPolicy};
use crate::cache::{content_hash, CacheStats, LruCache};
use crate::queue::{AdmissionQueue, Request};
use fabp_bio::seq::{PackedSeq, ProteinSeq, RnaSeq};
use fabp_core::aligner::{Engine, FabpAligner, Threshold};
use fabp_core::batch::search_all_prebuilt;
use fabp_core::cluster::{try_shard_with_overlap, FpgaCluster};
use fabp_core::fleet::FpgaFleet;
use fabp_core::hits::Hit;
use fabp_core::index::{search_index, PrefilterMode, ReferenceIndex, SeedParams};
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::EngineConfig;
use fabp_resilience::health::FailureDetector;
use fabp_resilience::{FabpError, FabpResult, FaultSchedule, ResilienceLevel};
use fabp_telemetry::{
    chrome_trace_for_events, Counter, FlightRecorder, Gauge, Histogram, Registry, SloMonitor,
    SloPolicy, SloReport, TraceContext, TraceEvent, FLAG_CACHE_HIT, FLAG_CACHE_MISS, FLAG_ERROR,
    FLAG_RECOVERED, FLAG_SHED,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Dump-on-anomaly budget: at most this many span-tree dumps are
/// retained per server instance, so a pathological workload cannot turn
/// the anomaly log into an unbounded allocation.
pub const MAX_ANOMALY_DUMPS: usize = 8;

/// Which engine pool executes dispatched batches.
#[derive(Debug, Clone)]
pub enum ServeBackend {
    /// The fast functional engine, parallelised across the batch with
    /// `threads` work-stealing workers.
    Software {
        /// Worker threads for [`search_all_prebuilt`] (1 = serial).
        threads: usize,
    },
    /// A modelled FPGA cluster: one [`FpgaCluster`] per distinct query
    /// (the query lives in flip-flops, so clusters are cached per query
    /// content hash), packed shards resident in the reference cache.
    Cluster {
        /// Boards in the cluster.
        nodes: usize,
        /// Fault handling for dispatches (kills re-dispatch shards under
        /// [`ResilienceLevel::Recover`]).
        resilience: ResilienceLevel,
        /// Optional fault-schedule spec (see
        /// [`FaultSchedule::parse`], e.g. `"kill@1:50"`) applied to
        /// every dispatch — chaos-testing hook, `None` in production.
        fault_spec: Option<String>,
    },
    /// A federated fleet: every shard replicated on `replication` nodes
    /// with anti-affinity, primary reads routed through a persistent
    /// phi-accrual [`FailureDetector`], tail reads hedged to replicas
    /// ([`FpgaFleet`]). Health state carries across requests, so routing
    /// is steady-state — drained nodes stop receiving primaries before a
    /// request has to fail over.
    Fleet {
        /// Nodes in the fleet (== shards).
        nodes: usize,
        /// Replicas per shard (anti-affinity requires
        /// `replication <= nodes`).
        replication: usize,
        /// Optional fault-schedule spec whose `kill@node:beat` entries
        /// mark nodes dead in the detector at build time — chaos hook
        /// mirroring the cluster backend's, `None` in production.
        fault_spec: Option<String>,
    },
}

impl Default for ServeBackend {
    fn default() -> ServeBackend {
        ServeBackend::Software { threads: 1 }
    }
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Alignment threshold applied to every query.
    pub threshold: Threshold,
    /// Admission-queue capacity (requests queued before
    /// [`FabpError::Overloaded`] rejections start).
    pub queue_capacity: usize,
    /// Adaptive micro-batching policy.
    pub policy: BatchPolicy,
    /// Execution backend.
    pub backend: ServeBackend,
    /// Entries in the built-aligner / built-cluster caches (per-query
    /// artefacts keyed by protein content hash).
    pub query_cache: usize,
    /// Entries in the packed-reference cache.
    pub reference_cache: usize,
    /// Deadline attached to [`FabpServer::submit`] requests, as a
    /// relative budget in microseconds (`None`: requests never expire).
    pub default_deadline_us: Option<u64>,
    /// Longest query accepted, amino acids. The cluster backend sizes
    /// its shard overlap from this (`3 · max_query_aa` bases), so longer
    /// queries are rejected at submit instead of silently losing
    /// cross-shard hits.
    pub max_query_aa: usize,
    /// Prefilter routing for index-backed servers
    /// ([`FabpServer::with_index`]): [`PrefilterMode::Seeded`] routes
    /// the software backend through the k-mer seed-and-verify path;
    /// [`PrefilterMode::Off`] (the default) keeps the exhaustive scan.
    /// Ignored without an index.
    pub prefilter: PrefilterMode,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threshold: Threshold::Fraction(1.0),
            queue_capacity: 1_024,
            policy: BatchPolicy::default(),
            backend: ServeBackend::default(),
            query_cache: 256,
            reference_cache: 8,
            default_deadline_us: None,
            max_query_aa: 128,
            prefilter: PrefilterMode::Off,
        }
    }
}

/// The server's answer to one request (successful, failed, or shed).
#[derive(Debug, Clone)]
pub struct Response {
    /// Ticket returned by [`FabpServer::submit`].
    pub id: u64,
    /// Tenant the request belonged to.
    pub tenant: String,
    /// Merged hits in global reference coordinates, or the typed error
    /// that ended the request ([`FabpError::DeadlineExceeded`] for shed
    /// requests, build/dispatch errors otherwise).
    pub result: FabpResult<Vec<Hit>>,
    /// Queue + service time on the server clock, microseconds.
    pub latency_us: u64,
    /// Size of the dispatch batch this request rode in (0 when shed
    /// before dispatch).
    pub batch_size: usize,
    /// Whether the per-query artefact (aligner or cluster) was already
    /// resident in the cache.
    pub cached_query: bool,
}

/// One captured anomaly: a request that exceeded the latency objective,
/// missed its deadline, failed dispatch, or needed fault recovery. The
/// request's whole span tree is exported as a ready-to-write Chrome
/// trace so the slow/failed request can be inspected span by span.
#[derive(Debug, Clone)]
pub struct AnomalyDump {
    /// Ticket of the anomalous request.
    pub id: u64,
    /// Tenant the request belonged to.
    pub tenant: String,
    /// Trace id shared by every span in `chrome_trace`.
    pub trace_id: u64,
    /// Why the dump was taken: `"deadline_exceeded"`,
    /// `"dispatch_error"`, `"fault_recovery"`, or `"slo_exceeded"`.
    pub reason: &'static str,
    /// Chrome trace-event JSON for the request's span tree.
    pub chrome_trace: String,
}

/// Aggregate counters since server construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted by [`FabpServer::submit`].
    pub submitted: u64,
    /// Requests rejected with [`FabpError::Overloaded`] or a submit-time
    /// validation error.
    pub rejected: u64,
    /// Responses delivered with `Ok` hits.
    pub served_ok: u64,
    /// Responses delivered with a dispatch/build error.
    pub served_err: u64,
    /// Requests shed for an expired deadline.
    pub shed: u64,
    /// Dispatch batches executed.
    pub batches: u64,
    /// Largest batch dispatched.
    pub peak_batch: usize,
    /// Built-aligner / built-cluster cache counters.
    pub query_cache: CacheStats,
    /// Packed-reference cache counters.
    pub reference_cache: CacheStats,
    /// Hedged duplicate reads issued by the fleet backend.
    pub hedges: u64,
    /// Hedges that beat their primary.
    pub hedge_wins: u64,
    /// Losing reads cancelled after the hedge race resolved.
    pub cancels: u64,
    /// Shards served off-placement because every replica was drained.
    pub failovers: u64,
    /// Requests shed by brownout tenant-priority shedding.
    pub brownout_shed: u64,
}

/// Injectable time source: wall for production, manual for tests.
#[derive(Debug)]
enum Clock {
    Wall(Instant),
    Manual(u64),
}

impl Clock {
    fn now_us(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => epoch.elapsed().as_micros() as u64,
            Clock::Manual(t) => *t,
        }
    }
}

/// A long-running query-serving instance over one resident reference.
#[derive(Debug)]
pub struct FabpServer {
    reference: RnaSeq,
    config: ServeConfig,
    registry: Registry,
    clock: Clock,
    next_id: u64,
    queue: AdmissionQueue,
    batcher: AdaptiveBatcher,
    /// Built aligners (software backend), keyed by protein hash.
    aligner_cache: LruCache<Arc<FabpAligner>>,
    /// Built clusters (cluster backend), keyed by protein hash.
    cluster_cache: LruCache<Arc<FpgaCluster>>,
    /// Built fleets (fleet backend), keyed by protein hash.
    fleet_cache: LruCache<Arc<FpgaFleet>>,
    /// Persistent failure detector for the fleet backend (`None`
    /// otherwise). Living on the server rather than per dispatch is what
    /// makes routing steady-state: EWMA latency, suspicion and probation
    /// streaks carry across requests.
    detector: Option<FailureDetector>,
    /// Per-tenant brownout priority (higher survives longer); unlisted
    /// tenants default to 0.
    tenant_priority: HashMap<String, i32>,
    /// Whether the server is draining: queued and in-flight work
    /// completes, new submits are rejected.
    draining: bool,
    /// Exported drain state (1 while draining).
    drain_gauge: Gauge,
    /// Packed shard sets, keyed by reference hash.
    packed_cache: LruCache<Arc<Vec<PackedSeq>>>,
    /// The persistent packed index this server was built from (None for
    /// plain in-memory references). Enables the seeded-prefilter
    /// dispatch path and supplies the reference cache key.
    index: Option<Arc<ReferenceIndex>>,
    /// Overlapped shards for the cluster backend (empty for software).
    shards: Vec<RnaSeq>,
    shard_offsets: Vec<usize>,
    reference_key: u64,
    stats: ServerStats,
    latency_hist: Histogram,
    batch_hist: Histogram,
    served_ctr: Counter,
    failed_ctr: Counter,
    /// Registry's flight recorder; every request's spans land here.
    flight: FlightRecorder,
    /// Seed for deterministic per-request trace-id minting.
    trace_seed: u64,
    slo: SloMonitor,
    anomaly_dumps: Vec<AnomalyDump>,
    anomaly_ctr: Counter,
}

impl FabpServer {
    /// Builds a wall-clock server over `reference`.
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] for a zero-node cluster backend.
    pub fn new(
        reference: RnaSeq,
        config: ServeConfig,
        registry: &Registry,
    ) -> FabpResult<FabpServer> {
        FabpServer::build(reference, config, registry, Clock::Wall(Instant::now()))
    }

    /// [`FabpServer::new`] with a manually advanced clock starting at 0 —
    /// deadline behaviour becomes deterministic for tests.
    ///
    /// # Errors
    ///
    /// As [`FabpServer::new`].
    pub fn with_manual_clock(
        reference: RnaSeq,
        config: ServeConfig,
        registry: &Registry,
    ) -> FabpResult<FabpServer> {
        FabpServer::build(reference, config, registry, Clock::Manual(0))
    }

    /// Builds a wall-clock server over a loaded persistent index. The
    /// reference cache key becomes [`ReferenceIndex::fingerprint`] — no
    /// O(n) re-hash of the decoded bases — and
    /// [`ServeConfig::prefilter`] selects between the exhaustive scan
    /// and the seeded seed-and-verify dispatch on the software backend.
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] when the index's shard overlap is
    /// too small for `max_query_aa` under [`PrefilterMode::Seeded`] (a
    /// boundary-straddling window could be lost), or for a zero-node
    /// cluster backend.
    pub fn with_index(
        index: Arc<ReferenceIndex>,
        config: ServeConfig,
        registry: &Registry,
    ) -> FabpResult<FabpServer> {
        FabpServer::build_with_index(index, config, registry, Clock::Wall(Instant::now()))
    }

    /// [`FabpServer::with_index`] on a manual clock (tests).
    ///
    /// # Errors
    ///
    /// As [`FabpServer::with_index`].
    pub fn with_index_manual_clock(
        index: Arc<ReferenceIndex>,
        config: ServeConfig,
        registry: &Registry,
    ) -> FabpResult<FabpServer> {
        FabpServer::build_with_index(index, config, registry, Clock::Manual(0))
    }

    fn build_with_index(
        index: Arc<ReferenceIndex>,
        config: ServeConfig,
        registry: &Registry,
        clock: Clock,
    ) -> FabpResult<FabpServer> {
        if config.prefilter == PrefilterMode::Seeded
            && index.shards().len() > 1
            && 3 * config.max_query_aa > index.overlap() + 1
        {
            return Err(FabpError::InvalidShardPlan(format!(
                "index overlap {} cannot cover max_query_aa {} windows ({} bases); \
                 rebuild the index with --overlap >= {} or lower max_query_aa",
                index.overlap(),
                config.max_query_aa,
                3 * config.max_query_aa,
                3 * config.max_query_aa - 1,
            )));
        }
        let reference = index.decode_reference();
        let mut server = FabpServer::build(reference, config, registry, clock)?;
        server.reference_key = index.fingerprint();
        server.trace_seed = 0xFAB6_0006 ^ index.fingerprint();
        server.index = Some(index);
        Ok(server)
    }

    fn build(
        reference: RnaSeq,
        config: ServeConfig,
        registry: &Registry,
        clock: Clock,
    ) -> FabpResult<FabpServer> {
        let (shards, shard_offsets) = match config.backend {
            ServeBackend::Cluster { nodes, .. } | ServeBackend::Fleet { nodes, .. } => {
                // Overlap sized for the longest admissible query's window
                // (3 bases per residue); the shared merge helper removes
                // the cross-shard duplicates the generous overlap creates.
                try_shard_with_overlap(&reference, nodes, 3 * config.max_query_aa)?
            }
            ServeBackend::Software { .. } => (Vec::new(), Vec::new()),
        };
        let detector = match &config.backend {
            ServeBackend::Fleet {
                nodes,
                replication,
                fault_spec,
            } => {
                // Fail an unsatisfiable replication factor at build, not
                // on the first dispatch.
                fabp_core::fleet::place_replicas(*nodes, *nodes, *replication)?;
                let mut detector = FailureDetector::with_defaults(*nodes, registry);
                if let Some(spec) = fault_spec {
                    for (node, _beat) in FaultSchedule::parse(spec)?.node_kills() {
                        detector.record_kill(node);
                    }
                }
                Some(detector)
            }
            _ => None,
        };
        let reference_key = content_hash(reference.iter().map(|&b| b as u8));
        // The latency objective the batcher already steers for doubles
        // as the SLO the burn-rate monitor holds the server to.
        let slo = SloMonitor::new(
            SloPolicy::with_latency_objective(config.policy.slo_us),
            registry,
        );
        Ok(FabpServer {
            flight: registry.flight_recorder(),
            // Deterministic given the reference: the same server setup
            // mints the same trace ids for the same ticket numbers.
            trace_seed: 0xFAB6_0006 ^ reference_key,
            slo,
            anomaly_dumps: Vec::new(),
            anomaly_ctr: registry.counter(
                "fabp_serve_anomaly_dumps_total",
                "Span-tree dumps captured for anomalous requests",
            ),
            queue: AdmissionQueue::new(config.queue_capacity, registry),
            batcher: AdaptiveBatcher::new(config.policy, registry),
            aligner_cache: LruCache::new("query", config.query_cache, registry),
            cluster_cache: LruCache::new("cluster", config.query_cache, registry),
            fleet_cache: LruCache::new("fleet", config.query_cache, registry),
            detector,
            tenant_priority: HashMap::new(),
            draining: false,
            drain_gauge: registry.gauge(
                "fabp_serve_draining",
                "1 while the server is draining (rejecting new submits)",
            ),
            packed_cache: LruCache::new("reference", config.reference_cache, registry),
            latency_hist: registry.histogram(
                "fabp_serve_latency_us",
                "Per-request submit-to-response latency, microseconds",
            ),
            batch_hist: registry.histogram(
                "fabp_serve_batch_size",
                "Queries per dispatched micro-batch",
            ),
            served_ctr: registry.counter(
                "fabp_serve_served_total",
                "Responses delivered with Ok hits",
            ),
            failed_ctr: registry.counter(
                "fabp_serve_failed_total",
                "Responses delivered with an error (shed or dispatch failure)",
            ),
            reference,
            config,
            registry: registry.clone(),
            clock,
            next_id: 0,
            shards,
            shard_offsets,
            reference_key,
            index: None,
            stats: ServerStats::default(),
        })
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Requests queued and not yet dispatched.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Aggregate counters (cache stats are read live from the caches).
    pub fn stats(&self) -> ServerStats {
        let query_cache = match self.config.backend {
            ServeBackend::Software { .. } => self.aligner_cache.stats(),
            ServeBackend::Cluster { .. } => self.cluster_cache.stats(),
            ServeBackend::Fleet { .. } => self.fleet_cache.stats(),
        };
        ServerStats {
            query_cache,
            reference_cache: self.packed_cache.stats(),
            ..self.stats
        }
    }

    /// Server-clock time, microseconds since construction.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Advances a manual clock by `delta_us` (no-op on a wall clock).
    pub fn advance_clock_us(&mut self, delta_us: u64) {
        if let Clock::Manual(t) = &mut self.clock {
            *t += delta_us;
        }
    }

    /// Sets `tenant`'s brownout priority (default 0). When surviving
    /// fleet capacity drops below queued demand, the lowest-priority
    /// tenants' newest requests are shed first.
    pub fn set_tenant_priority(&mut self, tenant: &str, priority: i32) {
        self.tenant_priority.insert(tenant.to_string(), priority);
    }

    /// Begins a graceful drain: from now on [`FabpServer::submit`]
    /// rejects with [`FabpError::Draining`], while queued and in-flight
    /// requests run to completion (keep pumping until
    /// [`FabpServer::is_drained`]).
    pub fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_gauge.set(1);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the drain finished: draining and nothing left queued.
    pub fn is_drained(&self) -> bool {
        self.draining && self.queue.is_empty()
    }

    /// Chaos hook: marks fleet node `node` dead in the failure detector
    /// (no-op on non-fleet backends). Subsequent dispatches route around
    /// it and [`FabpServer::pump`] sheds by brownout if demand exceeds
    /// surviving capacity.
    pub fn kill_node(&mut self, node: usize) {
        if let Some(detector) = &mut self.detector {
            detector.record_kill(node);
        }
    }

    /// Chaos hook: revives a killed fleet node into probation; it earns
    /// back primary routing through probe successes (hedges land on it
    /// first).
    pub fn revive_node(&mut self, node: usize) {
        if let Some(detector) = &mut self.detector {
            detector.revive(node);
        }
    }

    /// Nodes currently accepting primary reads (`None` on non-fleet
    /// backends).
    pub fn routable_nodes(&self) -> Option<usize> {
        self.detector.as_ref().map(|d| d.routable_count())
    }

    /// Read access to the fleet's failure detector, when the backend
    /// has one.
    pub fn failure_detector(&self) -> Option<&FailureDetector> {
        self.detector.as_ref()
    }

    /// Submits a query under the configured default deadline budget.
    /// Returns the ticket to match against [`Response::id`].
    ///
    /// # Errors
    ///
    /// [`FabpError::Draining`] once a drain has begun,
    /// [`FabpError::EmptyQuery`] for an empty protein,
    /// [`FabpError::InvalidShardPlan`] for a query longer than
    /// [`ServeConfig::max_query_aa`] on the cluster or fleet backends,
    /// and [`FabpError::Overloaded`] when the admission queue is full.
    pub fn submit(&mut self, tenant: &str, protein: &ProteinSeq) -> FabpResult<u64> {
        let deadline = self
            .config
            .default_deadline_us
            .map(|budget| self.clock.now_us().saturating_add(budget));
        self.submit_with_deadline(tenant, protein, deadline)
    }

    /// [`FabpServer::submit`] with an explicit absolute deadline on the
    /// server clock (`None`: never expires).
    ///
    /// # Errors
    ///
    /// As [`FabpServer::submit`].
    pub fn submit_with_deadline(
        &mut self,
        tenant: &str,
        protein: &ProteinSeq,
        deadline_us: Option<u64>,
    ) -> FabpResult<u64> {
        if self.draining {
            self.stats.rejected += 1;
            return Err(FabpError::Draining);
        }
        if protein.is_empty() {
            self.stats.rejected += 1;
            return Err(FabpError::EmptyQuery);
        }
        if matches!(
            self.config.backend,
            ServeBackend::Cluster { .. } | ServeBackend::Fleet { .. }
        ) && protein.len() > self.config.max_query_aa
        {
            self.stats.rejected += 1;
            return Err(FabpError::InvalidShardPlan(format!(
                "query of {} aa exceeds max_query_aa {} the shard overlap was sized for",
                protein.len(),
                self.config.max_query_aa
            )));
        }
        let id = self.next_id;
        let request = Request {
            id,
            tenant: tenant.to_string(),
            protein: protein.clone(),
            deadline_us,
            submitted_us: self.clock.now_us(),
            trace: TraceContext::mint(self.trace_seed, id),
        };
        match self.queue.try_admit(request) {
            Ok(()) => {
                self.next_id += 1;
                self.stats.submitted += 1;
                Ok(id)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Runs one scheduling round: sheds expired requests, dispatches one
    /// adaptively sized micro-batch, and returns every response produced
    /// (shed + served). Returns an empty vector when the queue is idle.
    pub fn pump(&mut self) -> Vec<Response> {
        let now = self.clock.now_us();
        let mut responses = Vec::new();
        self.shed_for_brownout(now, &mut responses);
        let dequeue_start = Instant::now();
        let target = self.batcher.target_batch(self.queue.depth());
        let (batch, shed) = self.queue.take_batch(target, now);
        let dequeue_us = dequeue_start.elapsed().as_secs_f64() * 1e6;

        responses.reserve(batch.len() + shed.len());
        for (request, error) in shed {
            self.stats.shed += 1;
            self.failed_ctr.inc();
            let latency_us = now.saturating_sub(request.submitted_us);
            self.latency_hist
                .observe_traced(latency_us, request.trace.trace_id);
            self.flight.record(
                TraceEvent::new(
                    request.trace.child(0),
                    "queue_wait",
                    request.submitted_us as f64,
                    latency_us as f64,
                )
                .with_flags(FLAG_SHED),
            );
            self.flight.record(
                TraceEvent::new(
                    request.trace,
                    "request",
                    request.submitted_us as f64,
                    latency_us as f64,
                )
                .with_arg(request.id)
                .with_flags(FLAG_SHED | FLAG_ERROR),
            );
            self.slo.observe(&request.tenant, now, latency_us, false);
            self.capture_anomaly(
                &request.tenant,
                request.id,
                request.trace.trace_id,
                "deadline_exceeded",
            );
            responses.push(Response {
                id: request.id,
                tenant: request.tenant,
                result: Err(error),
                latency_us,
                batch_size: 0,
                cached_query: false,
            });
        }
        if batch.is_empty() {
            return responses;
        }

        // Queue-wait spans close at dispatch time; the batch id links
        // every request coalesced into this dispatch.
        let batch_id = self.stats.batches;
        for request in &batch {
            self.flight.record(
                TraceEvent::new(
                    request.trace.child(0),
                    "queue_wait",
                    request.submitted_us as f64,
                    now.saturating_sub(request.submitted_us) as f64,
                )
                .with_arg(batch_id),
            );
        }

        let exec_start = Instant::now();
        let batch_size = batch.len();
        let executed = match self.config.backend.clone() {
            ServeBackend::Software { threads } => self.dispatch_software(batch, threads),
            ServeBackend::Cluster {
                nodes,
                resilience,
                fault_spec,
            } => self.dispatch_cluster(batch, nodes, resilience, fault_spec.as_deref()),
            ServeBackend::Fleet {
                nodes, replication, ..
            } => self.dispatch_fleet(batch, nodes, replication, now),
        };
        let exec_us = exec_start.elapsed().as_secs_f64() * 1e6;
        self.batcher.observe(batch_size, exec_us);
        self.batch_hist.observe(batch_size as u64);
        self.stats.batches += 1;
        self.stats.peak_batch = self.stats.peak_batch.max(batch_size);
        self.registry.record_span_tree(
            "fabp_serve_batch",
            &[("dequeue", dequeue_us), ("execute", exec_us)],
        );

        let done = self.clock.now_us();
        let slo_us = self.config.policy.slo_us;
        for (request, cached_query, recovered, result) in executed {
            match &result {
                Ok(_) => {
                    self.stats.served_ok += 1;
                    self.served_ctr.inc();
                }
                Err(_) => {
                    self.stats.served_err += 1;
                    self.failed_ctr.inc();
                }
            }
            let latency_us = done.saturating_sub(request.submitted_us);
            self.latency_hist
                .observe_traced(latency_us, request.trace.trace_id);
            self.flight.record(
                TraceEvent::new(request.trace.child(1), "batch", now as f64, exec_us)
                    .with_arg(batch_id),
            );
            let mut flags = 0;
            if result.is_err() {
                flags |= FLAG_ERROR;
            }
            if recovered {
                flags |= FLAG_RECOVERED;
            }
            self.flight.record(
                TraceEvent::new(
                    request.trace,
                    "request",
                    request.submitted_us as f64,
                    latency_us as f64,
                )
                .with_arg(request.id)
                .with_flags(flags),
            );
            self.slo
                .observe(&request.tenant, done, latency_us, result.is_ok());
            let anomaly = if result.is_err() {
                Some("dispatch_error")
            } else if recovered {
                Some("fault_recovery")
            } else if latency_us > slo_us {
                Some("slo_exceeded")
            } else {
                None
            };
            if let Some(reason) = anomaly {
                self.capture_anomaly(&request.tenant, request.id, request.trace.trace_id, reason);
            }
            responses.push(Response {
                id: request.id,
                tenant: request.tenant,
                result,
                latency_us,
                batch_size,
                cached_query,
            });
        }
        responses
    }

    /// Brownout: when the fleet is degraded (serving < total nodes,
    /// where "serving" counts routable plus probation nodes) and queued
    /// demand exceeds the capacity the survivors can carry
    /// (`queue_capacity` scaled by the surviving fraction), sheds the
    /// lowest-tenant-priority requests — newest first, so each tenant's
    /// oldest work keeps its place — and answers them with
    /// [`FabpError::Brownout`]. No-op on non-fleet backends and on a
    /// healthy fleet.
    fn shed_for_brownout(&mut self, now: u64, responses: &mut Vec<Response>) {
        let (serving, nodes) = match (&self.detector, &self.config.backend) {
            (Some(detector), ServeBackend::Fleet { nodes, .. }) => {
                (detector.serving_count(), *nodes)
            }
            _ => return,
        };
        if serving >= nodes || nodes == 0 {
            return;
        }
        let allowed = self.config.queue_capacity * serving / nodes;
        if self.queue.depth() <= allowed {
            return;
        }
        let priorities = self.tenant_priority.clone();
        let shed = self.queue.shed_lowest_priority(allowed, |tenant| {
            priorities.get(tenant).copied().unwrap_or(0)
        });
        for request in shed {
            self.stats.brownout_shed += 1;
            self.failed_ctr.inc();
            let latency_us = now.saturating_sub(request.submitted_us);
            self.latency_hist
                .observe_traced(latency_us, request.trace.trace_id);
            self.flight.record(
                TraceEvent::new(
                    request.trace.child(0),
                    "queue_wait",
                    request.submitted_us as f64,
                    latency_us as f64,
                )
                .with_flags(FLAG_SHED),
            );
            self.flight.record(
                TraceEvent::new(
                    request.trace,
                    "request",
                    request.submitted_us as f64,
                    latency_us as f64,
                )
                .with_arg(request.id)
                .with_flags(FLAG_SHED | FLAG_ERROR),
            );
            self.slo.observe(&request.tenant, now, latency_us, false);
            self.capture_anomaly(
                &request.tenant,
                request.id,
                request.trace.trace_id,
                "brownout",
            );
            responses.push(Response {
                id: request.id,
                tenant: request.tenant,
                result: Err(FabpError::Brownout {
                    routable_nodes: serving,
                    fleet_nodes: nodes,
                }),
                latency_us,
                batch_size: 0,
                cached_query: false,
            });
        }
    }

    /// Captures one anomalous request's span tree as a Chrome trace,
    /// up to the [`MAX_ANOMALY_DUMPS`] budget. A request whose events
    /// already rotated out of the flight recorder yields no dump.
    fn capture_anomaly(&mut self, tenant: &str, id: u64, trace_id: u64, reason: &'static str) {
        if self.anomaly_dumps.len() >= MAX_ANOMALY_DUMPS {
            return;
        }
        let events = self.flight.events_for(trace_id);
        if events.is_empty() {
            return;
        }
        self.anomaly_ctr.inc();
        self.anomaly_dumps.push(AnomalyDump {
            id,
            tenant: tenant.to_string(),
            trace_id,
            reason,
            chrome_trace: chrome_trace_for_events(&events),
        });
    }

    /// Span-tree dumps captured for anomalous requests, oldest first.
    pub fn anomaly_dumps(&self) -> &[AnomalyDump] {
        &self.anomaly_dumps
    }

    /// The flight recorder every request's spans are recorded into.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Burn-rate report against the configured SLO, as of the server
    /// clock now. Also refreshes the exported SLO gauges.
    pub fn slo_report(&self) -> SloReport {
        self.slo.report(self.clock.now_us())
    }

    /// Pumps until the queue drains, returning every response produced.
    pub fn run_to_completion(&mut self) -> Vec<Response> {
        let mut responses = Vec::new();
        while !self.queue.is_empty() {
            responses.extend(self.pump());
        }
        responses
    }

    /// Software dispatch: cached aligners + one work-stealing batch run.
    fn dispatch_software(
        &mut self,
        batch: Vec<Request>,
        threads: usize,
    ) -> Vec<(Request, bool, bool, FabpResult<Vec<Hit>>)> {
        if self.config.prefilter == PrefilterMode::Seeded {
            if let Some(index) = self.index.clone() {
                return self.dispatch_indexed(batch, &index, threads);
            }
        }
        let threshold = self.config.threshold;
        let start_us = self.clock.now_us() as f64;
        let flight = self.flight.clone();
        // Resolve every request to a cached/built aligner (or a build
        // error) first, so one bad query cannot fail its batch-mates.
        let mut prepared: Vec<(Request, bool, FabpResult<Arc<FabpAligner>>)> = Vec::new();
        for request in batch {
            let key = content_hash(request.protein.iter().map(|&aa| aa as u8));
            let cached = self.aligner_cache.contains(key);
            flight.record(
                TraceEvent::new(
                    request.trace.child(1).child(100),
                    "query_cache",
                    start_us,
                    1.0,
                )
                .with_flags(if cached {
                    FLAG_CACHE_HIT
                } else {
                    FLAG_CACHE_MISS
                }),
            );
            let built = self.aligner_cache.try_get_or_insert_with(key, || {
                FabpAligner::builder()
                    .protein_query(&request.protein)
                    .threshold(threshold)
                    .engine(Engine::Software { threads: 1 })
                    .build()
                    .map(Arc::new)
                    .map_err(FabpError::from)
            });
            prepared.push((request, cached, built));
        }
        let runnable: Vec<Arc<FabpAligner>> = prepared
            .iter()
            .filter_map(|(_, _, built)| built.as_ref().ok().cloned())
            .collect();
        let align_start = Instant::now();
        let outcomes = match search_all_prebuilt(&runnable, &self.reference, threads) {
            Ok(outcomes) => outcomes,
            Err(e) => {
                // A scheduler invariant failure poisons the whole batch.
                return prepared
                    .into_iter()
                    .map(|(request, cached, _)| (request, cached, false, Err(e.clone())))
                    .collect();
            }
        };
        let align_us = align_start.elapsed().as_secs_f64() * 1e6;
        let mut outcomes = outcomes.into_iter();
        prepared
            .into_iter()
            .map(|(request, cached, built)| {
                let result = match built {
                    Ok(_) => match outcomes.next() {
                        Some(outcome) => {
                            flight.record(
                                TraceEvent::new(
                                    request.trace.child(1).child(200),
                                    "align",
                                    start_us,
                                    align_us,
                                )
                                .with_track(1),
                            );
                            Ok(outcome.hits)
                        }
                        None => Err(FabpError::Internal(
                            "batch dispatch returned fewer outcomes than aligners".to_string(),
                        )),
                    },
                    Err(e) => Err(e),
                };
                (request, cached, false, result)
            })
            .collect()
    }

    /// Index-backed seeded dispatch: the whole batch rides one
    /// [`search_index`] call — per shard, one three-frame translation
    /// pass seeds every query's word table, then the exact engine
    /// verifies only the coalesced candidate regions. Hits are
    /// bit-identical to the exhaustive scan on everything the filter
    /// admits (the serving transparency invariant is unchanged for
    /// admitted windows).
    fn dispatch_indexed(
        &mut self,
        batch: Vec<Request>,
        index: &ReferenceIndex,
        threads: usize,
    ) -> Vec<(Request, bool, bool, FabpResult<Vec<Hit>>)> {
        let threshold = self.config.threshold;
        let start_us = self.clock.now_us() as f64;
        let flight = self.flight.clone();
        // Pre-validate so one bad query cannot fail its batch-mates.
        let prepared: Vec<(Request, Option<FabpError>)> = batch
            .into_iter()
            .map(|request| {
                let err = request.protein.is_empty().then_some(FabpError::EmptyQuery);
                (request, err)
            })
            .collect();
        let proteins: Vec<ProteinSeq> = prepared
            .iter()
            .filter(|(_, err)| err.is_none())
            .map(|(r, _)| r.protein.clone())
            .collect();
        let verify_start = Instant::now();
        let searched = search_index(
            index,
            &proteins,
            threshold,
            PrefilterMode::Seeded,
            SeedParams::default(),
            threads,
        );
        let verify_us = verify_start.elapsed().as_secs_f64() * 1e6;
        let mut per_query = match searched {
            Ok((hits, _stats)) => hits.into_iter(),
            Err(e) => {
                return prepared
                    .into_iter()
                    .map(|(request, err)| {
                        let failure = err.unwrap_or_else(|| e.clone());
                        (request, false, false, Err(failure))
                    })
                    .collect();
            }
        };
        prepared
            .into_iter()
            .map(|(request, err)| {
                let result = match err {
                    Some(e) => Err(e),
                    None => match per_query.next() {
                        Some(hits) => {
                            flight.record(
                                TraceEvent::new(
                                    request.trace.child(1).child(200),
                                    "seed_verify",
                                    start_us,
                                    verify_us,
                                )
                                .with_track(1),
                            );
                            Ok(hits)
                        }
                        None => Err(FabpError::Internal(
                            "index dispatch returned fewer hit lists than queries".to_string(),
                        )),
                    },
                };
                (request, false, false, result)
            })
            .collect()
    }

    /// Cluster dispatch: per-query cached clusters over cached packed
    /// shards; queries run back-to-back as on hardware (the query lives
    /// in flip-flops — reloading it is microseconds against a
    /// multi-millisecond scan).
    fn dispatch_cluster(
        &mut self,
        batch: Vec<Request>,
        nodes: usize,
        resilience: ResilienceLevel,
        fault_spec: Option<&str>,
    ) -> Vec<(Request, bool, bool, FabpResult<Vec<Hit>>)> {
        let threshold = self.config.threshold;
        let total_bases = self.reference.len() as u64;
        let start_us = self.clock.now_us() as f64;
        let flight = self.flight.clone();
        batch
            .into_iter()
            .map(|request| {
                let key = content_hash(request.protein.iter().map(|&aa| aa as u8));
                let cached = self.cluster_cache.contains(key);
                // Scatter spans hang off the batch span, so the dump
                // reads submit → queue → batch → per-shard work.
                let batch_ctx = request.trace.child(1);
                flight.record(
                    TraceEvent::new(batch_ctx.child(100), "query_cache", start_us, 1.0).with_flags(
                        if cached {
                            FLAG_CACHE_HIT
                        } else {
                            FLAG_CACHE_MISS
                        },
                    ),
                );
                let result = self.cluster_cache.try_get_or_insert_with(key, || {
                    let query = EncodedQuery::from_protein(&request.protein);
                    let config = EngineConfig::kintex7(threshold.resolve(query.len()));
                    FpgaCluster::homogeneous(&query, &config, nodes, total_bases).map(Arc::new)
                });
                let mut recovered = false;
                let result = result.and_then(|cluster| match fault_spec {
                    Some(spec) => {
                        let schedule = FaultSchedule::parse(spec)?;
                        cluster
                            .search_resilient_traced(
                                &self.shards,
                                &self.shard_offsets,
                                resilience,
                                &schedule,
                                &self.registry,
                                &flight,
                                batch_ctx,
                                start_us,
                            )
                            .map(|outcome| {
                                recovered = outcome.report.recovered > 0;
                                outcome.hits
                            })
                    }
                    None => {
                        let packed = self
                            .packed_cache
                            .get_or_insert_with(self.reference_key, || {
                                Arc::new(self.shards.iter().map(PackedSeq::from_rna).collect())
                            });
                        cluster.search_packed_traced(
                            &packed,
                            &self.shard_offsets,
                            &self.registry,
                            &flight,
                            batch_ctx,
                            start_us,
                        )
                    }
                });
                (request, cached, recovered, result)
            })
            .collect()
    }

    /// Fleet dispatch: per-query cached fleets over cached packed
    /// shards, hedged scatter/gather routed through the server's
    /// persistent failure detector. Every completion feeds the
    /// detector's EWMA statistics, so health state (and with it the p95
    /// hedge budget) evolves across requests.
    fn dispatch_fleet(
        &mut self,
        batch: Vec<Request>,
        nodes: usize,
        replication: usize,
        now_us: u64,
    ) -> Vec<(Request, bool, bool, FabpResult<Vec<Hit>>)> {
        let threshold = self.config.threshold;
        let total_bases = self.reference.len() as u64;
        let start_us = self.clock.now_us() as f64;
        let flight = self.flight.clone();
        // Take the detector out of the server for the duration of the
        // batch so it can be threaded mutably through every dispatch
        // alongside the caches, then put it back.
        let mut detector = match self.detector.take() {
            Some(detector) => detector,
            None => FailureDetector::with_defaults(nodes, &self.registry),
        };
        let results = batch
            .into_iter()
            .map(|request| {
                let key = content_hash(request.protein.iter().map(|&aa| aa as u8));
                let cached = self.fleet_cache.contains(key);
                let batch_ctx = request.trace.child(1);
                flight.record(
                    TraceEvent::new(batch_ctx.child(100), "query_cache", start_us, 1.0).with_flags(
                        if cached {
                            FLAG_CACHE_HIT
                        } else {
                            FLAG_CACHE_MISS
                        },
                    ),
                );
                let built = self.fleet_cache.try_get_or_insert_with(key, || {
                    let query = EncodedQuery::from_protein(&request.protein);
                    let config = EngineConfig::kintex7(threshold.resolve(query.len()));
                    FpgaFleet::homogeneous(&query, &config, nodes, replication, total_bases)
                        .map(Arc::new)
                });
                let mut recovered = false;
                let result = built.and_then(|fleet| {
                    let packed = self
                        .packed_cache
                        .get_or_insert_with(self.reference_key, || {
                            Arc::new(self.shards.iter().map(PackedSeq::from_rna).collect())
                        });
                    fleet
                        .search_packed_hedged(
                            &packed,
                            &self.shard_offsets,
                            &mut detector,
                            now_us,
                            &self.registry,
                            &flight,
                            batch_ctx,
                            start_us,
                        )
                        .map(|outcome| {
                            recovered = outcome.failovers > 0;
                            self.stats.hedges += u64::from(outcome.hedges);
                            self.stats.hedge_wins += u64::from(outcome.hedge_wins);
                            self.stats.cancels += u64::from(outcome.cancels);
                            self.stats.failovers += u64::from(outcome.failovers);
                            outcome.hits
                        })
                });
                (request, cached, recovered, result)
            })
            .collect();
        self.detector = Some(detector);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A reference with `proteins`' coding RNA planted at known spots.
    fn planted_reference(proteins: &[ProteinSeq], rng: &mut StdRng) -> RnaSeq {
        let mut bases = random_rna(4_000, rng).into_inner();
        for (i, protein) in proteins.iter().enumerate() {
            let coding = coding_rna_for_paper_patterns(protein, rng);
            let at = 200 + i * 700;
            bases.splice(at..at + coding.len(), coding.iter().copied());
        }
        RnaSeq::from(bases)
    }

    fn sequential_hits(protein: &ProteinSeq, reference: &RnaSeq, threshold: Threshold) -> Vec<Hit> {
        FabpAligner::builder()
            .protein_query(protein)
            .threshold(threshold)
            .engine(Engine::Software { threads: 1 })
            .build()
            .unwrap()
            .search(reference)
            .hits
    }

    #[test]
    fn served_hits_match_sequential_single_query_runs() {
        let mut rng = StdRng::seed_from_u64(91);
        let proteins: Vec<ProteinSeq> = (0..5).map(|_| random_protein(8, &mut rng)).collect();
        let reference = planted_reference(&proteins, &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            backend: ServeBackend::Software { threads: 4 },
            ..ServeConfig::default()
        };
        let mut server = FabpServer::new(reference.clone(), config, &registry).unwrap();
        let mut tickets = Vec::new();
        for (i, protein) in proteins.iter().enumerate() {
            let tenant = format!("tenant-{}", i % 2);
            tickets.push((server.submit(&tenant, protein).unwrap(), protein));
        }
        let responses = server.run_to_completion();
        assert_eq!(responses.len(), proteins.len());
        for (ticket, protein) in tickets {
            let response = responses.iter().find(|r| r.id == ticket).unwrap();
            let hits = response.result.as_ref().unwrap();
            let expected = sequential_hits(protein, &reference, Threshold::Fraction(1.0));
            assert_eq!(hits, &expected, "ticket {ticket}");
            assert!(!expected.is_empty(), "planted query must hit");
        }
        let stats = server.stats();
        assert_eq!(stats.served_ok, 5);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn repeated_queries_hit_the_aligner_cache() {
        let mut rng = StdRng::seed_from_u64(92);
        let protein = random_protein(6, &mut rng);
        let reference = planted_reference(std::slice::from_ref(&protein), &mut rng);
        let registry = Registry::new();
        let mut server = FabpServer::new(reference, ServeConfig::default(), &registry).unwrap();
        for _ in 0..3 {
            server.submit("a", &protein).unwrap();
        }
        let responses = server.run_to_completion();
        assert_eq!(responses.len(), 3);
        // The first build populates the cache; later requests reuse it
        // (whether in the same batch or a later one).
        assert!(responses.iter().filter(|r| r.cached_query).count() >= 2);
        let stats = server.stats();
        assert!(stats.query_cache.hits >= 2, "{:?}", stats.query_cache);
        assert_eq!(stats.query_cache.misses, 1, "{:?}", stats.query_cache);
    }

    #[test]
    fn overload_rejects_with_typed_backpressure() {
        let mut rng = StdRng::seed_from_u64(93);
        let protein = random_protein(5, &mut rng);
        let reference = random_rna(1_000, &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let mut server = FabpServer::new(reference, config, &registry).unwrap();
        server.submit("a", &protein).unwrap();
        server.submit("a", &protein).unwrap();
        match server.submit("a", &protein) {
            Err(FabpError::Overloaded {
                queue_depth,
                capacity,
            }) => assert_eq!((queue_depth, capacity), (2, 2)),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(server.stats().rejected, 1);
    }

    #[test]
    fn expired_deadlines_are_shed_with_latency_accounting() {
        let mut rng = StdRng::seed_from_u64(94);
        let protein = random_protein(5, &mut rng);
        let reference = random_rna(1_000, &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            default_deadline_us: Some(500),
            ..ServeConfig::default()
        };
        let mut server = FabpServer::with_manual_clock(reference, config, &registry).unwrap();
        let doomed = server.submit("a", &protein).unwrap();
        server.advance_clock_us(2_000); // sail past the 500 us budget
        let live = server.submit("a", &protein).unwrap();
        let responses = server.run_to_completion();
        let shed = responses.iter().find(|r| r.id == doomed).unwrap();
        match &shed.result {
            Err(FabpError::DeadlineExceeded { late_us }) => assert_eq!(*late_us, 1_500),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(shed.latency_us, 2_000);
        assert_eq!(shed.batch_size, 0);
        let served = responses.iter().find(|r| r.id == live).unwrap();
        assert!(served.result.is_ok());
        let stats = server.stats();
        assert_eq!((stats.shed, stats.served_ok), (1, 1));
    }

    #[test]
    fn empty_query_is_rejected_at_submit() {
        let mut rng = StdRng::seed_from_u64(95);
        let reference = random_rna(500, &mut rng);
        let registry = Registry::disabled();
        let mut server = FabpServer::new(reference, ServeConfig::default(), &registry).unwrap();
        assert!(matches!(
            server.submit("a", &ProteinSeq::new()),
            Err(FabpError::EmptyQuery)
        ));
    }

    #[test]
    fn cluster_backend_matches_software_and_caches_packed_shards() {
        let mut rng = StdRng::seed_from_u64(96);
        let proteins: Vec<ProteinSeq> = (0..3).map(|_| random_protein(7, &mut rng)).collect();
        let reference = planted_reference(&proteins, &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            backend: ServeBackend::Cluster {
                nodes: 3,
                resilience: ResilienceLevel::Off,
                fault_spec: None,
            },
            max_query_aa: 16,
            ..ServeConfig::default()
        };
        let mut server = FabpServer::new(reference.clone(), config, &registry).unwrap();
        let mut tickets = Vec::new();
        for protein in &proteins {
            tickets.push((server.submit("a", protein).unwrap(), protein));
        }
        // Resubmit the first protein: exercises the cluster cache.
        let repeat = server.submit("b", &proteins[0]).unwrap();
        let responses = server.run_to_completion();
        for (ticket, protein) in tickets {
            let response = responses.iter().find(|r| r.id == ticket).unwrap();
            let expected = sequential_hits(protein, &reference, Threshold::Fraction(1.0));
            assert_eq!(response.result.as_ref().unwrap(), &expected);
        }
        let repeated = responses.iter().find(|r| r.id == repeat).unwrap();
        assert!(repeated.result.is_ok());
        let stats = server.stats();
        assert!(stats.query_cache.hits >= 1, "{:?}", stats.query_cache);
        // Packed shards were built once and re-used by every dispatch.
        assert_eq!(
            stats.reference_cache.misses, 1,
            "{:?}",
            stats.reference_cache
        );
        assert!(
            stats.reference_cache.hits >= 3,
            "{:?}",
            stats.reference_cache
        );
    }

    #[test]
    fn cluster_backend_rejects_overlong_queries() {
        let mut rng = StdRng::seed_from_u64(97);
        let reference = random_rna(2_000, &mut rng);
        let registry = Registry::disabled();
        let config = ServeConfig {
            backend: ServeBackend::Cluster {
                nodes: 2,
                resilience: ResilienceLevel::Off,
                fault_spec: None,
            },
            max_query_aa: 4,
            ..ServeConfig::default()
        };
        let mut server = FabpServer::new(reference, config, &registry).unwrap();
        let long = random_protein(10, &mut rng);
        assert!(matches!(
            server.submit("a", &long),
            Err(FabpError::InvalidShardPlan(_))
        ));
    }

    #[test]
    fn resilient_cluster_survives_node_kill_with_identical_hits() {
        let mut rng = StdRng::seed_from_u64(98);
        let protein = random_protein(8, &mut rng);
        let reference = planted_reference(std::slice::from_ref(&protein), &mut rng);
        let registry = Registry::new();
        let make = |fault_spec: Option<String>| ServeConfig {
            backend: ServeBackend::Cluster {
                nodes: 3,
                resilience: ResilienceLevel::Recover,
                fault_spec,
            },
            max_query_aa: 16,
            ..ServeConfig::default()
        };
        let mut healthy = FabpServer::new(reference.clone(), make(None), &registry).unwrap();
        healthy.submit("a", &protein).unwrap();
        let clean = healthy.run_to_completion().remove(0).result.unwrap();

        let mut chaos =
            FabpServer::new(reference, make(Some("kill@1:50".to_string())), &registry).unwrap();
        chaos.submit("a", &protein).unwrap();
        let survived = chaos.run_to_completion().remove(0).result.unwrap();
        assert_eq!(survived, clean, "recovery must be hit-transparent");
        assert!(!clean.is_empty(), "planted query must hit");
    }

    #[test]
    fn fault_recovery_span_tree_shares_one_trace() {
        let mut rng = StdRng::seed_from_u64(100);
        let protein = random_protein(8, &mut rng);
        let reference = planted_reference(std::slice::from_ref(&protein), &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            backend: ServeBackend::Cluster {
                nodes: 3,
                resilience: ResilienceLevel::Recover,
                fault_spec: Some("kill@1:50".to_string()),
            },
            max_query_aa: 16,
            ..ServeConfig::default()
        };
        let mut server = FabpServer::new(reference.clone(), config, &registry).unwrap();
        server.submit("a", &protein).unwrap();
        let hits = server.run_to_completion().remove(0).result.unwrap();
        assert_eq!(
            hits,
            sequential_hits(&protein, &reference, Threshold::Fraction(1.0)),
            "recovery stays hit-transparent under tracing"
        );

        let events = server.flight_recorder().events();
        let root = events
            .iter()
            .find(|e| e.name == "request")
            .expect("root request span");
        assert_ne!(root.trace_id, 0);
        assert_eq!(root.parent_span_id, 0);
        let trace: Vec<_> = events
            .iter()
            .filter(|e| e.trace_id == root.trace_id)
            .collect();
        let queue = trace
            .iter()
            .find(|e| e.name == "queue_wait")
            .expect("queue-wait span");
        assert_eq!(queue.parent_span_id, root.span_id);
        let batch = trace
            .iter()
            .find(|e| e.name == "batch")
            .expect("batch span");
        assert_eq!(batch.parent_span_id, root.span_id);
        let shards: Vec<_> = trace.iter().filter(|e| e.name == "shard").collect();
        assert_eq!(shards.len(), 3, "one scatter span per node, dead included");
        assert!(shards.iter().all(|s| s.parent_span_id == batch.span_id));
        let retry = trace
            .iter()
            .find(|e| e.name == "resilience_retry")
            .expect("re-dispatch retry span");
        assert!(
            shards.iter().any(|s| s.span_id == retry.parent_span_id),
            "retry hangs under the dead node's scatter span"
        );
        assert_ne!(retry.flags & fabp_telemetry::FLAG_RETRY, 0);
        assert_ne!(retry.flags & FLAG_RECOVERED, 0);
        assert_ne!(root.flags & FLAG_RECOVERED, 0);

        let dumps = server.anomaly_dumps();
        let dump = dumps
            .iter()
            .find(|d| d.reason == "fault_recovery")
            .expect("recovery triggers a dump");
        assert_eq!(dump.trace_id, root.trace_id);
        assert!(dump.chrome_trace.contains("resilience_retry"));
        assert!(dump.chrome_trace.contains("queue_wait"));
    }

    #[test]
    fn shed_requests_burn_the_slo_budget_and_dump() {
        let mut rng = StdRng::seed_from_u64(101);
        let protein = random_protein(5, &mut rng);
        let reference = random_rna(1_000, &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            default_deadline_us: Some(500),
            ..ServeConfig::default()
        };
        let mut server = FabpServer::with_manual_clock(reference, config, &registry).unwrap();
        server.submit("a", &protein).unwrap();
        server.advance_clock_us(2_000);
        server.run_to_completion();

        let report = server.slo_report();
        let tenant = report.tenants.iter().find(|t| t.tenant == "a").unwrap();
        assert!(
            tenant.availability_alert,
            "100% errors must trip the availability burn alert: {report:?}"
        );
        assert!(report.alerting());
        assert!(report.render_text().contains("AVAILABILITY"));
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("fabp_slo_burn_rate_milli"), "{text}");
        assert!(text.contains("fabp_serve_anomaly_dumps_total 1"), "{text}");

        let dumps = server.anomaly_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "deadline_exceeded");
        assert!(dumps[0].chrome_trace.contains("queue_wait"));
        // The shed request's spans carry the shed flag.
        let events = server.flight_recorder().events_for(dumps[0].trace_id);
        assert!(events.iter().all(|e| e.flags & FLAG_SHED != 0));
    }

    #[test]
    fn latency_exemplars_link_histograms_to_traces() {
        let mut rng = StdRng::seed_from_u64(102);
        let protein = random_protein(5, &mut rng);
        let reference = random_rna(1_500, &mut rng);
        let registry = Registry::new();
        let mut server = FabpServer::new(reference, ServeConfig::default(), &registry).unwrap();
        server.submit("a", &protein).unwrap();
        server.run_to_completion();
        let events = server.flight_recorder().events();
        let root = events.iter().find(|e| e.name == "request").unwrap();
        let text = registry.snapshot().to_prometheus();
        assert!(
            text.contains(&format!("trace_id=\"{:016x}\"", root.trace_id)),
            "latency bucket exemplar must carry the request's trace id:\n{text}"
        );
    }

    #[test]
    fn anomaly_dump_budget_is_bounded() {
        let mut rng = StdRng::seed_from_u64(103);
        let protein = random_protein(5, &mut rng);
        let reference = random_rna(800, &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            default_deadline_us: Some(1),
            ..ServeConfig::default()
        };
        let mut server = FabpServer::with_manual_clock(reference, config, &registry).unwrap();
        for _ in 0..(MAX_ANOMALY_DUMPS + 4) {
            server.submit("a", &protein).unwrap();
        }
        server.advance_clock_us(10_000); // expire everything queued
        server.run_to_completion();
        assert_eq!(server.anomaly_dumps().len(), MAX_ANOMALY_DUMPS);
        assert_eq!(server.stats().shed as usize, MAX_ANOMALY_DUMPS + 4);
    }

    #[test]
    fn fleet_backend_matches_sequential_hits_and_caches_fleets() {
        let mut rng = StdRng::seed_from_u64(104);
        let proteins: Vec<ProteinSeq> = (0..3).map(|_| random_protein(7, &mut rng)).collect();
        let reference = planted_reference(&proteins, &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            backend: ServeBackend::Fleet {
                nodes: 3,
                replication: 2,
                fault_spec: None,
            },
            max_query_aa: 16,
            ..ServeConfig::default()
        };
        let mut server = FabpServer::new(reference.clone(), config, &registry).unwrap();
        assert_eq!(server.routable_nodes(), Some(3));
        let mut tickets = Vec::new();
        for protein in &proteins {
            tickets.push((server.submit("a", protein).unwrap(), protein));
        }
        let repeat = server.submit("b", &proteins[0]).unwrap();
        let responses = server.run_to_completion();
        for (ticket, protein) in tickets {
            let response = responses.iter().find(|r| r.id == ticket).unwrap();
            let expected = sequential_hits(protein, &reference, Threshold::Fraction(1.0));
            assert_eq!(response.result.as_ref().unwrap(), &expected);
        }
        assert!(responses
            .iter()
            .find(|r| r.id == repeat)
            .unwrap()
            .result
            .is_ok());
        let stats = server.stats();
        assert!(stats.query_cache.hits >= 1, "{:?}", stats.query_cache);
        assert_eq!(stats.failovers, 0, "healthy fleet never fails over");
    }

    #[test]
    fn fleet_backend_build_rejects_unsatisfiable_replication() {
        let mut rng = StdRng::seed_from_u64(105);
        let reference = random_rna(2_000, &mut rng);
        let config = ServeConfig {
            backend: ServeBackend::Fleet {
                nodes: 2,
                replication: 3,
                fault_spec: None,
            },
            ..ServeConfig::default()
        };
        assert!(matches!(
            FabpServer::new(reference, config, &Registry::disabled()),
            Err(FabpError::InvalidShardPlan(_))
        ));
    }

    #[test]
    fn draining_rejects_new_work_and_completes_in_flight() {
        let mut rng = StdRng::seed_from_u64(106);
        let protein = random_protein(5, &mut rng);
        let reference = planted_reference(std::slice::from_ref(&protein), &mut rng);
        let registry = Registry::new();
        let mut server = FabpServer::new(reference, ServeConfig::default(), &registry).unwrap();
        server.submit("a", &protein).unwrap();
        server.submit("b", &protein).unwrap();
        assert!(!server.is_draining());
        server.begin_drain();
        assert!(server.is_draining());
        assert!(!server.is_drained(), "two requests still queued");
        assert!(matches!(
            server.submit("a", &protein),
            Err(FabpError::Draining)
        ));
        let responses = server.run_to_completion();
        assert_eq!(responses.len(), 2);
        assert!(responses.iter().all(|r| r.result.is_ok()));
        assert!(server.is_drained());
        assert_eq!(server.stats().rejected, 1);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("fabp_serve_draining 1"), "{text}");
    }

    #[test]
    fn brownout_sheds_lowest_priority_tenants_with_typed_errors() {
        let mut rng = StdRng::seed_from_u64(107);
        let protein = random_protein(6, &mut rng);
        let reference = planted_reference(std::slice::from_ref(&protein), &mut rng);
        let registry = Registry::new();
        let config = ServeConfig {
            backend: ServeBackend::Fleet {
                nodes: 4,
                replication: 2,
                fault_spec: None,
            },
            queue_capacity: 8,
            max_query_aa: 16,
            ..ServeConfig::default()
        };
        let mut server = FabpServer::with_manual_clock(reference, config, &registry).unwrap();
        server.set_tenant_priority("gold", 1);
        server.set_tenant_priority("bronze", 0);
        let mut gold = Vec::new();
        for _ in 0..3 {
            gold.push(server.submit("gold", &protein).unwrap());
        }
        for _ in 0..3 {
            server.submit("bronze", &protein).unwrap();
        }
        // Two nodes die: surviving capacity is 8 · 2/4 = 4 requests, but
        // 6 are queued — the brownout sheds the 2 newest bronze ones.
        server.kill_node(2);
        server.kill_node(3);
        assert_eq!(server.routable_nodes(), Some(2));
        let responses = server.run_to_completion();
        let browned: Vec<_> = responses
            .iter()
            .filter(|r| matches!(r.result, Err(FabpError::Brownout { .. })))
            .collect();
        assert_eq!(browned.len(), 2, "{responses:?}");
        assert!(browned.iter().all(|r| r.tenant == "bronze"));
        match &browned[0].result {
            Err(FabpError::Brownout {
                routable_nodes,
                fleet_nodes,
            }) => assert_eq!((*routable_nodes, *fleet_nodes), (2, 4)),
            other => panic!("expected Brownout, got {other:?}"),
        }
        for id in gold {
            let response = responses.iter().find(|r| r.id == id).unwrap();
            assert!(response.result.is_ok(), "gold survives: {response:?}");
        }
        let stats = server.stats();
        assert_eq!(stats.brownout_shed, 2);
        assert!(stats.failovers > 0, "dead replicas force failover");
        assert!(server
            .anomaly_dumps()
            .iter()
            .any(|d| d.reason == "brownout"));
    }

    #[test]
    fn seeded_index_serving_is_transparent() {
        use fabp_core::index::IndexBuildOptions;
        let mut rng = StdRng::seed_from_u64(106);
        let proteins: Vec<ProteinSeq> = (0..4).map(|_| random_protein(8, &mut rng)).collect();
        let reference = planted_reference(&proteins, &mut rng);
        let index = Arc::new(
            ReferenceIndex::build_from_rna(
                &reference,
                IndexBuildOptions {
                    overlap: 3 * 64, // covers max_query_aa = 64 windows
                    target_shard_bases: 1_024,
                },
            )
            .unwrap(),
        );
        assert!(index.shards().len() > 1, "test must exercise multi-shard");
        let mut per_mode = Vec::new();
        for prefilter in [PrefilterMode::Off, PrefilterMode::Seeded] {
            let registry = Registry::new();
            let config = ServeConfig {
                threshold: Threshold::Fraction(0.9),
                prefilter,
                max_query_aa: 64,
                ..ServeConfig::default()
            };
            let mut server = FabpServer::with_index(Arc::clone(&index), config, &registry).unwrap();
            let tickets: Vec<u64> = proteins
                .iter()
                .map(|p| server.submit("a", p).unwrap())
                .collect();
            let responses = server.run_to_completion();
            let hits: Vec<Vec<Hit>> = tickets
                .iter()
                .map(|t| {
                    responses
                        .iter()
                        .find(|r| r.id == *t)
                        .unwrap()
                        .result
                        .clone()
                        .unwrap()
                })
                .collect();
            per_mode.push(hits);
        }
        assert!(
            per_mode[0].iter().any(|h| !h.is_empty()),
            "planted queries must hit"
        );
        // Seeded serving is bit-identical to the exhaustive scan, which
        // itself matches sequential single-query runs.
        assert_eq!(per_mode[0], per_mode[1]);
        for (protein, hits) in proteins.iter().zip(&per_mode[0]) {
            let expected = sequential_hits(protein, &reference, Threshold::Fraction(0.9));
            assert_eq!(hits, &expected);
        }
    }

    #[test]
    fn with_index_rejects_overlap_too_small_for_max_query() {
        use fabp_core::index::IndexBuildOptions;
        let mut rng = StdRng::seed_from_u64(107);
        let reference = random_rna(4_000, &mut rng);
        let index = Arc::new(
            ReferenceIndex::build_from_rna(
                &reference,
                IndexBuildOptions {
                    overlap: 16, // far below 3 * max_query_aa
                    target_shard_bases: 1_024,
                },
            )
            .unwrap(),
        );
        let registry = Registry::new();
        let config = ServeConfig {
            prefilter: PrefilterMode::Seeded,
            ..ServeConfig::default()
        };
        match FabpServer::with_index(Arc::clone(&index), config, &registry) {
            Err(FabpError::InvalidShardPlan(msg)) => {
                assert!(msg.contains("overlap"), "{msg}");
            }
            other => panic!("expected InvalidShardPlan, got {other:?}"),
        }
        // The exhaustive path over the same index stays available.
        let off = ServeConfig::default();
        assert!(FabpServer::with_index(index, off, &registry).is_ok());
    }

    #[test]
    fn telemetry_and_spans_are_recorded() {
        let mut rng = StdRng::seed_from_u64(99);
        let protein = random_protein(5, &mut rng);
        let reference = random_rna(1_500, &mut rng);
        let registry = Registry::new();
        let mut server = FabpServer::new(reference, ServeConfig::default(), &registry).unwrap();
        server.submit("a", &protein).unwrap();
        server.run_to_completion();
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("fabp_serve_served_total 1"), "{text}");
        assert!(text.contains("fabp_serve_batch_size"), "{text}");
        assert!(text.contains("fabp_serve_latency_us"), "{text}");
        let spans = registry.snapshot();
        assert!(
            spans.spans.iter().any(|s| s.name == "fabp_serve_batch"),
            "expected a fabp_serve_batch span"
        );
    }
}
