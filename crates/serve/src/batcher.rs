//! Adaptive micro-batching: pick a batch size that fills the engines
//! without blowing the latency SLO.
//!
//! Batching amortises dispatch overhead (per-batch scheduling, telemetry,
//! thread wake-ups) but the *last* query in a batch waits for the whole
//! batch, so batch size trades throughput against tail latency. The
//! batcher closes that loop empirically: it keeps an EWMA of observed
//! per-query service time and sizes the next batch so the predicted
//! batch duration stays inside the configured SLO —
//!
//! ```text
//! target = clamp(min(queue_depth, slo_us / ewma_per_query_us), 1, max_batch)
//! ```
//!
//! Under light load (`queue_depth` small) batches stay small and latency
//! tracks the single-query cost; under heavy load batches grow until the
//! SLO bound or `max_batch` caps them. A cold batcher (no observations
//! yet) starts from a configurable prior instead of guessing zero.

use fabp_telemetry::{Gauge, Registry};

/// Static bounds and SLO for the adaptive batcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Hard cap on queries per dispatch (engine- or memory-bound).
    pub max_batch: usize,
    /// Target ceiling for one batch's service time, microseconds. The
    /// batcher sizes batches so `predicted_batch_us <= slo_us`.
    pub slo_us: u64,
    /// Prior per-query cost used before any batch has been observed,
    /// microseconds.
    pub prior_query_us: f64,
    /// EWMA smoothing factor in `(0, 1]`; higher adapts faster.
    pub alpha: f64,
    /// SIMD lane width of the downstream batch engine
    /// ([`fabp_core::LANES`]). When the queue holds more work than one
    /// dispatch takes, targets are rounded down to a lane multiple so
    /// micro-batches land on lane-group boundaries instead of paying a
    /// partially-filled multi-query pass; depth-limited dispatches (the
    /// queue fits entirely) are never rounded. `1` disables rounding.
    pub lanes: usize,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_batch: 64,
            slo_us: 50_000,
            prior_query_us: 1_000.0,
            alpha: 0.3,
            lanes: fabp_core::LANES,
        }
    }
}

/// EWMA-driven batch sizing (see the module docs for the control law).
#[derive(Debug)]
pub struct AdaptiveBatcher {
    policy: BatchPolicy,
    ewma_query_us: f64,
    observed_batches: u64,
    ewma_gauge: Gauge,
    target_gauge: Gauge,
}

impl AdaptiveBatcher {
    /// Builds a batcher with `policy`, publishing its EWMA and last
    /// target as gauges.
    pub fn new(policy: BatchPolicy, registry: &Registry) -> AdaptiveBatcher {
        AdaptiveBatcher {
            ewma_query_us: policy.prior_query_us.max(f64::MIN_POSITIVE),
            policy,
            observed_batches: 0,
            ewma_gauge: registry.gauge(
                "fabp_serve_batcher_ewma_query_us",
                "EWMA of observed per-query service time, microseconds",
            ),
            target_gauge: registry.gauge(
                "fabp_serve_batcher_target_batch",
                "Batch size chosen by the adaptive batcher at the last dispatch",
            ),
        }
    }

    /// The policy this batcher runs under.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Current per-query cost estimate, microseconds.
    pub fn ewma_query_us(&self) -> f64 {
        self.ewma_query_us
    }

    /// Batches observed so far.
    pub fn observed_batches(&self) -> u64 {
        self.observed_batches
    }

    /// Chooses the next batch size for a queue of `queue_depth` runnable
    /// requests. Zero when the queue is empty; otherwise at least 1 (a
    /// single query is dispatched even if it alone is predicted to miss
    /// the SLO — shedding is the queue's job, not the batcher's).
    pub fn target_batch(&mut self, queue_depth: usize) -> usize {
        if queue_depth == 0 {
            self.target_gauge.set(0);
            return 0;
        }
        let slo_limited = (self.policy.slo_us as f64 / self.ewma_query_us).floor() as usize;
        let capped = slo_limited.min(self.policy.max_batch);
        let target = if capped < queue_depth {
            // Lane-aware rounding: the queue can refill the next batch, so
            // don't dispatch a ragged tail that leaves SIMD lanes empty.
            let lanes = self.policy.lanes.max(1);
            (capped / lanes) * lanes
        } else {
            queue_depth // taking the whole queue: a remainder is unavoidable
        }
        .max(1);
        self.target_gauge.set(target as i64);
        target
    }

    /// Feeds back one completed dispatch: `batch_size` queries took
    /// `elapsed_us` in total. Ignores empty batches.
    pub fn observe(&mut self, batch_size: usize, elapsed_us: f64) {
        if batch_size == 0 {
            return;
        }
        let per_query = (elapsed_us / batch_size as f64).max(f64::MIN_POSITIVE);
        self.ewma_query_us = if self.observed_batches == 0 {
            per_query // first observation replaces the prior outright
        } else {
            self.policy.alpha * per_query + (1.0 - self.policy.alpha) * self.ewma_query_us
        };
        self.observed_batches += 1;
        self.ewma_gauge.set(self.ewma_query_us.round() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(policy: BatchPolicy) -> AdaptiveBatcher {
        AdaptiveBatcher::new(policy, &Registry::disabled())
    }

    #[test]
    fn cold_batcher_uses_the_prior() {
        let mut b = batcher(BatchPolicy {
            max_batch: 64,
            slo_us: 10_000,
            prior_query_us: 1_000.0,
            alpha: 0.3,
            lanes: 4,
        });
        // slo/prior = 10: depth-limited below, SLO-limited (and rounded
        // down to the lane boundary) above.
        assert_eq!(b.target_batch(4), 4);
        assert_eq!(b.target_batch(100), 8);
    }

    #[test]
    fn empty_queue_targets_zero_but_busy_queue_at_least_one() {
        let mut b = batcher(BatchPolicy {
            max_batch: 64,
            slo_us: 100, // SLO below even one query's cost
            prior_query_us: 1_000.0,
            alpha: 0.3,
            lanes: 4,
        });
        assert_eq!(b.target_batch(0), 0);
        assert_eq!(b.target_batch(5), 1, "always makes forward progress");
    }

    #[test]
    fn slow_queries_shrink_the_batch_fast_queries_grow_it() {
        let mut b = batcher(BatchPolicy {
            max_batch: 1_000,
            slo_us: 10_000,
            prior_query_us: 100.0,
            alpha: 1.0, // adapt instantly for the test
            lanes: 4,
        });
        assert_eq!(b.target_batch(1_000), 100); // 10_000 / 100, lane-aligned
        b.observe(10, 20_000.0); // 2_000 us/query observed
        assert_eq!(b.target_batch(1_000), 4); // 10_000 / 2_000 → 5, rounded to lanes
        b.observe(5, 50.0); // 10 us/query observed
        assert_eq!(b.target_batch(1_000), 1_000); // SLO allows 1000
        assert_eq!(b.target_batch(7), 7); // depth-limited: never rounded
    }

    #[test]
    fn first_observation_replaces_the_prior() {
        let mut b = batcher(BatchPolicy {
            max_batch: 64,
            slo_us: 1_000_000,
            prior_query_us: 1.0,
            alpha: 0.1,
            lanes: 4,
        });
        b.observe(4, 4_000.0); // 1_000 us/query
        assert!((b.ewma_query_us() - 1_000.0).abs() < 1e-9);
        b.observe(4, 8_000.0); // 2_000 us/query, alpha 0.1
        assert!((b.ewma_query_us() - 1_100.0).abs() < 1e-9);
        assert_eq!(b.observed_batches(), 2);
    }

    #[test]
    fn max_batch_caps_the_target() {
        let mut b = batcher(BatchPolicy {
            max_batch: 8,
            slo_us: 1_000_000,
            prior_query_us: 1.0,
            alpha: 0.3,
            lanes: 4,
        });
        assert_eq!(b.target_batch(10_000), 8);
    }

    #[test]
    fn lane_rounding_only_applies_above_queue_depth() {
        let mut b = batcher(BatchPolicy {
            max_batch: 64,
            slo_us: 10_000,
            prior_query_us: 1_000.0, // SLO-limited at 10
            alpha: 0.3,
            lanes: 4,
        });
        // Queue deeper than the cap: 10 rounds down to the lane boundary.
        assert_eq!(b.target_batch(50), 8);
        // Queue shallower than the cap: take it all, ragged or not.
        assert_eq!(b.target_batch(7), 7);
        // Rounding never starves progress: a cap under one lane group
        // still dispatches.
        let mut tiny = batcher(BatchPolicy {
            max_batch: 64,
            slo_us: 3_000, // SLO-limited at 3 < lanes
            prior_query_us: 1_000.0,
            alpha: 0.3,
            lanes: 4,
        });
        assert_eq!(tiny.target_batch(50), 1);
        // lanes = 1 disables rounding entirely.
        let mut unrounded = batcher(BatchPolicy {
            max_batch: 64,
            slo_us: 10_000,
            prior_query_us: 1_000.0,
            alpha: 0.3,
            lanes: 1,
        });
        assert_eq!(unrounded.target_batch(50), 10);
    }

    #[test]
    fn gauges_are_exported() {
        let registry = Registry::new();
        let mut b = AdaptiveBatcher::new(BatchPolicy::default(), &registry);
        b.observe(2, 2_000.0);
        let _ = b.target_batch(3);
        let text = registry.snapshot().to_prometheus();
        assert!(
            text.contains("fabp_serve_batcher_ewma_query_us 1000"),
            "{text}"
        );
        assert!(text.contains("fabp_serve_batcher_target_batch 3"), "{text}");
    }
}
