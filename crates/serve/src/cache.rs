//! Content-hash-keyed LRU caching with telemetry.
//!
//! The serving layer caches two expensive artefacts:
//!
//! * **encoded queries / built aligners** — back-translation, 6-bit
//!   encoding and comparator-table construction are pure functions of
//!   the protein text, and production query streams are heavy-tailed
//!   (popular proteins recur), so a small LRU keyed by content hash
//!   removes the per-request build cost entirely;
//! * **packed reference shards** — 2-bit packing of a database shard is
//!   a pure function of the shard bases; resident shards are packed once
//!   and reused by every query dispatched to the cluster backend.
//!
//! Keys are 64-bit FNV-1a content hashes ([`content_hash`]); values are
//! whatever the caller stores (typically `Arc<…>` so a cache hit is a
//! pointer bump). Every hit, miss and eviction is counted both locally
//! (for [`LruCache::stats`], which works with a disabled registry) and
//! through `fabp-telemetry` (`fabp_serve_cache_*_total{cache=…}`).

use fabp_telemetry::{Counter, Gauge, Registry};
use std::collections::{BTreeMap, HashMap};

/// 64-bit FNV-1a over a byte stream — the content hash used for cache
/// keys. Deterministic across runs and platforms (unlike
/// `std::hash::RandomState`).
pub fn content_hash(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hit/miss/eviction totals observed by one cache since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A strict least-recently-used cache keyed by [`content_hash`] keys.
///
/// Recency is tracked with a monotonic tick per touch; eviction removes
/// the smallest tick (`O(log n)` via a `BTreeMap` index). A zero
/// capacity disables the cache (every lookup misses, nothing is
/// stored).
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    /// key → (value, last-touch tick).
    map: HashMap<u64, (V, u64)>,
    /// last-touch tick → key (unique: ticks never repeat).
    by_tick: BTreeMap<u64, u64>,
    tick: u64,
    stats: CacheStats,
    hits_ctr: Counter,
    misses_ctr: Counter,
    evictions_ctr: Counter,
    size_gauge: Gauge,
}

impl<V> LruCache<V> {
    /// Builds a cache holding at most `capacity` entries, publishing
    /// telemetry under the `cache=<name>` label.
    pub fn new(name: &str, capacity: usize, registry: &Registry) -> LruCache<V> {
        let labels = fabp_telemetry::labels(&[("cache", name)]);
        LruCache {
            capacity,
            map: HashMap::new(),
            by_tick: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            hits_ctr: registry.counter_with(
                "fabp_serve_cache_hits_total",
                "Serve-layer cache lookups answered from the cache",
                labels.clone(),
            ),
            misses_ctr: registry.counter_with(
                "fabp_serve_cache_misses_total",
                "Serve-layer cache lookups that built the value",
                labels.clone(),
            ),
            evictions_ctr: registry.counter_with(
                "fabp_serve_cache_evictions_total",
                "Serve-layer cache entries displaced by capacity pressure",
                labels.clone(),
            ),
            size_gauge: registry.gauge_with(
                "fabp_serve_cache_entries",
                "Serve-layer cache resident entries",
                labels,
            ),
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` is resident (does **not** touch recency or count
    /// as a lookup — a test/introspection helper).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Resident keys from least- to most-recently used.
    pub fn keys_lru_first(&self) -> Vec<u64> {
        self.by_tick.values().copied().collect()
    }

    fn touch(&mut self, key: u64, old_tick: u64) -> u64 {
        self.by_tick.remove(&old_tick);
        self.tick += 1;
        self.by_tick.insert(self.tick, key);
        self.tick
    }

    fn evict_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let Some((&oldest_tick, &oldest_key)) = self.by_tick.iter().next() else {
                break; // defensive: indexes out of sync
            };
            self.by_tick.remove(&oldest_tick);
            self.map.remove(&oldest_key);
            self.stats.evictions += 1;
            self.evictions_ctr.inc();
        }
        self.size_gauge.set(self.map.len() as i64);
    }
}

impl<V: Clone> LruCache<V> {
    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        match self.map.get(&key).map(|(v, t)| (v.clone(), *t)) {
            Some((value, old_tick)) => {
                let new_tick = self.touch(key, old_tick);
                if let Some(entry) = self.map.get_mut(&key) {
                    entry.1 = new_tick;
                }
                self.stats.hits += 1;
                self.hits_ctr.inc();
                Some(value)
            }
            None => {
                self.stats.misses += 1;
                self.misses_ctr.inc();
                None
            }
        }
    }

    /// Returns the cached value for `key`, building and inserting it
    /// with `make` on a miss (counted; may evict the LRU entry).
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let value = make();
        self.insert(key, value.clone());
        value
    }

    /// Like [`LruCache::get_or_insert_with`] for fallible builders: a
    /// build error is returned and **not** cached.
    pub fn try_get_or_insert_with<E>(
        &mut self,
        key: u64,
        make: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let value = make()?;
        self.insert(key, value.clone());
        Ok(value)
    }

    /// Inserts (or replaces) `key`, making it most-recently used.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick)) = self.map.insert(key, (value, tick)) {
            self.by_tick.remove(&old_tick);
        }
        self.by_tick.insert(tick, key);
        self.evict_to_capacity();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> LruCache<u32> {
        LruCache::new("test", capacity, &Registry::disabled())
    }

    #[test]
    fn content_hash_is_deterministic_and_spread() {
        assert_eq!(content_hash([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(*b"MFW"), content_hash(*b"MFW"));
        assert_ne!(content_hash(*b"MFW"), content_hash(*b"MWF"));
        assert_ne!(content_hash(*b"A"), content_hash(*b"AA"));
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut c = cache(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.keys_lru_first(), vec![1, 2, 3]);
        // Touch 1 → 2 becomes the LRU entry.
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.keys_lru_first(), vec![2, 3, 1]);
        c.insert(4, 40);
        assert!(!c.contains(2), "2 was least-recently used");
        assert!(c.contains(1) && c.contains(3) && c.contains(4));
        assert_eq!(c.stats().evictions, 1);
        // Insert-order tiebreak continues: next eviction is 3.
        c.insert(5, 50);
        assert!(!c.contains(3));
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn hits_misses_and_rate_are_counted() {
        let mut c = cache(2);
        assert_eq!(c.get(7), None);
        let v = c.get_or_insert_with(7, || 70);
        assert_eq!(v, 70);
        assert_eq!(c.get(7), Some(70));
        // A get_or_insert_with on a resident key counts as a hit.
        assert_eq!(c.get_or_insert_with(7, || 0), 70);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let mut c = cache(2);
        let err: Result<u32, &str> = c.try_get_or_insert_with(9, || Err("boom"));
        assert_eq!(err, Err("boom"));
        assert!(!c.contains(9));
        let ok: Result<u32, &str> = c.try_get_or_insert_with(9, || Ok(90));
        assert_eq!(ok, Ok(90));
        assert!(c.contains(9));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = cache(0);
        c.insert(1, 10);
        assert_eq!(c.get(1), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get_or_insert_with(1, || 11), 11);
        assert!(c.is_empty());
    }

    #[test]
    fn replacing_a_key_updates_value_and_recency() {
        let mut c = cache(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 2 is now LRU
        c.insert(3, 30);
        assert!(!c.contains(2));
        assert_eq!(c.get(1), Some(11));
    }

    #[test]
    fn telemetry_counters_are_exported() {
        let registry = Registry::new();
        let mut c: LruCache<u8> = LruCache::new("query", 1, &registry);
        c.insert(1, 1);
        c.insert(2, 2); // evicts 1
        let _ = c.get(2); // hit
        let _ = c.get(1); // miss
        let text = registry.snapshot().to_prometheus();
        assert!(
            text.contains("fabp_serve_cache_hits_total{cache=\"query\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fabp_serve_cache_misses_total{cache=\"query\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fabp_serve_cache_evictions_total{cache=\"query\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fabp_serve_cache_entries{cache=\"query\"} 1"),
            "{text}"
        );
    }
}
