//! Property tests for the serving layer.
//!
//! The headline property is **batching transparency**: whatever batch
//! sizes, tenant interleavings, cache capacities or pump cadences the
//! server chooses, the hits delivered for each request are bit-identical
//! to a sequential single-query `FabpAligner` run with the same
//! threshold. Micro-batching is an execution-schedule optimisation and
//! must never be a semantic one.
//!
//! Supporting properties pin the admission queue (conservation: every
//! admitted request is answered exactly once; fairness: round-robin
//! never lets one tenant monopolise a batch) and the LRU cache
//! (eviction order and resident-set behaviour under arbitrary access
//! traces).

use fabp_bio::alphabet::{AminoAcid, Nucleotide};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use fabp_core::aligner::{Engine, FabpAligner, Threshold};
use fabp_serve::{content_hash, BatchPolicy, FabpServer, LruCache, ServeBackend, ServeConfig};
use fabp_telemetry::Registry;
use proptest::prelude::*;

fn arb_protein(min: usize, max: usize) -> impl Strategy<Value = ProteinSeq> {
    prop::collection::vec(0usize..20, min..=max)
        .prop_map(|v| v.into_iter().map(|i| AminoAcid::STANDARD[i]).collect())
}

fn arb_rna(min: usize, max: usize) -> impl Strategy<Value = RnaSeq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|v| v.into_iter().map(Nucleotide::from_code2).collect())
}

fn sequential_hits(
    protein: &ProteinSeq,
    reference: &RnaSeq,
    threshold: Threshold,
) -> Vec<fabp_core::hits::Hit> {
    FabpAligner::builder()
        .protein_query(protein)
        .threshold(threshold)
        .engine(Engine::Software { threads: 1 })
        .build()
        .expect("non-empty query builds")
        .search(reference)
        .hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **Transparency invariant.** Served hits are bit-identical to
    /// sequential single-query runs under arbitrary query streams,
    /// tenant assignments, batch caps, cache sizes and thread counts.
    #[test]
    fn batching_is_transparent(
        reference in arb_rna(200, 1_500),
        queries in prop::collection::vec(arb_protein(2, 12), 1..12),
        tenant_of in prop::collection::vec(0usize..4, 12),
        max_batch in 1usize..8,
        query_cache in 0usize..6,
        threads in 1usize..5,
        frac in 0.5f64..1.0,
    ) {
        let threshold = Threshold::Fraction(frac);
        let registry = Registry::disabled();
        let config = ServeConfig {
            threshold,
            queue_capacity: 64,
            policy: BatchPolicy { max_batch, ..BatchPolicy::default() },
            backend: ServeBackend::Software { threads },
            query_cache,
            reference_cache: 2,
            default_deadline_us: None,
            max_query_aa: 64,
            prefilter: fabp_core::index::PrefilterMode::Off,
        };
        let mut server =
            FabpServer::new(reference.clone(), config, &registry).expect("server builds");
        let mut tickets = Vec::new();
        for (i, protein) in queries.iter().enumerate() {
            let tenant = format!("tenant-{}", tenant_of[i % tenant_of.len()]);
            tickets.push(server.submit(&tenant, protein).expect("capacity fits"));
        }
        let responses = server.run_to_completion();
        prop_assert_eq!(responses.len(), queries.len(), "conservation");
        for (ticket, protein) in tickets.iter().zip(&queries) {
            let response = responses
                .iter()
                .find(|r| r.id == *ticket)
                .expect("every ticket answered");
            let hits = response.result.as_ref().expect("no faults injected");
            let expected = sequential_hits(protein, &reference, threshold);
            prop_assert_eq!(hits, &expected, "batching changed hits");
        }
    }

    /// Pump cadence does not matter either: interleaving submissions
    /// with pumps (instead of submit-all-then-drain) serves the same
    /// hit sets.
    #[test]
    fn pump_interleaving_is_transparent(
        reference in arb_rna(100, 600),
        queries in prop::collection::vec(arb_protein(2, 8), 1..8),
        pump_every in 1usize..4,
    ) {
        let registry = Registry::disabled();
        let config = ServeConfig {
            queue_capacity: 32,
            policy: BatchPolicy { max_batch: 2, ..BatchPolicy::default() },
            ..ServeConfig::default()
        };
        let mut server =
            FabpServer::new(reference.clone(), config, &registry).expect("server builds");
        let mut responses = Vec::new();
        let mut tickets = Vec::new();
        for (i, protein) in queries.iter().enumerate() {
            tickets.push(server.submit("t", protein).expect("capacity fits"));
            if i % pump_every == 0 {
                responses.extend(server.pump());
            }
        }
        responses.extend(server.run_to_completion());
        prop_assert_eq!(responses.len(), queries.len());
        for (ticket, protein) in tickets.iter().zip(&queries) {
            let response = responses.iter().find(|r| r.id == *ticket).expect("answered");
            let expected = sequential_hits(protein, &reference, Threshold::Fraction(1.0));
            prop_assert_eq!(response.result.as_ref().expect("ok"), &expected);
        }
    }

    /// Queue conservation with deadlines: every admitted request is
    /// answered exactly once — served or shed, never lost, never
    /// duplicated.
    #[test]
    fn every_request_is_answered_exactly_once(
        reference in arb_rna(100, 400),
        proteins in prop::collection::vec(arb_protein(2, 6), 1..16),
        deadlines in prop::collection::vec(prop::option::of(0u64..3_000), 16..=16),
        advance in 0u64..4_000,
    ) {
        let plan: Vec<(ProteinSeq, Option<u64>)> = proteins
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, deadlines[i]))
            .collect();
        let registry = Registry::disabled();
        let mut server = FabpServer::with_manual_clock(
            reference,
            ServeConfig { queue_capacity: 64, ..ServeConfig::default() },
            &registry,
        )
        .expect("server builds");
        let mut tickets = Vec::new();
        for (protein, deadline) in &plan {
            tickets.push(
                server
                    .submit_with_deadline("t", protein, *deadline)
                    .expect("capacity fits"),
            );
        }
        server.advance_clock_us(advance);
        let responses = server.run_to_completion();
        prop_assert_eq!(responses.len(), plan.len());
        let mut seen = responses.iter().map(|r| r.id).collect::<Vec<_>>();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), plan.len(), "no duplicate responses");
        // Shed requests are exactly those whose deadline < now.
        for (ticket, (_, deadline)) in tickets.iter().zip(&plan) {
            let response = responses.iter().find(|r| r.id == *ticket).expect("answered");
            let expired = deadline.is_some_and(|d| d < advance);
            prop_assert_eq!(
                response.result.is_err(),
                expired,
                "deadline {:?} vs advance {}",
                deadline,
                advance
            );
        }
    }

    /// LRU model check: against an arbitrary access trace, the cache
    /// agrees with a brute-force recency model — resident set, eviction
    /// victim and hit/miss counts all match.
    #[test]
    fn lru_matches_a_reference_model(
        capacity in 1usize..6,
        trace in prop::collection::vec(0u64..10, 1..64),
    ) {
        let mut cache: LruCache<u64> = LruCache::new("model", capacity, &Registry::disabled());
        // Model: vector of keys, most-recently-used last.
        let mut model: Vec<u64> = Vec::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &key in &trace {
            if let Some(v) = cache.get(key) {
                prop_assert_eq!(v, key * 7, "cached value corrupted");
                prop_assert!(model.contains(&key), "cache hit the model missed");
                hits += 1;
                model.retain(|&k| k != key);
                model.push(key);
            } else {
                prop_assert!(!model.contains(&key), "cache missed a resident key");
                misses += 1;
                cache.insert(key, key * 7);
                model.push(key);
                if model.len() > capacity {
                    model.remove(0); // evict the least-recently used
                }
            }
        }
        let lru_first = cache.keys_lru_first();
        prop_assert_eq!(lru_first, model.clone(), "recency order diverged");
        let stats = cache.stats();
        prop_assert_eq!((stats.hits, stats.misses), (hits, misses));
    }

    /// The content hash is injective on the traces we feed it (no
    /// collisions across distinct short protein strings) and pure.
    #[test]
    fn content_hash_is_pure_and_collision_free_on_small_sets(
        proteins in prop::collection::vec(arb_protein(1, 10), 2..12),
    ) {
        let hashes: Vec<u64> = proteins
            .iter()
            .map(|p| content_hash(p.iter().map(|&aa| aa as u8)))
            .collect();
        for (i, p) in proteins.iter().enumerate() {
            prop_assert_eq!(content_hash(p.iter().map(|&aa| aa as u8)), hashes[i]);
            for (j, q) in proteins.iter().enumerate() {
                if p.as_slice() != q.as_slice() {
                    prop_assert_ne!(hashes[i], hashes[j], "collision {} vs {}", i, j);
                }
            }
        }
    }
}

// ---- directed (non-property) regression tests ---------------------------

/// Eviction order under a scripted access pattern: the serving layer's
/// worst case is a scan of distinct queries one larger than the cache.
#[test]
fn cache_eviction_order_under_cyclic_scan() {
    let registry = Registry::disabled();
    let mut cache: LruCache<u32> = LruCache::new("scan", 3, &registry);
    // Cyclic scan over capacity+1 keys: every access misses (the classic
    // LRU pathological case) — the cache must keep exactly the last 3.
    for round in 0..4u32 {
        for key in 0..4u64 {
            if cache.get(key).is_none() {
                cache.insert(key, round);
            }
        }
    }
    assert_eq!(cache.stats().hits, 0, "cyclic scan must never hit");
    assert_eq!(cache.stats().misses, 16);
    assert_eq!(cache.stats().evictions, 13);
    assert_eq!(cache.keys_lru_first(), vec![1, 2, 3]);
}

/// Deadline shedding is all-or-nothing per request and leaves live
/// requests untouched, even when expired requests dominate the queue.
#[test]
fn shedding_storm_spares_live_requests() {
    let registry = Registry::disabled();
    let reference: RnaSeq = "GGAUGUUUGGAUGUUUGGAUGUUUGG".parse().unwrap();
    let mut server = FabpServer::with_manual_clock(
        reference,
        ServeConfig {
            policy: BatchPolicy {
                max_batch: 2,
                ..BatchPolicy::default()
            },
            ..ServeConfig::default()
        },
        &registry,
    )
    .unwrap();
    let protein: ProteinSeq = "MF".parse().unwrap();
    let mut doomed = Vec::new();
    for _ in 0..9 {
        doomed.push(
            server
                .submit_with_deadline("burst", &protein, Some(10))
                .unwrap(),
        );
    }
    let live = server.submit_with_deadline("live", &protein, None).unwrap();
    server.advance_clock_us(1_000);
    let responses = server.run_to_completion();
    assert_eq!(responses.len(), 10);
    for id in doomed {
        let r = responses.iter().find(|r| r.id == id).unwrap();
        assert!(
            matches!(
                r.result,
                Err(fabp_serve::FabpError::DeadlineExceeded { .. })
            ),
            "{:?}",
            r.result
        );
    }
    let lucky = responses.iter().find(|r| r.id == live).unwrap();
    let hits = lucky.result.as_ref().unwrap();
    assert!(!hits.is_empty(), "live request must still be served");
    let stats = server.stats();
    assert_eq!((stats.shed, stats.served_ok), (9, 1));
}
