//! Chaos under live traffic: rolling node kills against a serving
//! fleet.
//!
//! The cluster-backend chaos tests inject faults into a *single
//! dispatch*; these tests kill and revive whole nodes **while a live
//! multi-tenant query stream is being served**, across many pump
//! rounds, and hold the fleet to the two promises that matter:
//!
//! 1. **Bit-identity** — every successfully served response equals the
//!    sequential single-query oracle, whatever nodes died mid-stream
//!    (replication + health-driven routing + failover must be
//!    semantically invisible).
//! 2. **Availability** — with R = 2 and one node down at a time, no
//!    request may fail: measured availability is 1.0, far above the
//!    0.99 floor the roadmap commits to.
//!
//! A third test pins determinism: two identical servers fed the same
//! submissions, kills and manual-clock advances produce identical
//! responses and identical hedge/failover accounting.

use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use fabp_core::aligner::{Engine, FabpAligner, Threshold};
use fabp_core::hits::Hit;
use fabp_serve::{FabpError, FabpServer, Response, ServeBackend, ServeConfig};
use fabp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 4;
const REPLICATION: usize = 2;

fn workload(seed: u64, queries: usize) -> (RnaSeq, Vec<ProteinSeq>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let proteins: Vec<ProteinSeq> = (0..queries).map(|_| random_protein(8, &mut rng)).collect();
    let mut bases = random_rna(8_000, &mut rng).into_inner();
    for (i, protein) in proteins.iter().enumerate() {
        let coding = coding_rna_for_paper_patterns(protein, &mut rng);
        let at = 300 + i * (7_000 / queries.max(1));
        bases.splice(at..at + coding.len(), coding.iter().copied());
    }
    (RnaSeq::from(bases), proteins)
}

fn oracle(protein: &ProteinSeq, reference: &RnaSeq) -> Vec<Hit> {
    FabpAligner::builder()
        .protein_query(protein)
        .threshold(Threshold::Fraction(1.0))
        .engine(Engine::Software { threads: 1 })
        .build()
        .expect("oracle builds")
        .search(reference)
        .hits
}

fn fleet_config() -> ServeConfig {
    ServeConfig {
        backend: ServeBackend::Fleet {
            nodes: NODES,
            replication: REPLICATION,
            fault_spec: None,
        },
        max_query_aa: 16,
        queue_capacity: 256,
        ..ServeConfig::default()
    }
}

/// Rolling single-node kills under a live stream: each fleet node dies
/// in turn (and is revived before the next kill), queries keep flowing
/// the whole time, and every answer stays bit-identical to the oracle
/// with 100 % availability.
#[test]
fn rolling_node_kills_under_live_traffic_stay_bit_identical() {
    let (reference, proteins) = workload(0xC4A05, 6);
    let registry = Registry::new();
    let mut server = FabpServer::with_manual_clock(reference.clone(), fleet_config(), &registry)
        .expect("fleet server builds");

    let mut responses: Vec<Response> = Vec::new();
    let mut submitted = 0usize;
    // Phase 0 is healthy; then each node is killed in turn, serves a
    // round of traffic degraded, and is revived before the next kill.
    for round in 0..=NODES {
        if round > 0 {
            server.revive_node(round - 1);
        }
        if round < NODES {
            server.kill_node(round);
            // The killed node drains immediately; earlier victims may
            // still be in probation, so "routable" can be lower still.
            assert!(server.routable_nodes().expect("fleet backend") < NODES);
        }
        for (i, protein) in proteins.iter().enumerate() {
            let tenant = format!("tenant-{}", i % 3);
            server.submit(&tenant, protein).expect("queue has room");
            submitted += 1;
        }
        server.advance_clock_us(1_000);
        responses.extend(server.run_to_completion());
    }

    assert_eq!(responses.len(), submitted, "every request is answered");
    let ok = responses.iter().filter(|r| r.result.is_ok()).count();
    let availability = ok as f64 / responses.len() as f64;
    assert!(
        availability >= 0.99,
        "availability {availability} under rolling kills (R = {REPLICATION})"
    );
    for response in &responses {
        let protein = &proteins[(response.id as usize) % proteins.len()];
        let expected = oracle(protein, &reference);
        assert_eq!(
            response.result.as_ref().expect("R=2 serves one dead node"),
            &expected,
            "request {} diverged from the oracle mid-chaos",
            response.id
        );
        assert!(!expected.is_empty(), "planted query must hit");
    }
    // Dead replicas forced shard failovers, and the counters saw them.
    let stats = server.stats();
    assert!(
        stats.failovers > 0,
        "kills must exercise failover: {stats:?}"
    );
    let text = registry.snapshot().to_prometheus();
    assert!(text.contains("fabp_fleet_failovers_total"), "{text}");
    assert!(
        text.contains("fabp_fleet_node_state_changes_total"),
        "{text}"
    );
}

/// Killing both replicas of a shard mid-stream still serves every
/// request (off-placement failover), and full fleet death surfaces as
/// typed dispatch errors, not wrong answers.
#[test]
fn double_kill_fails_over_and_total_death_is_typed() {
    let (reference, proteins) = workload(0xC4A06, 4);
    let registry = Registry::new();
    let mut server = FabpServer::with_manual_clock(reference.clone(), fleet_config(), &registry)
        .expect("fleet server builds");

    // Shard 0 lives on nodes (0, 1); kill both replicas.
    server.kill_node(0);
    server.kill_node(1);
    for protein in &proteins {
        server.submit("a", protein).expect("queue has room");
    }
    let responses = server.run_to_completion();
    for response in &responses {
        let protein = &proteins[(response.id as usize) % proteins.len()];
        assert_eq!(
            response.result.as_ref().expect("failover serves the shard"),
            &oracle(protein, &reference)
        );
    }
    assert!(server.stats().failovers > 0);

    // Now the whole fleet: with zero surviving capacity the brownout
    // admission control sheds everything queued with a typed error
    // before dispatch is even attempted.
    server.kill_node(2);
    server.kill_node(3);
    assert_eq!(server.routable_nodes(), Some(0));
    server
        .submit("a", &proteins[0])
        .expect("admission still open");
    let dead = server.run_to_completion();
    assert!(!dead.is_empty());
    assert!(
        dead.iter().all(|r| matches!(
            r.result,
            Err(FabpError::Brownout {
                routable_nodes: 0,
                ..
            }) | Err(FabpError::NodeDown { .. })
        )),
        "{dead:?}"
    );
}

/// The same chaos sequence on two identical manual-clock servers yields
/// identical responses and identical hedge/cancel/failover accounting —
/// the whole fleet path (placement, phi-accrual routing, hedging) is
/// deterministic under the manual clock.
#[test]
fn chaos_sequence_is_deterministic_across_identical_servers() {
    let (reference, proteins) = workload(0xC4A07, 5);
    let run = || {
        let registry = Registry::new();
        let mut server =
            FabpServer::with_manual_clock(reference.clone(), fleet_config(), &registry)
                .expect("fleet server builds");
        let mut log: Vec<(u64, String, Option<Vec<Hit>>, u64)> = Vec::new();
        for round in 0..3usize {
            server.kill_node(round);
            for (i, protein) in proteins.iter().enumerate() {
                let tenant = format!("t{}", i % 2);
                server.submit(&tenant, protein).expect("queue has room");
            }
            server.advance_clock_us(500);
            for response in server.run_to_completion() {
                log.push((
                    response.id,
                    response.tenant.clone(),
                    response.result.ok(),
                    response.latency_us,
                ));
            }
            server.revive_node(round);
        }
        let stats = server.stats();
        (log, stats.hedges, stats.cancels, stats.failovers)
    };
    assert_eq!(run(), run());
}
