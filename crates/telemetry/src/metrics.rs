//! Metric handle types: lock-free atomics behind `Option<Arc<…>>`.
//!
//! A handle obtained from a disabled registry holds `None`; every
//! recording method then reduces to one branch on a local `Option`,
//! keeping the disabled path well under the 5 ns budget.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i` (1 ≤ i ≤ 64) holds values whose bit length is `i`, i.e. the
/// range `[2^(i−1), 2^i − 1]`. Bucket 64 therefore ends at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter not connected to any registry; all operations are
    /// no-ops. Equivalent to a handle from `Registry::disabled()`.
    pub fn disabled() -> Counter {
        Counter { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Counter {
        Counter { cell: Some(cell) }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// True when the handle is connected to a registry.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// Signed gauge: a value that can go up and down (queue depths,
/// imbalance, occupancy).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Disconnected gauge; all operations are no-ops.
    pub fn disabled() -> Gauge {
        Gauge { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicI64>) -> Gauge {
        Gauge { cell: Some(cell) }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raises the gauge to `v` if `v` is larger (monotone max).
    #[inline]
    pub fn max(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Monotonically increasing `f64` counter (seconds of modelled time,
/// fractional bytes…). Stored as the bit pattern in an `AtomicU64`,
/// updated with a CAS loop.
#[derive(Debug, Clone, Default)]
pub struct FloatCounter {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl FloatCounter {
    /// Disconnected float counter; all operations are no-ops.
    pub fn disabled() -> FloatCounter {
        FloatCounter { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> FloatCounter {
        FloatCounter { cell: Some(cell) }
    }

    /// Adds `v` (negative or NaN values are ignored: the counter is
    /// monotone by contract).
    #[inline]
    pub fn add(&self, v: f64) {
        // Rejects negatives, zero, and NaN in one comparison.
        if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        if let Some(cell) = &self.cell {
            let mut current = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + v).to_bits();
                match cell.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(observed) => current = observed,
                }
            }
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Shared histogram storage: 65 log2 buckets + sum + count, plus one
/// exemplar slot per bucket (most recent traced observation).
#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
    /// Trace id of the latest traced observation per bucket (0 = none).
    pub(crate) exemplar_trace: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Observed value of that exemplar. Paired with `exemplar_trace`
    /// by two relaxed stores: a concurrent overwrite can mix the pair,
    /// which is acceptable for exemplars (both halves are always *some*
    /// recent traced observation of the same bucket).
    pub(crate) exemplar_value: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCell {
    pub(crate) fn new() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplar_trace: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_value: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the log2 bucket holding `v`.
///
/// `0 → 0`; otherwise the bit length of `v` (`1 → 1`, `2..=3 → 2`,
/// `4..=7 → 3`, …, `u64::MAX → 64`).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`, as used for Prometheus `le`
/// labels. Bucket 0 → 0; bucket i → `2^i − 1`; bucket 64 → `u64::MAX`.
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Log2-bucketed histogram of `u64` observations.
///
/// 65 buckets cover the full `u64` range exactly: bucket 0 is the
/// singleton `{0}`, bucket `i` covers `[2^(i−1), 2^i − 1]`.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Disconnected histogram; all operations are no-ops.
    pub fn disabled() -> Histogram {
        Histogram { cell: None }
    }

    pub(crate) fn live(cell: Arc<HistogramCell>) -> Histogram {
        Histogram { cell: Some(cell) }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one observation and, when `trace_id != 0`, attaches it
    /// as the bucket's exemplar so exports can link the latency bucket
    /// back to a recent trace. With `trace_id == 0` this is exactly
    /// [`Histogram::observe`].
    #[inline]
    pub fn observe_traced(&self, v: u64, trace_id: u64) {
        if let Some(cell) = &self.cell {
            let bucket = bucket_index(v);
            cell.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            if trace_id != 0 {
                cell.exemplar_value[bucket].store(v, Ordering::Relaxed);
                cell.exemplar_trace[bucket].store(trace_id, Ordering::Relaxed);
            }
        }
    }

    /// Number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of observations (wrapping; 0 when disabled).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(u64::MAX / 2), 63);
        // Upper bounds partition the range.
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(63), (1u64 << 63) - 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for i in 1..=64usize {
            let lo = if i == 1 {
                1
            } else {
                bucket_upper_bound(i - 1) + 1
            };
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(
                bucket_index(bucket_upper_bound(i)),
                i,
                "upper edge of bucket {i}"
            );
        }
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = Gauge::disabled();
        g.set(5);
        g.add(-3);
        assert_eq!(g.get(), 0);
        let f = FloatCounter::disabled();
        f.add(1.5);
        assert_eq!(f.get(), 0.0);
        let h = Histogram::disabled();
        h.observe(42);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn float_counter_accumulates() {
        let f = FloatCounter::live(Arc::new(AtomicU64::new(0)));
        f.add(0.25);
        f.add(0.5);
        f.add(-1.0); // ignored
        f.add(f64::NAN); // ignored
        assert!((f.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gauge_max_is_monotone() {
        let g = Gauge::live(Arc::new(AtomicI64::new(0)));
        g.max(7);
        g.max(3);
        assert_eq!(g.get(), 7);
        g.max(11);
        assert_eq!(g.get(), 11);
    }
}
