//! Request-scoped tracing: `TraceContext` propagation and the lock-free
//! flight recorder.
//!
//! A [`TraceContext`] is minted once per request (SplitMix64-seeded, so
//! ids are deterministic given the server seed and request id) and
//! carried through every layer that touches the request: admission
//! queue, batcher, cache, cluster scatter/gather, engine, resilience
//! retries. Each layer records [`TraceEvent`]s into the registry's
//! [`FlightRecorder`] — a bounded, overwrite-oldest ring whose hot path
//! is zero-alloc and lock-free (per-slot seqlock over plain atomics).
//!
//! The disabled path (`TraceContext::none()` or a disabled registry) is
//! a single predictable branch per record, mirroring the metric
//! handles' `Option<Arc<…>>` pattern — measured ≤ 2 ns/op in
//! `bench_telemetry`.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of events the flight recorder retains. Older events are
/// overwritten (and counted as dropped) once the ring wraps.
pub const FLIGHT_RECORDER_CAPACITY: usize = 4096;

/// Maximum recorded event-name length in bytes; longer names are
/// truncated at a UTF-8 boundary. Event names are short stage labels
/// (`queue_wait`, `shard`, `resilience_retry`), so 24 bytes is ample.
pub const TRACE_NAME_MAX: usize = 24;

/// Event flag: the request was served from a cache.
pub const FLAG_CACHE_HIT: u32 = 1 << 0;
/// Event flag: the lookup missed and the value was built.
pub const FLAG_CACHE_MISS: u32 = 1 << 1;
/// Event flag: the event is a detection/recovery retry.
pub const FLAG_RETRY: u32 = 1 << 2;
/// Event flag: the request was shed (deadline exceeded in queue).
pub const FLAG_SHED: u32 = 1 << 3;
/// Event flag: the request finished with an error.
pub const FLAG_ERROR: u32 = 1 << 4;
/// Event flag: fault recovery ran while serving this request.
pub const FLAG_RECOVERED: u32 = 1 << 5;
/// Event flag: the span is a hedged duplicate of a primary read.
pub const FLAG_HEDGE: u32 = 1 << 6;
/// Event flag: the read lost the hedge race and was cancelled.
pub const FLAG_CANCELLED: u32 = 1 << 7;

/// SplitMix64: the id-mixing function behind trace/span id minting.
/// Deterministic, dependency-free, and well distributed — the same
/// generator the workspace's compat `rand` shim seeds from.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A request's trace identity: one `trace_id` shared by every span the
/// request produces, plus this hop's `span_id` and its parent.
///
/// `trace_id == 0` means tracing is disabled for this request; every
/// recording helper then reduces to one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Trace id shared by all spans of one request (0 = disabled).
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 for the root span).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// The disabled context: nothing downstream records.
    pub const fn none() -> TraceContext {
        TraceContext {
            trace_id: 0,
            span_id: 0,
            parent_span_id: 0,
        }
    }

    /// True when spans recorded under this context are retained.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.trace_id != 0
    }

    /// Mints the root context for a request, deterministically from
    /// `(seed, request_id)`. The same pair always yields the same ids,
    /// so traces are reproducible under the injectable manual clock.
    pub fn mint(seed: u64, request_id: u64) -> TraceContext {
        let trace_id = splitmix64(seed ^ splitmix64(request_id)) | 1; // never 0
        TraceContext {
            trace_id,
            span_id: splitmix64(trace_id),
            parent_span_id: 0,
        }
    }

    /// Derives a child context. `slot` distinguishes siblings (stage
    /// index, shard index, retry ordinal); the derivation is pure, so
    /// child ids are as deterministic as the root.
    pub fn child(&self, slot: u64) -> TraceContext {
        if !self.is_enabled() {
            return TraceContext::none();
        }
        TraceContext {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ splitmix64(slot.wrapping_add(1))),
            parent_span_id: self.span_id,
        }
    }

    /// The trace id as the fixed-width hex string used by exemplar
    /// labels and trace dumps.
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

/// One event on the flight-recorder hot path. `name` must be a
/// `&'static str` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Trace identity of the span being recorded.
    pub ctx: TraceContext,
    /// Stage name (truncated to [`TRACE_NAME_MAX`] bytes on record).
    pub name: &'static str,
    /// Start time, microseconds on the caller's clock.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Free-form argument: batch id, shard/node index, retry ordinal.
    pub arg: u64,
    /// Bit flags (`FLAG_*`).
    pub flags: u32,
    /// Display track for the Chrome-trace dump (0 = request track;
    /// scatter spans use `10 + node` so parallel shards don't stack).
    pub track: u32,
}

impl TraceEvent {
    /// A new event on track 0 with no flags or argument.
    pub fn new(ctx: TraceContext, name: &'static str, start_us: f64, dur_us: f64) -> TraceEvent {
        TraceEvent {
            ctx,
            name,
            start_us,
            dur_us,
            arg: 0,
            flags: 0,
            track: 0,
        }
    }

    /// Sets the argument word.
    pub fn with_arg(mut self, arg: u64) -> TraceEvent {
        self.arg = arg;
        self
    }

    /// Ors in flags.
    pub fn with_flags(mut self, flags: u32) -> TraceEvent {
        self.flags |= flags;
        self
    }

    /// Sets the display track.
    pub fn with_track(mut self, track: u32) -> TraceEvent {
        self.track = track;
        self
    }
}

/// A decoded event read back out of the recorder (names are owned
/// strings because the ring stores bytes, not pointers).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Trace id of the owning request.
    pub trace_id: u64,
    /// Span id.
    pub span_id: u64,
    /// Parent span id (0 for roots).
    pub parent_span_id: u64,
    /// Stage name.
    pub name: String,
    /// Start time, microseconds.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Argument word.
    pub arg: u64,
    /// Bit flags (`FLAG_*`).
    pub flags: u32,
    /// Display track.
    pub track: u32,
}

const NAME_WORDS: usize = TRACE_NAME_MAX / 8;

/// One ring slot. Every field is a plain atomic: concurrent writers and
/// readers race benignly (no locks, no UB); the per-slot sequence word
/// lets readers discard torn slots. A slot is valid for generation `g`
/// only when `seq == 2 g + 2`.
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_span_id: AtomicU64,
    start_bits: AtomicU64,
    dur_bits: AtomicU64,
    arg: AtomicU64,
    flags: AtomicU32,
    track: AtomicU32,
    name_len: AtomicU32,
    name: [AtomicU64; NAME_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_span_id: AtomicU64::new(0),
            start_bits: AtomicU64::new(0),
            dur_bits: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            flags: AtomicU32::new(0),
            track: AtomicU32::new(0),
            name_len: AtomicU32::new(0),
            name: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

pub(crate) struct FlightInner {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl FlightInner {
    pub(crate) fn new(capacity: usize) -> FlightInner {
        FlightInner {
            slots: (0..capacity.max(1)).map(|_| Slot::empty()).collect(),
            cursor: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for FlightInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightInner")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

/// Handle to a registry's flight recorder. Like the metric handles it
/// is an `Option<Arc<…>>`: a handle from a disabled registry records
/// nothing, at the cost of one branch per call.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    pub(crate) inner: Option<Arc<FlightInner>>,
}

impl FlightRecorder {
    /// A recorder not connected to any registry; `record` is a no-op.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    pub(crate) fn live(inner: Arc<FlightInner>) -> FlightRecorder {
        FlightRecorder { inner: Some(inner) }
    }

    /// True when events are retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. Zero-alloc, lock-free: claims a slot with one
    /// `fetch_add`, then writes through plain atomics under a per-slot
    /// sequence word. Disabled handles and disabled contexts cost one
    /// branch. Overwrites the oldest event once the ring is full.
    #[inline]
    pub fn record(&self, event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        if !event.ctx.is_enabled() {
            return;
        }
        let gen = inner.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &inner.slots[(gen % inner.slots.len() as u64) as usize];
        slot.seq.store(2 * gen + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.trace_id.store(event.ctx.trace_id, Ordering::Relaxed);
        slot.span_id.store(event.ctx.span_id, Ordering::Relaxed);
        slot.parent_span_id
            .store(event.ctx.parent_span_id, Ordering::Relaxed);
        slot.start_bits
            .store(event.start_us.to_bits(), Ordering::Relaxed);
        slot.dur_bits
            .store(event.dur_us.to_bits(), Ordering::Relaxed);
        slot.arg.store(event.arg, Ordering::Relaxed);
        slot.flags.store(event.flags, Ordering::Relaxed);
        slot.track.store(event.track, Ordering::Relaxed);
        let bytes = truncate_utf8(event.name, TRACE_NAME_MAX);
        slot.name_len.store(bytes.len() as u32, Ordering::Relaxed);
        for (w, chunk) in slot.name.iter().zip(bytes.chunks(8)) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            w.store(u64::from_le_bytes(word), Ordering::Relaxed);
        }
        fence(Ordering::Release);
        slot.seq.store(2 * gen + 2, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.cursor.load(Ordering::Relaxed))
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.cursor
                .load(Ordering::Relaxed)
                .saturating_sub(i.slots.len() as u64)
        })
    }

    /// Snapshot of retained events, oldest first. Slots mid-write (or
    /// torn by a concurrent wrap) are skipped rather than misread.
    pub fn events(&self) -> Vec<FlightEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let cap = inner.slots.len() as u64;
        let end = inner.cursor.load(Ordering::Acquire);
        let start = end.saturating_sub(cap);
        let mut out = Vec::with_capacity((end - start) as usize);
        for gen in start..end {
            let slot = &inner.slots[(gen % cap) as usize];
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 != 2 * gen + 2 {
                continue; // mid-write or already overwritten
            }
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let span_id = slot.span_id.load(Ordering::Relaxed);
            let parent_span_id = slot.parent_span_id.load(Ordering::Relaxed);
            let start_us = f64::from_bits(slot.start_bits.load(Ordering::Relaxed));
            let dur_us = f64::from_bits(slot.dur_bits.load(Ordering::Relaxed));
            let arg = slot.arg.load(Ordering::Relaxed);
            let flags = slot.flags.load(Ordering::Relaxed);
            let track = slot.track.load(Ordering::Relaxed);
            let name_len = (slot.name_len.load(Ordering::Relaxed) as usize).min(TRACE_NAME_MAX);
            let mut name_bytes = [0u8; TRACE_NAME_MAX];
            for (i, w) in slot.name.iter().enumerate() {
                name_bytes[i * 8..i * 8 + 8]
                    .copy_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue; // torn by a concurrent writer
            }
            let name = match std::str::from_utf8(&name_bytes[..name_len]) {
                Ok(s) => s.to_string(),
                Err(_) => "?".to_string(),
            };
            out.push(FlightEvent {
                trace_id,
                span_id,
                parent_span_id,
                name,
                start_us,
                dur_us,
                arg,
                flags,
                track,
            });
        }
        out
    }

    /// Retained events belonging to one trace, oldest first.
    pub fn events_for(&self, trace_id: u64) -> Vec<FlightEvent> {
        let mut events = self.events();
        events.retain(|e| e.trace_id == trace_id);
        events
    }
}

/// Truncates `s` to at most `max` bytes on a UTF-8 boundary.
fn truncate_utf8(s: &str, max: usize) -> &[u8] {
    if s.len() <= max {
        return s.as_bytes();
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s.as_bytes()[..end]
}

fn fmt_trace_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape_name(s: &str) -> String {
    s.chars()
        .filter(|c| *c != '"' && *c != '\\' && (*c as u32) >= 0x20)
        .collect()
}

/// Renders a set of flight-recorder events as a Chrome trace-event
/// file (same envelope as [`crate::Snapshot::to_chrome_trace`]). Events
/// are grouped per trace: `pid` is a small per-trace ordinal, `tid` the
/// producer-chosen track, and each event's args carry the full trace
/// identity so parent/child links survive the export.
pub fn chrome_trace_for_events(events: &[FlightEvent]) -> String {
    use std::fmt::Write as _;
    let mut pids: Vec<u64> = Vec::new();
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for e in events {
        let pid = match pids.iter().position(|&t| t == e.trace_id) {
            Some(i) => i + 1,
            None => {
                pids.push(e.trace_id);
                pids.len()
            }
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"fabp-trace\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{\"trace_id\": \"{:016x}\", \"span_id\": \"{:016x}\", \"parent_span_id\": \"{:016x}\", \"arg\": {}, \"flags\": {}}}}}",
            escape_name(&e.name),
            fmt_trace_f64(e.start_us),
            fmt_trace_f64(e.dur_us),
            pid,
            e.track,
            e.trace_id,
            e.span_id,
            e.parent_span_id,
            e.arg,
            e.flags
        );
    }
    if !first {
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"traces\": \"{}\", \"events\": \"{}\"}}}}",
        pids.len(),
        events.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn minting_is_deterministic_and_nonzero() {
        let a = TraceContext::mint(0xFAB, 1);
        let b = TraceContext::mint(0xFAB, 1);
        let c = TraceContext::mint(0xFAB, 2);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, c.trace_id);
        assert!(a.is_enabled());
        assert_eq!(a.parent_span_id, 0);
        assert_eq!(a.trace_id_hex().len(), 16);
    }

    #[test]
    fn children_share_the_trace_and_chain_parents() {
        let root = TraceContext::mint(7, 42);
        let shard0 = root.child(0);
        let shard1 = root.child(1);
        assert_eq!(shard0.trace_id, root.trace_id);
        assert_eq!(shard0.parent_span_id, root.span_id);
        assert_ne!(shard0.span_id, shard1.span_id);
        let retry = shard0.child(99);
        assert_eq!(retry.parent_span_id, shard0.span_id);
        // Disabled contexts stay disabled.
        assert!(!TraceContext::none().child(3).is_enabled());
    }

    #[test]
    fn recorder_round_trips_events() {
        let r = Registry::new();
        let flight = r.flight_recorder();
        assert!(flight.is_enabled());
        let ctx = TraceContext::mint(1, 1);
        flight.record(
            TraceEvent::new(ctx, "queue_wait", 10.0, 5.5)
                .with_arg(3)
                .with_flags(FLAG_SHED)
                .with_track(2),
        );
        let events = flight.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "queue_wait");
        assert_eq!(e.trace_id, ctx.trace_id);
        assert_eq!(e.span_id, ctx.span_id);
        assert_eq!((e.start_us, e.dur_us), (10.0, 5.5));
        assert_eq!((e.arg, e.flags, e.track), (3, FLAG_SHED, 2));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let r = Registry::new();
        let flight = r.flight_recorder();
        let ctx = TraceContext::mint(2, 2);
        let n = FLIGHT_RECORDER_CAPACITY as u64 + 10;
        for i in 0..n {
            flight.record(TraceEvent::new(ctx, "e", i as f64, 1.0));
        }
        assert_eq!(flight.recorded(), n);
        assert_eq!(flight.dropped(), 10);
        let events = flight.events();
        assert_eq!(events.len(), FLIGHT_RECORDER_CAPACITY);
        // Oldest retained event is generation 10.
        assert_eq!(events[0].start_us, 10.0);
        assert_eq!(events.last().unwrap().start_us, (n - 1) as f64);
    }

    #[test]
    fn disabled_paths_record_nothing() {
        let disabled = FlightRecorder::disabled();
        disabled.record(TraceEvent::new(TraceContext::mint(3, 3), "x", 0.0, 0.0));
        assert!(disabled.events().is_empty());
        assert_eq!(disabled.recorded(), 0);
        // Enabled recorder, disabled context: also nothing.
        let r = Registry::new();
        let flight = r.flight_recorder();
        flight.record(TraceEvent::new(TraceContext::none(), "x", 0.0, 0.0));
        assert!(flight.events().is_empty());
        // Disabled registry hands out a disabled recorder.
        assert!(!Registry::disabled().flight_recorder().is_enabled());
    }

    #[test]
    fn long_names_truncate_on_utf8_boundary() {
        let r = Registry::new();
        let flight = r.flight_recorder();
        let ctx = TraceContext::mint(4, 4);
        flight.record(TraceEvent::new(
            ctx,
            "a_very_long_stage_name_that_overflows_the_slot",
            0.0,
            1.0,
        ));
        let events = flight.events();
        assert_eq!(events[0].name.len(), TRACE_NAME_MAX);
        assert!("a_very_long_stage_name_that_overflows_the_slot".starts_with(&events[0].name));
    }

    #[test]
    fn concurrent_recording_loses_no_well_formed_events() {
        let r = Registry::new();
        let flight = r.flight_recorder();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let flight = flight.clone();
                scope.spawn(move || {
                    let ctx = TraceContext::mint(5, t);
                    for i in 0..500u64 {
                        flight.record(TraceEvent::new(ctx, "work", i as f64, 1.0).with_arg(t));
                    }
                });
            }
        });
        assert_eq!(flight.recorded(), 2_000);
        let events = flight.events();
        assert_eq!(events.len(), 2_000, "no wrap, no writer in flight");
        for t in 0..4u64 {
            assert_eq!(events.iter().filter(|e| e.arg == t).count(), 500);
        }
    }

    #[test]
    fn chrome_dump_groups_by_trace_and_balances() {
        let r = Registry::new();
        let flight = r.flight_recorder();
        let a = TraceContext::mint(6, 1);
        let b = TraceContext::mint(6, 2);
        flight.record(TraceEvent::new(a, "request", 0.0, 10.0));
        flight.record(TraceEvent::new(a.child(0), "shard", 2.0, 3.0).with_track(10));
        flight.record(TraceEvent::new(b, "request", 1.0, 4.0));
        let dump = chrome_trace_for_events(&flight.events());
        assert_eq!(dump.matches("\"ph\": \"X\"").count(), 3);
        assert_eq!(dump.matches('{').count(), dump.matches('}').count());
        assert!(dump.contains(&format!("\"trace_id\": \"{:016x}\"", a.trace_id)));
        assert!(dump.contains("\"traces\": \"2\""));
        // The shard event keeps its parent link.
        assert!(dump.contains(&format!("\"parent_span_id\": \"{:016x}\"", a.span_id)));
    }
}
