//! Lock-free metrics and span tracing for the FabP reproduction.
//!
//! The paper's evaluation (§IV) reports throughput, stall fractions and
//! end-to-end stage timings; this crate is the plumbing that lets every
//! layer of the reproduction — host model, cycle-level engine, AXI
//! channels, software baselines — publish those numbers through one
//! uniform, zero-external-dependency API.
//!
//! # Design
//!
//! * **Handles are cheap and detachable.** A [`Counter`], [`Gauge`],
//!   [`FloatCounter`] or [`Histogram`] is an `Option<Arc<…>>`; a handle
//!   from [`Registry::disabled()`] holds `None`, so `inc()` on it is a
//!   single predictable branch (sub-nanosecond — see the
//!   `telemetry_overhead` bench).
//! * **One global registry, plus scoped ones.** Library code records
//!   against [`Registry::global()`] by default; tests and benches build
//!   private [`Registry::new()`] instances, or pass
//!   [`Registry::disabled()`] to measure the no-op path.
//! * **Spans are RAII.** [`Span::enter`] pushes onto a thread-local
//!   stack and records a wall-time interval into a bounded ring buffer
//!   on drop. Modelled (non-wall-clock) pipelines use
//!   [`Registry::record_span_tree`] to lay synthetic parent/child spans
//!   whose durations sum exactly.
//! * **Export is snapshot-based.** [`Registry::snapshot`] captures a
//!   consistent view; [`Snapshot::to_prometheus`],
//!   [`Snapshot::to_json`] and [`Snapshot::to_chrome_trace`] render it.
//!
//! ```
//! use fabp_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("fabp_hits_total", "Hits emitted");
//! hits.add(3);
//! let text = registry.snapshot().to_prometheus();
//! assert!(text.contains("fabp_hits_total 3"));
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod metrics;
mod registry;
mod slo;
mod snapshot;
mod span;
mod trace;

pub use metrics::{Counter, FloatCounter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{labels, Labels, Registry, LABELS_DROPPED_METRIC, MAX_SERIES_PER_METRIC};
pub use slo::{BurnRate, SloMonitor, SloPolicy, SloReport, TenantSlo};
pub use snapshot::{
    Exemplar, HistogramSnapshot, MetricKind, MetricSnapshot, MetricValue, Snapshot, SpanSnapshot,
};
pub use span::Span;
pub use trace::{
    chrome_trace_for_events, splitmix64, FlightEvent, FlightRecorder, TraceContext, TraceEvent,
    FLAG_CACHE_HIT, FLAG_CACHE_MISS, FLAG_CANCELLED, FLAG_ERROR, FLAG_HEDGE, FLAG_RECOVERED,
    FLAG_RETRY, FLAG_SHED, FLIGHT_RECORDER_CAPACITY, TRACE_NAME_MAX,
};

/// Convenience: the global registry (enabled by default).
pub fn global() -> &'static Registry {
    Registry::global()
}
