//! Snapshot capture and the three exporters: Prometheus text
//! exposition, stable JSON, and Chrome trace-event JSON.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::metrics::{bucket_upper_bound, HISTOGRAM_BUCKETS};
use crate::registry::{Labels, MetricCell};

/// Kind tag for an exported metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone integer counter.
    Counter,
    /// Signed gauge.
    Gauge,
    /// Monotone float counter (exported as a counter).
    FloatCounter,
    /// Log2-bucketed histogram.
    Histogram,
}

impl MetricKind {
    fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter | MetricKind::FloatCounter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    fn json_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::FloatCounter => "float_counter",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One captured exemplar: a recent traced observation in a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Bucket index the exemplar belongs to.
    pub bucket: usize,
    /// Trace id of the observation (non-zero).
    pub trace_id: u64,
    /// The observed value.
    pub value: u64,
}

/// Captured histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (65 log2 buckets).
    pub buckets: Vec<u64>,
    /// Sum of observed values (wrapping).
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Exemplars for buckets that have one (empty without tracing, so
    /// untraced exports are byte-identical to their pre-exemplar form).
    pub exemplars: Vec<Exemplar>,
}

/// Captured value of one metric series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Float counter value.
    FloatCounter(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    pub(crate) fn capture(cell: &MetricCell) -> MetricValue {
        match cell {
            MetricCell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
            MetricCell::Gauge(c) => MetricValue::Gauge(c.load(Ordering::Relaxed)),
            MetricCell::FloatCounter(c) => {
                MetricValue::FloatCounter(f64::from_bits(c.load(Ordering::Relaxed)))
            }
            MetricCell::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                sum: h.sum.load(Ordering::Relaxed),
                count: h.count.load(Ordering::Relaxed),
                exemplars: h
                    .exemplar_trace
                    .iter()
                    .enumerate()
                    .filter_map(|(bucket, t)| {
                        let trace_id = t.load(Ordering::Relaxed);
                        (trace_id != 0).then(|| Exemplar {
                            bucket,
                            trace_id,
                            value: h.exemplar_value[bucket].load(Ordering::Relaxed),
                        })
                    })
                    .collect(),
            }),
        }
    }

    /// The kind tag for this value.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::FloatCounter(_) => MetricKind::FloatCounter,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One exported metric series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`fabp_*` by convention).
    pub name: String,
    /// Ordered label pairs.
    pub labels: Labels,
    /// Help text.
    pub help: String,
    /// Captured value.
    pub value: MetricValue,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Unique id within the registry.
    pub id: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Thread id (synthetic ≥ 1000 for modelled trees).
    pub tid: u64,
    /// Start, microseconds since registry creation.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Nesting depth (0 = root).
    pub depth: u32,
}

/// A consistent capture of a registry's metrics and spans.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All registered series, sorted by (name, labels).
    pub metrics: Vec<MetricSnapshot>,
    /// Retained spans, oldest first.
    pub spans: Vec<SpanSnapshot>,
    /// Spans evicted from the ring buffer.
    pub dropped_spans: u64,
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4). Histograms become cumulative
    /// `_bucket{le=…}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for m in &self.metrics {
            if last_name != Some(m.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(
                    out,
                    "# TYPE {} {}",
                    m.name,
                    m.value.kind().prometheus_type()
                );
                last_name = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, None), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, None), v);
                }
                MetricValue::FloatCounter(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_block(&m.labels, None),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &b) in h.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
                        cumulative += b;
                        // Skip interior empty buckets to keep output
                        // compact, but always emit the first, any
                        // occupied, and the +Inf bucket.
                        if b == 0 && i != 0 && i != HISTOGRAM_BUCKETS - 1 {
                            continue;
                        }
                        let le = if i >= 64 {
                            "+Inf".to_string()
                        } else {
                            bucket_upper_bound(i).to_string()
                        };
                        // OpenMetrics-style exemplar, appended only when
                        // a traced observation landed in this bucket —
                        // untraced output stays byte-identical.
                        let exemplar = h
                            .exemplars
                            .iter()
                            .find(|e| e.bucket == i)
                            .map(|e| {
                                format!(
                                    " # {{trace_id=\"{:016x}\"}} {}",
                                    e.trace_id,
                                    fmt_f64(e.value as f64)
                                )
                            })
                            .unwrap_or_default();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}{}",
                            m.name,
                            label_block(&m.labels, Some(("le", &le))),
                            cumulative,
                            exemplar
                        );
                    }
                    // The loop above always emits bucket 64 (the skip
                    // guard exempts the last index), so `+Inf` is
                    // present exactly once even with no observation
                    // there — no synthesised duplicate line.
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        label_block(&m.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        label_block(&m.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as stable JSON: metrics sorted by
    /// (name, labels), spans in recording order. The layout is part of
    /// the crate's public contract (golden-tested).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": \"{}\", ", escape(&m.name));
            let _ = write!(out, "\"kind\": \"{}\", ", m.value.kind().json_name());
            out.push_str("\"labels\": {");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
            }
            out.push_str("}, ");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"value\": {v}");
                }
                MetricValue::FloatCounter(v) => {
                    let _ = write!(out, "\"value\": {}", fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"count\": {}, \"sum\": {}, \"buckets\": [",
                        h.count, h.sum
                    );
                    let mut first = true;
                    for (i, &b) in h.buckets.iter().enumerate() {
                        if b == 0 {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        let le = if i >= 64 {
                            "\"+Inf\"".to_string()
                        } else {
                            format!("\"{}\"", bucket_upper_bound(i))
                        };
                        let exemplar = h
                            .exemplars
                            .iter()
                            .find(|e| e.bucket == i)
                            .map(|e| {
                                format!(
                                    ", \"exemplar\": {{\"trace_id\": \"{:016x}\", \"value\": {}}}",
                                    e.trace_id, e.value
                                )
                            })
                            .unwrap_or_default();
                        let _ = write!(out, "{{\"le\": {le}, \"count\": {b}{exemplar}}}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"id\": {}, \"parent\": {}, \"name\": \"{}\", \"tid\": {}, \"start_us\": {}, \"dur_us\": {}, \"depth\": {}}}",
                s.id,
                s.parent,
                escape(&s.name),
                s.tid,
                fmt_f64(s.start_us),
                fmt_f64(s.dur_us),
                s.depth
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"dropped_spans\": {}\n}}\n",
            self.dropped_spans
        );
        out
    }

    /// Renders retained spans as a Chrome trace-event file
    /// (`chrome://tracing` / Perfetto "JSON Array Format" wrapped in an
    /// object). Each span is a complete (`"ph": "X"`) event; metrics
    /// are attached as process metadata.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"fabp\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"id\": {}, \"parent\": {}, \"depth\": {}}}}}",
                escape(&s.name),
                fmt_f64(s.start_us),
                fmt_f64(s.dur_us),
                s.tid,
                s.id,
                s.parent,
                s.depth
            );
        }
        if !first {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"dropped_spans\": \"{}\", \"metric_series\": \"{}\"}}}}",
            self.dropped_spans,
            self.metrics.len()
        );
        out
    }

    /// Finds a metric series by name and exact labels.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Sum of all counter series with `name` (any labels).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::labels;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("fabp_hits_total", "Hits emitted").add(42);
        r.counter_with(
            "fabp_axi_bytes_read_total",
            "Bytes fetched per channel",
            labels(&[("channel", "0")]),
        )
        .add(4096);
        r.gauge("fabp_queue_depth", "Worker queue depth").set(-2);
        r.float_counter("fabp_host_stage_seconds", "Modelled stage seconds")
            .add(0.5);
        let h = r.histogram("fabp_occupancy", "Pipeline occupancy");
        h.observe(0);
        h.observe(1);
        h.observe(5);
        h.observe(u64::MAX);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# HELP fabp_hits_total Hits emitted"));
        assert!(text.contains("# TYPE fabp_hits_total counter"));
        assert!(text.contains("fabp_hits_total 42"));
        assert!(text.contains("fabp_axi_bytes_read_total{channel=\"0\"} 4096"));
        assert!(text.contains("# TYPE fabp_queue_depth gauge"));
        assert!(text.contains("fabp_queue_depth -2"));
        assert!(text.contains("fabp_host_stage_seconds 0.5"));
        assert!(text.contains("# TYPE fabp_occupancy histogram"));
        assert!(text.contains("fabp_occupancy_bucket{le=\"0\"} 1"));
        assert!(text.contains("fabp_occupancy_bucket{le=\"1\"} 2"));
        assert!(text.contains("fabp_occupancy_bucket{le=\"7\"} 3"));
        assert!(text.contains("fabp_occupancy_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("fabp_occupancy_count 4"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("fabp_occupancy_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative violated: {line}");
            last = v;
        }
    }

    #[test]
    fn json_is_stable_and_parsable_shape() {
        let a = sample_registry().snapshot().to_json();
        let b = sample_registry().snapshot().to_json();
        assert_eq!(a, b, "JSON export must be deterministic");
        assert!(a.contains("\"name\": \"fabp_hits_total\""));
        assert!(a.contains("\"kind\": \"histogram\""));
        assert!(a.contains("\"le\": \"+Inf\", \"count\": 1"));
        assert!(a.contains("\"dropped_spans\": 0"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn chrome_trace_shape() {
        let r = Registry::new();
        r.record_span_tree("end_to_end", &[("encode", 5.0), ("kernel", 10.0)]);
        let trace = r.snapshot().to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\": ["));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"name\": \"end_to_end\""));
        assert!(trace.contains("\"name\": \"kernel\""));
        assert!(trace.contains("\"displayTimeUnit\": \"ms\""));
        assert_eq!(trace.matches("\"ph\": \"X\"").count(), 3);
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }

    #[test]
    fn find_and_counter_total() {
        let r = Registry::new();
        r.counter_with("t_total", "t", labels(&[("ch", "0")]))
            .add(2);
        r.counter_with("t_total", "t", labels(&[("ch", "1")]))
            .add(3);
        let snap = r.snapshot();
        assert!(snap.find("t_total", &[("ch", "0")]).is_some());
        assert!(snap.find("t_total", &[("ch", "9")]).is_none());
        assert_eq!(snap.counter_total("t_total"), 5);
    }
}
