//! The metric registry: named, labelled metric registration with
//! deduplication, plus the span ring buffer.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{Counter, FloatCounter, Gauge, Histogram, HistogramCell};
use crate::snapshot::{MetricValue, Snapshot, SpanSnapshot};
use crate::span::{RawSpan, Span};
use crate::trace::{FlightInner, FlightRecorder, FLIGHT_RECORDER_CAPACITY};

/// Maximum number of retained spans; older spans are dropped (and
/// counted) once the ring is full.
pub(crate) const SPAN_RING_CAPACITY: usize = 65_536;

/// Maximum distinct label sets per metric name. Registration past the
/// cap lands on an `other` overflow series (all label values rewritten
/// to `other`) and bumps `telemetry_labels_dropped_total`, so an
/// unbounded label source (e.g. per-tenant labels in `fabp-serve`)
/// cannot grow the registry without limit.
pub const MAX_SERIES_PER_METRIC: usize = 32;

/// Counter bumped each time a label set is rewritten to `other`.
pub const LABELS_DROPPED_METRIC: &str = "telemetry_labels_dropped_total";

/// Metric labels: ordered `key=value` pairs (ordering makes series
/// identity and export deterministic).
pub type Labels = Vec<(String, String)>;

/// A series key: metric name + ordered labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SeriesKey {
    pub(crate) name: String,
    pub(crate) labels: Labels,
}

#[derive(Debug)]
pub(crate) enum MetricCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    FloatCounter(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Debug)]
pub(crate) struct SeriesEntry {
    pub(crate) help: String,
    pub(crate) cell: MetricCell,
}

#[derive(Debug)]
pub(crate) struct SpanRing {
    pub(crate) spans: VecDeque<RawSpan>,
    pub(crate) dropped: u64,
    pub(crate) next_id: u64,
}

#[derive(Debug)]
pub(crate) struct RegistryInner {
    pub(crate) series: Mutex<BTreeMap<SeriesKey, SeriesEntry>>,
    pub(crate) spans: Mutex<SpanRing>,
    pub(crate) epoch: Instant,
    /// Synthetic thread-id allocator for modelled span trees.
    pub(crate) next_tid: AtomicU64,
    /// Lock-free flight recorder for request-scoped trace events.
    pub(crate) flight: Arc<FlightInner>,
}

/// A metric + span registry.
///
/// Cloning a `Registry` is cheap (an `Arc` bump); clones share state.
/// [`Registry::disabled()`] returns a registry whose handles are all
/// no-ops.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub(crate) inner: Option<Arc<RegistryInner>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryInner {
                series: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(SpanRing {
                    spans: VecDeque::new(),
                    dropped: 0,
                    next_id: 1,
                }),
                epoch: Instant::now(),
                next_tid: AtomicU64::new(1_000),
                flight: Arc::new(FlightInner::new(FLIGHT_RECORDER_CAPACITY)),
            })),
        }
    }

    /// A registry that records nothing: every handle it hands out is a
    /// no-op, and `snapshot()` is empty. Recording through a disabled
    /// registry costs one branch per operation.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// The process-wide registry (enabled; created on first use).
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// True when this registry records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // --- registration ---------------------------------------------------

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, Vec::new())
    }

    /// Registers (or re-fetches) a labelled counter. Handles for the
    /// same `(name, labels)` share one cell.
    pub fn counter_with(&self, name: &str, help: &str, labels: Labels) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(inner) => {
                let cell = inner.series_cell(name, help, labels, || {
                    MetricCell::Counter(Arc::new(AtomicU64::new(0)))
                });
                match cell {
                    MetricCell::Counter(c) => Counter::live(c),
                    _ => Counter::disabled(),
                }
            }
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, Vec::new())
    }

    /// Registers (or re-fetches) a labelled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: Labels) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(inner) => {
                let cell = inner.series_cell(name, help, labels, || {
                    MetricCell::Gauge(Arc::new(AtomicI64::new(0)))
                });
                match cell {
                    MetricCell::Gauge(c) => Gauge::live(c),
                    _ => Gauge::disabled(),
                }
            }
        }
    }

    /// Registers (or re-fetches) an unlabelled float counter.
    pub fn float_counter(&self, name: &str, help: &str) -> FloatCounter {
        self.float_counter_with(name, help, Vec::new())
    }

    /// Registers (or re-fetches) a labelled float counter.
    pub fn float_counter_with(&self, name: &str, help: &str, labels: Labels) -> FloatCounter {
        match &self.inner {
            None => FloatCounter::disabled(),
            Some(inner) => {
                let cell = inner.series_cell(name, help, labels, || {
                    MetricCell::FloatCounter(Arc::new(AtomicU64::new(0)))
                });
                match cell {
                    MetricCell::FloatCounter(c) => FloatCounter::live(c),
                    _ => FloatCounter::disabled(),
                }
            }
        }
    }

    /// Registers (or re-fetches) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, Vec::new())
    }

    /// Registers (or re-fetches) a labelled histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: Labels) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(inner) => {
                let cell = inner.series_cell(name, help, labels, || {
                    MetricCell::Histogram(Arc::new(HistogramCell::new()))
                });
                match cell {
                    MetricCell::Histogram(c) => Histogram::live(c),
                    _ => Histogram::disabled(),
                }
            }
        }
    }

    // --- tracing --------------------------------------------------------

    /// Handle to this registry's flight recorder (disabled handle when
    /// the registry is disabled). Cloning the handle is an `Arc` bump;
    /// recording through it is lock-free and zero-alloc.
    pub fn flight_recorder(&self) -> FlightRecorder {
        match &self.inner {
            None => FlightRecorder::disabled(),
            Some(inner) => FlightRecorder::live(Arc::clone(&inner.flight)),
        }
    }

    // --- spans ----------------------------------------------------------

    /// Opens a wall-clock span on the current thread. The span records
    /// itself into this registry's ring buffer when dropped; nested
    /// `enter` calls on the same thread become children.
    pub fn span(&self, name: &'static str) -> Span {
        Span::enter_on(self, name)
    }

    /// Records a modelled (non-wall-clock) span tree: one parent
    /// covering `[start_us, start_us + stages.len() durations]` with one
    /// child per `(name, duration_us)` stage laid end to end, so the
    /// children sum exactly to the parent. All spans share a fresh
    /// synthetic thread id, keeping trees from separate calls disjoint
    /// in trace viewers.
    ///
    /// Returns the synthetic tid used (0 when disabled).
    pub fn record_span_tree(&self, parent: &str, stages: &[(&str, f64)]) -> u64 {
        let start_us = match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as f64 / 1_000.0,
            None => 0.0,
        };
        self.record_span_tree_at(parent, start_us, stages)
    }

    /// [`Registry::record_span_tree`] with an explicit start timestamp
    /// (microseconds since the registry epoch). Fully deterministic —
    /// this is what the exporter golden tests use.
    pub fn record_span_tree_at(&self, parent: &str, start_us: f64, stages: &[(&str, f64)]) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let tid = inner.next_tid.fetch_add(1, Ordering::Relaxed);
        let total_us: f64 = stages.iter().map(|(_, d)| d.max(0.0)).sum();
        let mut ring = inner.spans.lock().expect("span ring poisoned");
        let parent_id = ring.next_id;
        ring.next_id += 1;
        push_span(
            &mut ring,
            RawSpan {
                id: parent_id,
                parent: 0,
                name: parent.to_string(),
                tid,
                start_us,
                dur_us: total_us,
                depth: 0,
            },
        );
        let mut cursor = start_us;
        for &(name, dur) in stages {
            let dur = dur.max(0.0);
            let id = ring.next_id;
            ring.next_id += 1;
            push_span(
                &mut ring,
                RawSpan {
                    id,
                    parent: parent_id,
                    name: name.to_string(),
                    tid,
                    start_us: cursor,
                    dur_us: dur,
                    depth: 1,
                },
            );
            cursor += dur;
        }
        tid
    }

    /// Microseconds since this registry was created (0 when disabled).
    pub fn now_us(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.epoch.elapsed().as_nanos() as f64 / 1_000.0)
    }

    // --- export ---------------------------------------------------------

    /// Captures a consistent snapshot of all series and retained spans.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let series = inner.series.lock().expect("series map poisoned");
        let mut metrics = Vec::with_capacity(series.len());
        for (key, entry) in series.iter() {
            metrics.push(crate::snapshot::MetricSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                help: entry.help.clone(),
                value: MetricValue::capture(&entry.cell),
            });
        }
        drop(series);
        let ring = inner.spans.lock().expect("span ring poisoned");
        let spans = ring
            .spans
            .iter()
            .map(|s| SpanSnapshot {
                id: s.id,
                parent: s.parent,
                name: s.name.clone(),
                tid: s.tid,
                start_us: s.start_us,
                dur_us: s.dur_us,
                depth: s.depth,
            })
            .collect();
        Snapshot {
            metrics,
            spans,
            dropped_spans: ring.dropped,
        }
    }

    /// Clears all metric values and spans (registrations survive; the
    /// same handles keep working). Useful between benchmark phases.
    pub fn reset(&self) {
        let Some(inner) = &self.inner else { return };
        let series = inner.series.lock().expect("series map poisoned");
        for entry in series.values() {
            match &entry.cell {
                MetricCell::Counter(c) | MetricCell::FloatCounter(c) => {
                    c.store(0, Ordering::Relaxed)
                }
                MetricCell::Gauge(c) => c.store(0, Ordering::Relaxed),
                MetricCell::Histogram(h) => {
                    for b in &h.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.sum.store(0, Ordering::Relaxed);
                    h.count.store(0, Ordering::Relaxed);
                    for e in h.exemplar_trace.iter().chain(&h.exemplar_value) {
                        e.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
        drop(series);
        let mut ring = inner.spans.lock().expect("span ring poisoned");
        ring.spans.clear();
        ring.dropped = 0;
    }
}

impl RegistryInner {
    fn series_cell(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
        make: impl FnOnce() -> MetricCell,
    ) -> MetricCell {
        let mut series = self.series.lock().expect("series map poisoned");
        let mut key = SeriesKey {
            name: name.to_string(),
            labels,
        };
        // Cardinality guard: a new labelled series past the per-name cap
        // is rewritten onto the `other` overflow series and counted.
        if !key.labels.is_empty() && !series.contains_key(&key) {
            let floor = SeriesKey {
                name: name.to_string(),
                labels: Vec::new(),
            };
            let existing = series
                .range(floor..)
                .take_while(|(k, _)| k.name == name)
                .count();
            if existing >= MAX_SERIES_PER_METRIC {
                for (_, value) in &mut key.labels {
                    *value = "other".to_string();
                }
                let dropped_key = SeriesKey {
                    name: LABELS_DROPPED_METRIC.to_string(),
                    labels: Vec::new(),
                };
                let dropped = series.entry(dropped_key).or_insert_with(|| SeriesEntry {
                    help: "Label sets rewritten to the `other` overflow series".to_string(),
                    cell: MetricCell::Counter(Arc::new(AtomicU64::new(0))),
                });
                if let MetricCell::Counter(c) = &dropped.cell {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let entry = series.entry(key).or_insert_with(|| SeriesEntry {
            help: help.to_string(),
            cell: make(),
        });
        match &entry.cell {
            MetricCell::Counter(c) => MetricCell::Counter(Arc::clone(c)),
            MetricCell::Gauge(c) => MetricCell::Gauge(Arc::clone(c)),
            MetricCell::FloatCounter(c) => MetricCell::FloatCounter(Arc::clone(c)),
            MetricCell::Histogram(c) => MetricCell::Histogram(Arc::clone(c)),
        }
    }

    pub(crate) fn push_raw_span(&self, span: RawSpan) {
        let mut ring = self.spans.lock().expect("span ring poisoned");
        push_span(&mut ring, span);
    }

    pub(crate) fn alloc_span_id(&self) -> u64 {
        let mut ring = self.spans.lock().expect("span ring poisoned");
        let id = ring.next_id;
        ring.next_id += 1;
        id
    }
}

fn push_span(ring: &mut SpanRing, span: RawSpan) {
    if ring.spans.len() >= SPAN_RING_CAPACITY {
        ring.spans.pop_front();
        ring.dropped += 1;
    }
    ring.spans.push_back(span);
}

/// Builds a label list from `(key, value)` string pairs.
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_series_shares_cell() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("y_total", "y", labels(&[("ch", "0")]));
        let b = r.counter_with("y_total", "y", labels(&[("ch", "1")]));
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 2);
    }

    #[test]
    fn disabled_registry_yields_inert_handles() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("z_total", "z");
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(r.snapshot().metrics.is_empty());
        assert_eq!(r.record_span_tree("p", &[("a", 1.0)]), 0);
    }

    #[test]
    fn concurrent_counter_increments() {
        let r = Registry::new();
        let c = r.counter("conc_total", "concurrency test");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn span_tree_children_sum_to_parent() {
        let r = Registry::new();
        let tid = r.record_span_tree("e2e", &[("a", 10.0), ("b", 20.0), ("c", 30.0)]);
        assert!(tid >= 1_000);
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 4);
        let parent = &snap.spans[0];
        assert_eq!(parent.name, "e2e");
        assert_eq!(parent.dur_us, 60.0);
        let child_sum: f64 = snap.spans[1..].iter().map(|s| s.dur_us).sum();
        assert_eq!(child_sum, parent.dur_us);
        // Children tile the parent interval. The absolute start is a
        // wall-clock sample, so summing child offsets onto it can differ
        // from the parent's end in the last ulp — compare with a slack.
        assert_eq!(snap.spans[1].start_us, parent.start_us);
        let child_end = snap.spans[3].start_us + snap.spans[3].dur_us;
        let parent_end = parent.start_us + parent.dur_us;
        assert!(
            (child_end - parent_end).abs() < 1e-6,
            "{child_end} vs {parent_end}"
        );
    }

    #[test]
    fn reset_clears_values_not_registrations() {
        let r = Registry::new();
        let c = r.counter("r_total", "r");
        c.add(9);
        r.record_span_tree("p", &[("s", 1.0)]);
        r.reset();
        assert_eq!(c.get(), 0);
        assert!(r.snapshot().spans.is_empty());
        c.inc();
        assert_eq!(c.get(), 1); // handle still live
    }

    #[test]
    fn label_cardinality_is_capped_with_other_overflow() {
        let r = Registry::new();
        // Register far more per-tenant series than the cap allows.
        for i in 0..(MAX_SERIES_PER_METRIC + 20) {
            r.counter_with(
                "fabp_serve_requests_total",
                "per-tenant requests",
                labels(&[("tenant", &format!("tenant-{i:03}"))]),
            )
            .inc();
        }
        let snap = r.snapshot();
        let series: Vec<_> = snap
            .metrics
            .iter()
            .filter(|m| m.name == "fabp_serve_requests_total")
            .collect();
        // Cap distinct series + the single `other` overflow series.
        assert_eq!(series.len(), MAX_SERIES_PER_METRIC + 1);
        let other = snap
            .find("fabp_serve_requests_total", &[("tenant", "other")])
            .expect("overflow series exists");
        // All 20 overflowing registrations accumulated on `other`.
        assert_eq!(other.value, MetricValue::Counter(20));
        assert_eq!(snap.counter_total(LABELS_DROPPED_METRIC), 20);
        // Existing series keep working and don't re-trip the guard.
        r.counter_with(
            "fabp_serve_requests_total",
            "per-tenant requests",
            labels(&[("tenant", "tenant-000")]),
        )
        .inc();
        assert_eq!(r.snapshot().counter_total(LABELS_DROPPED_METRIC), 20);
    }

    #[test]
    fn unlabelled_series_bypass_the_cardinality_guard() {
        let r = Registry::new();
        for i in 0..(MAX_SERIES_PER_METRIC + 5) {
            r.counter(&format!("fabp_unique_metric_{i}_total"), "distinct names")
                .inc();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter_total(LABELS_DROPPED_METRIC), 0);
        assert_eq!(snap.metrics.len(), MAX_SERIES_PER_METRIC + 5);
    }

    #[test]
    fn ring_drops_oldest() {
        let r = Registry::new();
        for i in 0..(SPAN_RING_CAPACITY + 10) {
            r.record_span_tree("p", &[("s", i as f64)]);
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), SPAN_RING_CAPACITY);
        assert!(snap.dropped_spans >= 20);
    }
}
