//! Per-tenant SLO tracking with multi-window burn-rate alerting.
//!
//! Two objectives per tenant — **availability** (fraction of requests
//! answered without error) and **latency** (fraction answered under the
//! latency objective) — evaluated over a fast and a slow sliding
//! window, Google-SRE style: an alert fires only when *both* windows
//! burn error budget faster than their thresholds, which keeps alerts
//! prompt on real incidents but quiet on short blips.
//!
//! Time is injected (`now_us`), so the monitor is fully deterministic
//! under the serving layer's manual clock. Windows are time-bucketed
//! rings: `observe` is O(1), `report` scans a fixed 60 buckets.

use std::collections::BTreeMap;

use crate::registry::{labels, Registry};

/// Buckets per slow window. The fast window reuses the same ring, so
/// it must divide evenly: with 60 buckets and the default 1 h slow
/// window each bucket spans 1 min, and the 5 min fast window covers 5.
const SLO_BUCKETS: usize = 60;

/// Distinct tenants tracked; later tenants aggregate under `other`
/// (mirroring the registry's label-cardinality guard).
const MAX_SLO_TENANTS: usize = 32;

/// Objectives and alerting thresholds for one serving surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Availability objective: fraction of requests answered OK
    /// (default 0.999 — an error budget of 0.1%).
    pub availability_objective: f64,
    /// Latency objective in microseconds per request.
    pub latency_objective_us: u64,
    /// Fraction of requests that must finish under
    /// `latency_objective_us` (default 0.99).
    pub latency_attainment_objective: f64,
    /// Fast burn-rate window, microseconds (default 5 min).
    pub fast_window_us: u64,
    /// Slow burn-rate window, microseconds (default 1 h).
    pub slow_window_us: u64,
    /// Fast-window burn rate that (with the slow window) trips the
    /// alert (default 14.4: burns 2% of a 30-day budget in 1 h).
    pub fast_burn_alert: f64,
    /// Slow-window burn rate that (with the fast window) trips the
    /// alert (default 6.0).
    pub slow_burn_alert: f64,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            availability_objective: 0.999,
            latency_objective_us: 50_000,
            latency_attainment_objective: 0.99,
            fast_window_us: 5 * 60 * 1_000_000,
            slow_window_us: 60 * 60 * 1_000_000,
            fast_burn_alert: 14.4,
            slow_burn_alert: 6.0,
        }
    }
}

impl SloPolicy {
    /// The default policy with the latency objective taken from a
    /// serving-layer SLO (e.g. `BatchPolicy::slo_us`).
    pub fn with_latency_objective(latency_objective_us: u64) -> SloPolicy {
        SloPolicy {
            latency_objective_us: latency_objective_us.max(1),
            ..SloPolicy::default()
        }
    }
}

/// One tenant's time-bucketed counts. `stamp[i]` records which bucket
/// generation slot `i` currently holds; stale slots are zeroed on first
/// touch, so the ring needs no background sweeper.
#[derive(Debug, Clone)]
struct TenantWindow {
    stamp: [u64; SLO_BUCKETS],
    total: [u64; SLO_BUCKETS],
    errors: [u64; SLO_BUCKETS],
    latency_misses: [u64; SLO_BUCKETS],
}

impl TenantWindow {
    fn new() -> TenantWindow {
        TenantWindow {
            stamp: [u64::MAX; SLO_BUCKETS],
            total: [0; SLO_BUCKETS],
            errors: [0; SLO_BUCKETS],
            latency_misses: [0; SLO_BUCKETS],
        }
    }

    /// Sums (total, errors, latency_misses) over the last `buckets`
    /// generations ending at `gen_now`.
    fn sum_window(&self, gen_now: u64, buckets: u64) -> (u64, u64, u64) {
        let mut acc = (0u64, 0u64, 0u64);
        for offset in 0..buckets.min(SLO_BUCKETS as u64) {
            let Some(gen) = gen_now.checked_sub(offset) else {
                break;
            };
            let i = (gen % SLO_BUCKETS as u64) as usize;
            if self.stamp[i] == gen {
                acc.0 += self.total[i];
                acc.1 += self.errors[i];
                acc.2 += self.latency_misses[i];
            }
        }
        acc
    }
}

/// Burn-rate evaluation of one objective over one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRate {
    /// Requests in the window.
    pub total: u64,
    /// Budget-consuming (bad) requests in the window.
    pub bad: u64,
    /// `bad_fraction / allowed_bad_fraction`; 0.0 on an empty window.
    pub rate: f64,
}

/// Per-tenant SLO state as of one `report` call.
#[derive(Debug, Clone)]
pub struct TenantSlo {
    /// Tenant label (possibly `other` past the cardinality cap).
    pub tenant: String,
    /// Availability burn over the fast window.
    pub availability_fast: BurnRate,
    /// Availability burn over the slow window.
    pub availability_slow: BurnRate,
    /// Latency burn over the fast window.
    pub latency_fast: BurnRate,
    /// Latency burn over the slow window.
    pub latency_slow: BurnRate,
    /// True when the availability objective is multi-window alerting.
    pub availability_alert: bool,
    /// True when the latency objective is multi-window alerting.
    pub latency_alert: bool,
}

impl TenantSlo {
    /// True when either objective alerts.
    pub fn alerting(&self) -> bool {
        self.availability_alert || self.latency_alert
    }
}

/// A full SLO evaluation: the policy plus one row per tenant.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Policy the evaluation used.
    pub policy: SloPolicy,
    /// Per-tenant rows, tenant-sorted.
    pub tenants: Vec<TenantSlo>,
}

impl SloReport {
    /// True when any tenant alerts.
    pub fn alerting(&self) -> bool {
        self.tenants.iter().any(TenantSlo::alerting)
    }

    /// Renders the human-readable `fabp_serve --slo` report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# SLO report: availability ≥ {:.3}%, latency p{:.0} ≤ {} µs",
            self.policy.availability_objective * 100.0,
            self.policy.latency_attainment_objective * 100.0,
            self.policy.latency_objective_us
        );
        let _ = writeln!(
            out,
            "# windows: fast {} s (alert > {:.1}×), slow {} s (alert > {:.1}×)",
            self.policy.fast_window_us / 1_000_000,
            self.policy.fast_burn_alert,
            self.policy.slow_window_us / 1_000_000,
            self.policy.slow_burn_alert
        );
        let _ = writeln!(
            out,
            "# tenant\trequests\terrors\tavail_burn_fast\tavail_burn_slow\tlat_burn_fast\tlat_burn_slow\talert"
        );
        for t in &self.tenants {
            let alert = match (t.availability_alert, t.latency_alert) {
                (true, true) => "AVAILABILITY+LATENCY",
                (true, false) => "AVAILABILITY",
                (false, true) => "LATENCY",
                (false, false) => "ok",
            };
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{}",
                t.tenant,
                t.availability_slow.total,
                t.availability_slow.bad,
                t.availability_fast.rate,
                t.availability_slow.rate,
                t.latency_fast.rate,
                t.latency_slow.rate,
                alert
            );
        }
        out
    }
}

/// Tracks per-tenant SLO compliance and publishes burn-rate gauges.
#[derive(Debug)]
pub struct SloMonitor {
    policy: SloPolicy,
    bucket_us: u64,
    tenants: BTreeMap<String, TenantWindow>,
    registry: Registry,
}

impl SloMonitor {
    /// A monitor publishing gauges into `registry` (which may be
    /// disabled; the monitor itself still evaluates).
    pub fn new(policy: SloPolicy, registry: &Registry) -> SloMonitor {
        SloMonitor {
            policy,
            bucket_us: (policy.slow_window_us / SLO_BUCKETS as u64).max(1),
            tenants: BTreeMap::new(),
            registry: registry.clone(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Records one finished request. `ok` is false for errors (shed,
    /// faults, rejections surfaced to the caller).
    pub fn observe(&mut self, tenant: &str, now_us: u64, latency_us: u64, ok: bool) {
        let gen = now_us / self.bucket_us;
        let tenant_key =
            if self.tenants.contains_key(tenant) || self.tenants.len() < MAX_SLO_TENANTS {
                tenant
            } else {
                "other"
            };
        let window = self
            .tenants
            .entry(tenant_key.to_string())
            .or_insert_with(TenantWindow::new);
        let i = (gen % SLO_BUCKETS as u64) as usize;
        if window.stamp[i] != gen {
            window.stamp[i] = gen;
            window.total[i] = 0;
            window.errors[i] = 0;
            window.latency_misses[i] = 0;
        }
        window.total[i] += 1;
        if !ok {
            window.errors[i] += 1;
        }
        if latency_us > self.policy.latency_objective_us {
            window.latency_misses[i] += 1;
        }
    }

    fn burn(&self, window: &TenantWindow, gen_now: u64, window_us: u64, latency: bool) -> BurnRate {
        let buckets = window_us.div_ceil(self.bucket_us).max(1);
        let (total, errors, misses) = window.sum_window(gen_now, buckets);
        let bad = if latency { misses } else { errors };
        let allowed = if latency {
            1.0 - self.policy.latency_attainment_objective
        } else {
            1.0 - self.policy.availability_objective
        };
        let rate = if total == 0 || allowed <= 0.0 {
            0.0
        } else {
            (bad as f64 / total as f64) / allowed
        };
        BurnRate { total, bad, rate }
    }

    /// Evaluates every tenant as of `now_us`, publishes the burn-rate
    /// and alert gauges, and returns the report.
    pub fn report(&self, now_us: u64) -> SloReport {
        let gen_now = now_us / self.bucket_us;
        let mut rows = Vec::with_capacity(self.tenants.len());
        for (tenant, window) in &self.tenants {
            let availability_fast = self.burn(window, gen_now, self.policy.fast_window_us, false);
            let availability_slow = self.burn(window, gen_now, self.policy.slow_window_us, false);
            let latency_fast = self.burn(window, gen_now, self.policy.fast_window_us, true);
            let latency_slow = self.burn(window, gen_now, self.policy.slow_window_us, true);
            let availability_alert = availability_fast.rate >= self.policy.fast_burn_alert
                && availability_slow.rate >= self.policy.slow_burn_alert;
            let latency_alert = latency_fast.rate >= self.policy.fast_burn_alert
                && latency_slow.rate >= self.policy.slow_burn_alert;
            let row = TenantSlo {
                tenant: tenant.clone(),
                availability_fast,
                availability_slow,
                latency_fast,
                latency_slow,
                availability_alert,
                latency_alert,
            };
            self.publish(&row);
            rows.push(row);
        }
        SloReport {
            policy: self.policy,
            tenants: rows,
        }
    }

    /// Publishes one tenant row as gauges: burn rates in milli-units
    /// (`14.4× → 14400`) so integer gauges carry them losslessly
    /// enough for dashboards, plus a 0/1 alert gauge per objective.
    fn publish(&self, row: &TenantSlo) {
        if !self.registry.is_enabled() {
            return;
        }
        let burns = [
            ("availability", "fast", row.availability_fast.rate),
            ("availability", "slow", row.availability_slow.rate),
            ("latency", "fast", row.latency_fast.rate),
            ("latency", "slow", row.latency_slow.rate),
        ];
        for (slo, window, rate) in burns {
            self.registry
                .gauge_with(
                    "fabp_slo_burn_rate_milli",
                    "SLO burn rate ×1000 per tenant/objective/window",
                    labels(&[("tenant", &row.tenant), ("slo", slo), ("window", window)]),
                )
                .set((rate * 1000.0).round() as i64);
        }
        for (slo, alert) in [
            ("availability", row.availability_alert),
            ("latency", row.latency_alert),
        ] {
            self.registry
                .gauge_with(
                    "fabp_slo_alert",
                    "1 when the multi-window burn-rate alert fires",
                    labels(&[("tenant", &row.tenant), ("slo", slo)]),
                )
                .set(i64::from(alert));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN_US: u64 = 60 * 1_000_000;

    #[test]
    fn clean_traffic_never_alerts() {
        let r = Registry::new();
        let mut m = SloMonitor::new(SloPolicy::default(), &r);
        for i in 0..1_000u64 {
            m.observe("a", i * 1_000, 10_000, true);
        }
        let report = m.report(1_000 * 1_000);
        assert!(!report.alerting());
        let row = &report.tenants[0];
        assert_eq!(row.availability_slow.total, 1_000);
        assert_eq!(row.availability_slow.bad, 0);
        assert_eq!(row.availability_fast.rate, 0.0);
    }

    #[test]
    fn sustained_errors_trip_both_windows() {
        let r = Registry::new();
        let mut m = SloMonitor::new(SloPolicy::default(), &r);
        // 10% errors sustained across the whole slow window: burn rate
        // 0.1 / 0.001 = 100× on both windows.
        for minute in 0..60u64 {
            for i in 0..10u64 {
                m.observe("a", minute * MIN_US + i, 1_000, i != 0);
            }
        }
        let now = 59 * MIN_US + 100;
        let report = m.report(now);
        let row = &report.tenants[0];
        assert!(row.availability_fast.rate > 50.0, "{row:?}");
        assert!(row.availability_slow.rate > 50.0, "{row:?}");
        assert!(row.availability_alert);
        assert!(report.alerting());
        // Gauges published.
        let snap = r.snapshot();
        let alert = snap
            .find(
                "fabp_slo_alert",
                &[("tenant", "a"), ("slo", "availability")],
            )
            .expect("alert gauge");
        assert_eq!(
            alert.value,
            crate::MetricValue::Gauge(1),
            "alert gauge must be 1"
        );
    }

    #[test]
    fn short_blip_does_not_alert_after_fast_window_clears() {
        let r = Registry::disabled();
        let mut m = SloMonitor::new(SloPolicy::default(), &r);
        // One bad minute at t=0, then 30 clean minutes.
        for i in 0..100u64 {
            m.observe("a", i, 1_000, false);
        }
        for minute in 1..31u64 {
            for i in 0..100u64 {
                m.observe("a", minute * MIN_US + i, 1_000, true);
            }
        }
        let report = m.report(30 * MIN_US + 200);
        let row = &report.tenants[0];
        // Slow window still burns (errors within the hour), but the
        // fast window has cleared — no alert.
        assert!(row.availability_slow.rate > 1.0);
        assert_eq!(row.availability_fast.rate, 0.0);
        assert!(!row.availability_alert);
    }

    #[test]
    fn latency_objective_is_tracked_separately() {
        let r = Registry::disabled();
        let mut m = SloMonitor::new(SloPolicy::with_latency_objective(1_000), &r);
        // All requests succeed, but half are slow, sustained.
        for minute in 0..60u64 {
            for i in 0..10u64 {
                let latency = if i % 2 == 0 { 10_000 } else { 100 };
                m.observe("a", minute * MIN_US + i, latency, true);
            }
        }
        let report = m.report(59 * MIN_US + 100);
        let row = &report.tenants[0];
        assert!(!row.availability_alert);
        assert!(row.latency_alert, "{row:?}");
        assert!(row.latency_slow.rate > 10.0);
    }

    #[test]
    fn tenant_overflow_collapses_to_other() {
        let r = Registry::disabled();
        let mut m = SloMonitor::new(SloPolicy::default(), &r);
        for i in 0..(MAX_SLO_TENANTS + 8) {
            m.observe(&format!("tenant-{i}"), 0, 1_000, true);
        }
        let report = m.report(0);
        assert_eq!(report.tenants.len(), MAX_SLO_TENANTS + 1);
        let other = report
            .tenants
            .iter()
            .find(|t| t.tenant == "other")
            .expect("overflow tenant");
        assert_eq!(other.availability_slow.total, 8);
    }

    #[test]
    fn stale_buckets_age_out() {
        let r = Registry::disabled();
        let mut m = SloMonitor::new(SloPolicy::default(), &r);
        m.observe("a", 0, 1_000, false);
        // Two hours later the error is outside even the slow window.
        let later = 2 * 60 * MIN_US;
        m.observe("a", later, 1_000, true);
        let report = m.report(later);
        let row = &report.tenants[0];
        assert_eq!(row.availability_slow.total, 1);
        assert_eq!(row.availability_slow.bad, 0);
    }

    #[test]
    fn report_text_is_tabular() {
        let r = Registry::disabled();
        let mut m = SloMonitor::new(SloPolicy::default(), &r);
        m.observe("a", 0, 1_000, true);
        let text = m.report(0).render_text();
        assert!(text.contains("# SLO report"));
        assert!(text.contains("a\t1\t0\t"));
        assert!(text.contains("ok"));
    }
}
