//! RAII wall-clock spans with thread-local nesting.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::registry::{Registry, RegistryInner};

/// A recorded span interval (internal representation).
#[derive(Debug, Clone)]
pub(crate) struct RawSpan {
    pub(crate) id: u64,
    /// Parent span id, or 0 for roots.
    pub(crate) parent: u64,
    pub(crate) name: String,
    /// Thread id: hashed OS thread id for wall-clock spans, synthetic
    /// (≥ 1000) for modelled span trees.
    pub(crate) tid: u64,
    pub(crate) start_us: f64,
    pub(crate) dur_us: f64,
    /// Nesting depth at record time (0 = root).
    pub(crate) depth: u32,
}

thread_local! {
    /// Stack of (span id, registry ptr) currently open on this thread.
    static SPAN_STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

fn os_tid() -> u64 {
    // ThreadId has no stable integer accessor; hash its Debug view.
    use std::hash::{Hash, Hasher};
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    std::thread::current().id().hash(&mut h);
    // Keep wall-clock tids below the synthetic range (>= 1000).
    h.finish() % 1_000
}

/// An open wall-clock span. Created by [`Registry::span`] or
/// [`Span::enter`] (which targets the global registry); records itself
/// into the registry's ring buffer on drop.
///
/// Spans opened while another span is open **on the same thread**
/// become its children; drop order must be LIFO (guaranteed by scoping).
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
}

#[derive(Debug)]
struct SpanState {
    inner: Arc<RegistryInner>,
    id: u64,
    parent: u64,
    name: &'static str,
    tid: u64,
    depth: u32,
    start_us: f64,
    started: Instant,
}

impl Span {
    /// Opens a span on the global registry.
    pub fn enter(name: &'static str) -> Span {
        Span::enter_on(Registry::global(), name)
    }

    /// Opens a span on `registry` (no-op span when disabled).
    pub fn enter_on(registry: &Registry, name: &'static str) -> Span {
        let Some(inner) = &registry.inner else {
            return Span { state: None };
        };
        let inner = Arc::clone(inner);
        let id = inner.alloc_span_id();
        let registry_key = Arc::as_ptr(&inner) as usize;
        let (parent, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(_, reg)| *reg == registry_key)
                .map_or(0, |&(id, _)| id);
            let depth = stack.iter().filter(|(_, reg)| *reg == registry_key).count() as u32;
            stack.push((id, registry_key));
            (parent, depth)
        });
        let start_us = inner.epoch.elapsed().as_nanos() as f64 / 1_000.0;
        Span {
            state: Some(SpanState {
                inner,
                id,
                parent,
                name,
                tid: os_tid(),
                depth,
                start_us,
                started: Instant::now(),
            }),
        }
    }

    /// True when the span records somewhere.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Elapsed seconds since the span opened (0.0 when disabled).
    pub fn elapsed_seconds(&self) -> f64 {
        self.state
            .as_ref()
            .map_or(0.0, |s| s.started.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let dur_us = state.started.elapsed().as_nanos() as f64 / 1_000.0;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(id, _)| id == state.id) {
                stack.remove(pos);
            }
        });
        state.inner.push_raw_span(RawSpan {
            id: state.id,
            parent: state.parent,
            name: state.name.to_string(),
            tid: state.tid,
            start_us: state.start_us,
            dur_us,
            depth: state.depth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_records_parent_child() {
        let r = Registry::new();
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _inner2 = r.span("inner2");
            }
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 3);
        // Children drop (and record) before the parent.
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let inner2 = snap.spans.iter().find(|s| s.name == "inner2").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner2.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.dur_us <= outer.dur_us);
        // Recording order: inner before inner2 before outer.
        let order: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(order, vec!["inner", "inner2", "outer"]);
    }

    #[test]
    fn disabled_span_is_inert() {
        let r = Registry::disabled();
        let s = r.span("nothing");
        assert!(!s.is_enabled());
        assert_eq!(s.elapsed_seconds(), 0.0);
        drop(s);
        assert!(r.snapshot().spans.is_empty());
    }

    #[test]
    fn spans_on_distinct_registries_do_not_nest() {
        let a = Registry::new();
        let b = Registry::new();
        let _pa = a.span("a_root");
        let sb = b.span("b_root");
        drop(sb);
        let snap = b.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].parent, 0, "b_root must be a root in b");
    }
}
