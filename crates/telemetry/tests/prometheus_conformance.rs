//! Prometheus exposition conformance lint.
//!
//! The golden test pins exact bytes for one fixture; this test checks
//! the *format rules* over a fully-populated registry — every metric
//! kind, labelled and unlabelled series, values that need escaping,
//! histograms with exemplars — so a future exporter change cannot emit
//! text a scraper would reject:
//!
//! * every series line is preceded by `# HELP` and `# TYPE` lines for
//!   its metric family, in that order, exactly once per family;
//! * metric names and label names match the Prometheus grammar;
//! * label values are escaped (no raw `"`, `\`, or newline survives);
//! * histogram `le` bucket bounds are strictly increasing, cumulative
//!   counts are monotone, and the last bucket is `+Inf` with the
//!   family's `_count` value;
//! * exemplars use the OpenMetrics ` # {label="…"} value` syntax and
//!   appear only on `_bucket` lines.

use fabp_telemetry::{labels, Registry, TraceContext};
use std::collections::BTreeMap;

/// A registry exercising every exporter feature at once.
fn populated_registry() -> Registry {
    let r = Registry::new();
    r.counter("fabp_requests_total", "Requests").add(7);
    r.counter_with(
        "fabp_requests_by_tenant_total",
        "Requests per tenant",
        labels(&[("tenant", "alpha"), ("zone", "eu-1")]),
    )
    .add(3);
    // Label values that need escaping: quotes, backslashes, newlines,
    // tabs, control characters.
    r.counter_with(
        "fabp_requests_by_tenant_total",
        "Requests per tenant",
        labels(&[("tenant", "we\"ird\\ten\nant\t\u{1}"), ("zone", "eu-2")]),
    )
    .add(1);
    r.gauge("fabp_queue_depth", "Queue depth").set(-4);
    r.gauge_with("fabp_shard_bases", "Shard size", labels(&[("node", "0")]))
        .set(1_000);
    r.float_counter("fabp_stage_seconds", "Stage seconds")
        .add(0.125);
    // Histogram with traced observations → exemplars.
    let h = r.histogram_with("fabp_latency_us", "Latency", labels(&[("tenant", "alpha")]));
    let ctx = TraceContext::mint(0xC0FFEE, 1);
    h.observe_traced(0, ctx.trace_id);
    h.observe_traced(3, ctx.trace_id);
    h.observe_traced(900, TraceContext::mint(0xC0FFEE, 2).trace_id);
    h.observe(u64::MAX);
    // Histogram with no +Inf observation (exporter must synthesise it).
    let h2 = r.histogram("fabp_batch_size", "Batch sizes");
    h2.observe(4);
    h2.observe(17);
    r
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let first = match chars.next() {
        Some(c) => c,
        None => return false,
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let first = match chars.next() {
        Some(c) => c,
        None => return false,
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits a series line into (name, label-block, value, exemplar).
fn parse_series_line(line: &str) -> (String, Option<String>, String, Option<String>) {
    let (series, exemplar) = match line.find(" # ") {
        Some(pos) => (&line[..pos], Some(line[pos + 3..].to_string())),
        None => (line, None),
    };
    let (head, value) = series
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value on line: {line}"));
    match head.find('{') {
        Some(open) => {
            assert!(head.ends_with('}'), "unterminated label block: {line}");
            (
                head[..open].to_string(),
                Some(head[open + 1..head.len() - 1].to_string()),
                value.to_string(),
                exemplar,
            )
        }
        None => (head.to_string(), None, value.to_string(), exemplar),
    }
}

/// Splits a label block on top-level commas (quotes respected) into
/// `name="escaped-value"` pairs.
fn parse_labels(block: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .unwrap_or_else(|| panic!("bad label: {rest}"));
        let name = &rest[..eq];
        assert!(rest[eq + 1..].starts_with('"'), "unquoted value: {rest}");
        let mut end = eq + 2;
        let bytes = rest.as_bytes();
        while end < rest.len() {
            match bytes[end] {
                b'\\' => end += 2,
                b'"' => break,
                _ => end += 1,
            }
        }
        assert!(end < rest.len(), "unterminated label value: {rest}");
        pairs.push((name.to_string(), rest[eq + 2..end].to_string()));
        rest = rest[end + 1..]
            .strip_prefix(',')
            .unwrap_or(&rest[end + 1..]);
    }
    pairs
}

#[test]
fn exposition_conforms() {
    let text = populated_registry().snapshot().to_prometheus();

    // Families seen and their declared order of HELP/TYPE.
    let mut declared: BTreeMap<String, String> = BTreeMap::new(); // family → type
    let mut help_seen: Vec<String> = Vec::new();
    let mut pending_help: Option<String> = None;
    // Histogram bookkeeping per (family, non-le labels).
    let mut hist_buckets: BTreeMap<(String, String), Vec<(f64, u64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), u64> = BTreeMap::new();

    for line in text.lines() {
        assert!(!line.is_empty(), "blank lines are not emitted");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, _help) = rest.split_once(' ').expect("HELP has text");
            assert!(is_valid_metric_name(family), "bad family name {family}");
            assert!(
                !help_seen.contains(&family.to_string()),
                "HELP repeated for {family}"
            );
            help_seen.push(family.to_string());
            pending_help = Some(family.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE has kind");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                "bad TYPE {kind}"
            );
            assert_eq!(
                pending_help.as_deref(),
                Some(family),
                "TYPE must directly follow its HELP"
            );
            pending_help = None;
            declared.insert(family.to_string(), kind.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line: {line}");

        let (name, label_block, value, exemplar) = parse_series_line(line);
        assert!(is_valid_metric_name(&name), "bad metric name {name}");
        // Series must belong to a declared family (histogram suffixes
        // map back to the family name).
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                name.strip_suffix(s)
                    .filter(|f| declared.get(*f).is_some_and(|k| k == "histogram"))
            })
            .unwrap_or(&name)
            .to_string();
        assert!(
            declared.contains_key(&family),
            "series {name} has no HELP/TYPE"
        );

        let mut le: Option<f64> = None;
        let mut other_labels = String::new();
        if let Some(block) = &label_block {
            for (lname, lvalue) in parse_labels(block) {
                assert!(is_valid_label_name(&lname), "bad label name {lname}");
                assert!(
                    !lvalue.contains('\n') && !lvalue.contains('\r'),
                    "raw newline in label value: {lvalue:?}"
                );
                // Any quote or backslash inside the parsed (still
                // escaped) value must itself be escaped.
                let mut chars = lvalue.chars();
                while let Some(c) = chars.next() {
                    assert_ne!(c, '"', "unescaped quote in {lvalue:?}");
                    if c == '\\' {
                        let next = chars.next().expect("dangling backslash");
                        assert!(
                            ['\\', '"', 'n', 't', 'r', 'u'].contains(&next),
                            "bad escape \\{next} in {lvalue:?}"
                        );
                    }
                }
                if lname == "le" && name.ends_with("_bucket") {
                    le = Some(if lvalue == "+Inf" {
                        f64::INFINITY
                    } else {
                        lvalue.parse().unwrap_or_else(|_| panic!("bad le {lvalue}"))
                    });
                } else {
                    other_labels.push_str(&lname);
                    other_labels.push('=');
                    other_labels.push_str(&lvalue);
                    other_labels.push(';');
                }
            }
        }

        if name.ends_with("_bucket") && declared.get(&family).is_some_and(|k| k == "histogram") {
            let le = le.expect("_bucket line must carry le");
            let count: u64 = value.parse().expect("bucket count is integer");
            hist_buckets
                .entry((family.clone(), other_labels.clone()))
                .or_default()
                .push((le, count));
        } else {
            assert!(le.is_none(), "le label outside _bucket line: {line}");
            assert!(exemplar.is_none(), "exemplar outside _bucket line: {line}");
            let parsed: Result<f64, _> = value.parse();
            assert!(parsed.is_ok(), "unparsable value {value} on {line}");
        }
        if name.ends_with("_count") && declared.get(&family).is_some_and(|k| k == "histogram") {
            hist_counts.insert(
                (family.clone(), other_labels.clone()),
                value.parse().expect("count is integer"),
            );
        }

        if let Some(ex) = exemplar {
            // OpenMetrics syntax: {label="value"} observed_value
            let rest = ex.strip_prefix('{').expect("exemplar starts with {");
            let close = rest.find('}').expect("exemplar labels close");
            let ex_labels = parse_labels(&rest[..close]);
            assert_eq!(ex_labels.len(), 1, "one exemplar label");
            assert_eq!(ex_labels[0].0, "trace_id");
            assert_eq!(ex_labels[0].1.len(), 16, "trace id is 16 hex chars");
            assert!(ex_labels[0].1.chars().all(|c| c.is_ascii_hexdigit()));
            let ex_value = rest[close + 1..].trim();
            let parsed: Result<f64, _> = ex_value.parse();
            assert!(parsed.is_ok(), "bad exemplar value {ex_value}");
        }
    }

    assert!(pending_help.is_none(), "HELP without TYPE at end of export");

    // Histogram structure: le strictly increasing, cumulative counts
    // monotone, last bucket +Inf matching _count.
    assert!(!hist_buckets.is_empty(), "fixture registers histograms");
    for (key, buckets) in &hist_buckets {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = 0u64;
        for &(le, count) in buckets {
            assert!(le > last_le, "le not increasing in {key:?}");
            assert!(count >= last_count, "cumulative count fell in {key:?}");
            last_le = le;
            last_count = count;
        }
        assert!(last_le.is_infinite(), "last bucket of {key:?} must be +Inf");
        let total = hist_counts.get(key).expect("histogram emits _count");
        assert_eq!(last_count, *total, "+Inf bucket must equal _count");
    }

    // The traced fixture must actually produce exemplar syntax.
    assert!(
        text.contains(" # {trace_id=\""),
        "exemplars missing from traced histogram:\n{text}"
    );
}

#[test]
fn exemplars_land_in_json_export_only_when_present() {
    let r = populated_registry();
    let json = r.snapshot().to_json();
    assert!(json.contains("\"exemplar\": {\"trace_id\": \""));
    // Untraced registries emit no exemplar keys at all.
    let plain = Registry::new();
    plain.histogram("fabp_h", "h").observe(3);
    assert!(!plain.snapshot().to_json().contains("exemplar"));
}
