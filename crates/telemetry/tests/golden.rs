//! Golden-file tests for the three exporters.
//!
//! The exported text is part of the crate's public contract: downstream
//! tooling (Prometheus scrapers, `chrome://tracing` / Perfetto, jq
//! pipelines) parses it byte-for-byte. These tests pin the exact output
//! for a fixed registry against checked-in golden files.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p fabp-telemetry --test golden
//! ```

use fabp_telemetry::{labels, Registry};
use std::path::PathBuf;

/// Builds the fixed registry every golden file is derived from. All
/// inputs — values, label sets, span timestamps — are explicit, so the
/// export is byte-deterministic.
fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter("fabp_engine_beats_total", "AXI beats consumed")
        .add(3128);
    r.counter_with(
        "fabp_axi_stall_cycles_total",
        "Cycles the datapath waited on AXI",
        labels(&[("channel", "0")]),
    )
    .add(128);
    r.counter_with(
        "fabp_axi_stall_cycles_total",
        "Cycles the datapath waited on AXI",
        labels(&[("channel", "1")]),
    )
    .add(64);
    r.counter_with(
        "fabp_hits_total",
        "Hits at or above threshold",
        labels(&[("engine", "cycle")]),
    )
    .add(4);
    r.gauge("fabp_cluster_nodes", "Boards in the modelled cluster")
        .set(4);
    r.float_counter(
        "fabp_host_end_to_end_seconds",
        "Modelled host pipeline seconds",
    )
    .add(0.001999);
    let h = r.histogram("fabp_engine_occupancy_percent", "Pipeline occupancy");
    h.observe(0);
    h.observe(1);
    h.observe(97);
    h.observe(u64::MAX);
    // Modelled host pipeline: children tile the parent exactly.
    r.record_span_tree_at(
        "end_to_end",
        100.0,
        &[
            ("encode", 2.5),
            ("query_transfer", 1.25),
            ("kernel", 12.0),
            ("readback", 0.75),
        ],
    );
    r
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "exporter output diverged from {}; if the change is intentional, \
         regenerate with GOLDEN_UPDATE=1",
        path.display()
    );
}

#[test]
fn prometheus_matches_golden() {
    check("sample.prom", &golden_registry().snapshot().to_prometheus());
}

#[test]
fn json_matches_golden() {
    check("sample.json", &golden_registry().snapshot().to_json());
}

#[test]
fn chrome_trace_matches_golden() {
    check(
        "sample_trace.json",
        &golden_registry().snapshot().to_chrome_trace(),
    );
}

#[test]
fn golden_trace_is_valid_trace_event_json() {
    // Cheap structural validation so the golden file itself can't rot:
    // balanced braces, one complete event per span, children tile parent.
    let trace = golden_registry().snapshot().to_chrome_trace();
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert_eq!(trace.matches("\"ph\": \"X\"").count(), 5);
    assert!(trace.contains("\"ts\": 100.0"));
    // 2.5 + 1.25 + 12.0 + 0.75 = 16.5 — the parent's duration.
    assert!(trace.contains("\"dur\": 16.5"));
}
