//! Overhead of telemetry primitives, enabled and disabled.
//!
//! The contract the instrumentation relies on: a handle obtained from
//! [`Registry::disabled`] must cost ~one predictable branch per
//! operation (< 5 ns), so hot loops can keep their counters
//! unconditionally. Each benchmark performs `OPS` operations per
//! iteration; divide the reported per-iteration time by `OPS` (or read
//! the Melem/s column: 1000 Melem/s = 1 ns/op).
//!
//! ```text
//! cargo bench -p fabp-telemetry --bench telemetry_overhead
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fabp_telemetry::{Registry, TraceContext, TraceEvent};

const OPS: u64 = 1_000;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter");
    group.throughput(Throughput::Elements(OPS));

    let disabled = Registry::disabled();
    let d_counter = disabled.counter("bench_total", "disabled counter");
    group.bench_function("disabled_inc", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                black_box(&d_counter).inc();
            }
        })
    });

    let live = Registry::new();
    let l_counter = live.counter("bench_total", "live counter");
    group.bench_function("enabled_inc", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                black_box(&l_counter).inc();
            }
        })
    });
    group.finish();
}

fn bench_histograms(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(OPS));

    let disabled = Registry::disabled();
    let d_hist = disabled.histogram("bench_hist", "disabled histogram");
    group.bench_function("disabled_observe", |b| {
        b.iter(|| {
            for i in 0..OPS {
                black_box(&d_hist).observe(i);
            }
        })
    });

    let live = Registry::new();
    let l_hist = live.histogram("bench_hist", "live histogram");
    group.bench_function("enabled_observe", |b| {
        b.iter(|| {
            for i in 0..OPS {
                black_box(&l_hist).observe(i);
            }
        })
    });
    group.finish();
}

fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("span");
    group.throughput(Throughput::Elements(OPS));

    let disabled = Registry::disabled();
    group.bench_function("disabled_span", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                let _s = black_box(&disabled).span("bench");
            }
        })
    });

    // Live spans lock the ring on drop — orders of magnitude above the
    // counter path, which is why spans sit at request granularity (one
    // per query), never in per-position loops.
    let live = Registry::new();
    group.bench_function("enabled_span", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                let _s = black_box(&live).span("bench");
            }
        })
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(OPS));

    // Disabled-tracing hot path: a live recorder asked to record under
    // a disabled context. This is the cost every traced call site pays
    // when tracing is off — budget ≤ 2 ns/op, gated by bench_telemetry.
    let live = Registry::new();
    let flight = live.flight_recorder();
    let off = TraceContext::none();
    group.bench_function("disabled_record", |b| {
        b.iter(|| {
            for i in 0..OPS {
                black_box(&flight).record(TraceEvent::new(off, "bench", i as f64, 1.0));
            }
        })
    });

    // Fully enabled: claim a slot, seqlock write, name byte-pack.
    let ctx = TraceContext::mint(0xBE_BC, 1);
    group.bench_function("enabled_record", |b| {
        b.iter(|| {
            for i in 0..OPS {
                black_box(&flight).record(TraceEvent::new(ctx, "bench", i as f64, 1.0));
            }
        })
    });

    // Traced histogram observation vs the plain one.
    let hist = live.histogram("bench_traced_hist", "exemplar path");
    group.bench_function("observe_traced", |b| {
        b.iter(|| {
            for i in 0..OPS {
                black_box(&hist).observe_traced(i, ctx.trace_id);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_counters,
    bench_histograms,
    bench_spans,
    bench_trace
);
criterion_main!(benches);
