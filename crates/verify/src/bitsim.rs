//! 64-lane bit-parallel ("bit-sliced") netlist simulation.
//!
//! [`WordSim`] evaluates a [`Netlist`] on 64 independent input
//! assignments at once: every node carries a `u64` word whose bit `L`
//! is the node's boolean value in lane `L`. A LUT6 is evaluated by
//! minterm expansion of its `INIT` table (each set table bit contributes
//! the AND of its pin words / complements), a carry element is the
//! bitwise majority, and registers hold one stored word of state. This
//! is the same trick the paper's host-side scoring uses for the scan
//! datapath, applied here to the gate-level model so the equivalence
//! engine in [`crate::symbolic`] can check 64 test patterns per pass.

use fabp_fpga::netlist::{Netlist, NodeId, NodeKind};
use std::collections::{HashMap, HashSet};

/// Lane-counter words: bit `L` of `COUNTER[j]` is `(L >> j) & 1`, so
/// driving six inputs with `COUNTER[0..6]` makes the 64 lanes enumerate
/// all 64 assignments of those inputs in one evaluation.
pub const COUNTER: [u64; 6] = counter_words();

const fn counter_words() -> [u64; 6] {
    let mut words = [0u64; 6];
    let mut j = 0;
    while j < 6 {
        let mut lane = 0;
        while lane < 64 {
            if (lane >> j) & 1 == 1 {
                words[j] |= 1u64 << lane;
            }
            lane += 1;
        }
        j += 1;
    }
    words
}

/// Evaluates one LUT6 truth table over six pin words. Iterates only the
/// set bits of the smaller phase of the table (direct or complemented),
/// so sparse and dense tables are equally cheap.
pub fn lut_word(table: u64, pins: &[u64; 6]) -> u64 {
    if table == 0 {
        return 0;
    }
    if table == u64::MAX {
        return u64::MAX;
    }
    let (minterms, invert) = if table.count_ones() <= 32 {
        (table, false)
    } else {
        (!table, true)
    };
    let mut out = 0u64;
    let mut rest = minterms;
    while rest != 0 {
        let addr = rest.trailing_zeros();
        rest &= rest - 1;
        let mut term = u64::MAX;
        for (bit, &word) in pins.iter().enumerate() {
            term &= if (addr >> bit) & 1 == 1 { word } else { !word };
            if term == 0 {
                break;
            }
        }
        out |= term;
        if out == u64::MAX {
            break;
        }
    }
    if invert {
        !out
    } else {
        out
    }
}

/// A 64-lane word-level simulator over a structural netlist.
///
/// Registers power on at 0 (the post-reset state, matching
/// [`Netlist::eval`] semantics); [`WordSim::settle`] re-evaluates with
/// held inputs across clock edges so pipelined modules reach their
/// steady-state outputs.
pub struct WordSim<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
    reg_state: HashMap<usize, u64>,
}

impl<'a> WordSim<'a> {
    /// Creates a simulator with all registers reset to 0 in every lane.
    pub fn new(netlist: &'a Netlist) -> WordSim<'a> {
        let reg_state = netlist
            .register_state_nodes()
            .iter()
            .map(|id| (id.index(), 0u64))
            .collect();
        WordSim {
            netlist,
            values: vec![0; netlist.node_count()],
            reg_state,
        }
    }

    /// Resets every register to 0 in every lane.
    pub fn reset(&mut self) {
        for state in self.reg_state.values_mut() {
            *state = 0;
        }
    }

    /// Evaluates all combinational values for one input-word vector
    /// (creation order, one `u64` of 64 lanes per input).
    ///
    /// # Panics
    ///
    /// Panics on an input-count mismatch, a dangling pin, or a
    /// combinational cycle — callers gate on the structural lint first.
    pub fn eval(&mut self, inputs: &[u64]) {
        let mut next_input = 0usize;
        for id in self.netlist.node_ids() {
            let at = id.index();
            let value = match self.netlist.node_kind(id) {
                NodeKind::Input => {
                    let word = inputs[next_input];
                    next_input += 1;
                    word
                }
                NodeKind::Const(v) => {
                    if v {
                        u64::MAX
                    } else {
                        0
                    }
                }
                NodeKind::Lut(lut, pins) => {
                    let mut words = [0u64; 6];
                    for (slot, pin) in pins.iter().enumerate() {
                        words[slot] = self.read_pin(*pin, at);
                    }
                    lut_word(lut.init(), &words)
                }
                NodeKind::Carry { a, b, cin } => {
                    let (wa, wb, wc) = (
                        self.read_pin(a, at),
                        self.read_pin(b, at),
                        self.read_pin(cin, at),
                    );
                    (wa & wb) | (wc & (wa ^ wb))
                }
                NodeKind::Reg { .. } => self.reg_state[&at],
            };
            self.values[at] = value;
        }
        assert_eq!(
            next_input,
            inputs.len(),
            "input word count does not match the netlist's input nodes"
        );
    }

    fn read_pin(&self, pin: NodeId, at: usize) -> u64 {
        if let Some(&state) = self.reg_state.get(&pin.index()) {
            return state;
        }
        assert!(
            pin.index() < at,
            "combinational pin n{} read before evaluation (loop or dangling)",
            pin.index()
        );
        self.values[pin.index()]
    }

    /// Clock edge: every register latches its D word.
    pub fn clock(&mut self) {
        let updates: Vec<(usize, u64)> = self
            .netlist
            .register_state_nodes()
            .iter()
            .map(|id| {
                let d = match self.netlist.node_kind(*id) {
                    NodeKind::Reg { d } => d,
                    _ => unreachable!("register_state_nodes returned a non-register"),
                };
                (id.index(), self.values[d.index()])
            })
            .collect();
        for (index, word) in updates {
            self.reg_state.insert(index, word);
        }
    }

    /// Holds `inputs` across `latency` clock edges and re-evaluates, so
    /// a pipelined module's outputs settle — the same contract as
    /// `PipelinedPopCounter::count_blocking`.
    pub fn settle(&mut self, inputs: &[u64], latency: usize) {
        self.eval(inputs);
        for _ in 0..latency {
            self.clock();
            self.eval(inputs);
        }
    }

    /// The 64-lane word currently on `id`.
    pub fn value(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }
}

/// Primary-input support of `node`: every `Input` node reachable
/// backwards through LUT pins, carry pins and register D inputs,
/// in netlist creation order.
pub fn input_support(netlist: &Netlist, node: NodeId) -> Vec<NodeId> {
    let cone = fanin_cone(netlist, node);
    netlist
        .input_nodes()
        .into_iter()
        .filter(|id| cone.contains(&id.index()))
        .collect()
}

/// Transitive fan-in cone of `node` (including the node itself), as a
/// set of node indices. Dangling pins are skipped.
pub fn fanin_cone(netlist: &Netlist, node: NodeId) -> HashSet<usize> {
    let mut seen = HashSet::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        if id.is_dangling() || !seen.insert(id.index()) {
            continue;
        }
        let pins: Vec<NodeId> = match netlist.try_node_kind(id) {
            Some(NodeKind::Lut(_, pins)) => pins.to_vec(),
            Some(NodeKind::Carry { a, b, cin }) => vec![a, b, cin],
            Some(NodeKind::Reg { d }) => vec![d],
            _ => Vec::new(),
        };
        stack.extend(pins);
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_fpga::netlist::Netlist;

    #[test]
    fn counter_words_enumerate_all_addresses() {
        for lane in 0..64u32 {
            let mut addr = 0u32;
            for (j, word) in COUNTER.iter().enumerate() {
                addr |= (((word >> lane) & 1) as u32) << j;
            }
            assert_eq!(addr, lane);
        }
    }

    #[test]
    fn lut_word_matches_scalar_eval() {
        let tables = [0u64, u64::MAX, 0x8000_0000_0000_0001, 0x6996_9669_9669_6996];
        for &table in &tables {
            let pins = [
                COUNTER[0], COUNTER[1], COUNTER[2], COUNTER[3], COUNTER[4], COUNTER[5],
            ];
            let word = lut_word(table, &pins);
            for lane in 0..64u64 {
                assert_eq!((word >> lane) & 1 == 1, (table >> lane) & 1 == 1);
            }
        }
    }

    #[test]
    fn word_sim_agrees_with_scalar_netlist_eval() {
        // XOR of three inputs through two LUTs plus a carry.
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let x = n.lut_fn(&[a, b], |addr| (addr & 1 == 1) ^ (addr >> 1 & 1 == 1));
        let y = n.lut_fn(&[x, c], |addr| (addr & 1 == 1) ^ (addr >> 1 & 1 == 1));
        let m = n.carry(a, b, c);
        n.mark_output("y", y);
        n.mark_output("maj", m);

        let (word_y, word_m) = {
            let mut sim = WordSim::new(&n);
            sim.eval(&[COUNTER[0], COUNTER[1], COUNTER[2]]);
            (sim.value(y), sim.value(m))
        };
        for lane in 0..8u64 {
            let bits = [lane & 1 == 1, lane >> 1 & 1 == 1, lane >> 2 & 1 == 1];
            n.eval(&bits);
            assert_eq!((word_y >> lane) & 1 == 1, n.output_value("y"));
            assert_eq!((word_m >> lane) & 1 == 1, n.output_value("maj"));
        }
    }

    #[test]
    fn word_sim_settles_registered_pipelines() {
        // Two-deep register chain: out = reg(reg(a)).
        let mut n = Netlist::new();
        let a = n.input();
        let r1 = n.reg(a);
        let r2 = n.reg(r1);
        n.mark_output("q", r2);

        let mut sim = WordSim::new(&n);
        sim.settle(&[u64::MAX], 2);
        assert_eq!(sim.value(r2), u64::MAX);
        sim.reset();
        sim.eval(&[u64::MAX]);
        assert_eq!(sim.value(r2), 0);
    }

    #[test]
    fn support_and_cone_track_register_d_pins() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let _unused = n.input();
        let x = n.lut_fn(&[a, b], |addr| addr & 1 == 1 && addr >> 1 & 1 == 1);
        let r = n.reg(x);
        n.mark_output("q", r);
        let support = input_support(&n, r);
        assert_eq!(support, vec![a, b]);
        assert!(fanin_cone(&n, r).contains(&x.index()));
    }
}
