//! Instruction-stream dataflow analysis: abstract interpretation over
//! configuration programs.
//!
//! A [`ConfigProgram`] is the beat-timed sequence of operations the host
//! performs against the device's distributed query memory: LUT-bank
//! writes (one 6-bit instruction word per bank), scan reads over a bank
//! range, and configuration scrubs. One linear pass over the timeline
//! tracks per-bank define/use state and proves three stream-level
//! properties the netlist checks cannot see:
//!
//! * no config write is shadowed by a later write before any read
//!   observes it ([`RuleId::ConfigShadowedWrite`], Warn — the first
//!   write was dead host work, usually a queue reorder bug);
//! * no scan reads a bank that was never written — an uninitialised
//!   LUT bank scores garbage silently ([`RuleId::ConfigReadUnwritten`],
//!   Error; out-of-shape bank indices report under the same rule);
//! * no live range (first write to last read) outruns the
//!   `fabp-resilience` scrub interval without an intervening scrub
//!   ([`RuleId::ConfigScrubGap`], Warn — an SEU in that window would
//!   go uncorrected for longer than the deployment's MTTR budget).

use fabp_encoding::bitstream::PackedQuery;
use fabp_lint::{Finding, ModuleStats, Report, RuleId};
use fabp_resilience::ConfigScrubber;

/// Shape of the configuration address space being programmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceShape {
    /// Number of addressable 6-bit LUT banks (one per query element;
    /// 750 at the paper's deployment width).
    pub banks: usize,
    /// Beats between scrubs before a live range is considered exposed.
    pub scrub_interval_beats: u64,
}

impl Default for DeviceShape {
    fn default() -> DeviceShape {
        DeviceShape {
            banks: 750,
            scrub_interval_beats: ConfigScrubber::DEFAULT_INTERVAL_BEATS,
        }
    }
}

/// One configuration operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigOp {
    /// Write a 6-bit instruction word into a LUT bank.
    Write {
        /// Target bank index.
        bank: usize,
        /// The 6-bit instruction word (low six bits used).
        bits: u8,
    },
    /// A scan pass reading banks `first..=last`.
    Read {
        /// First bank read (inclusive).
        first: usize,
        /// Last bank read (inclusive).
        last: usize,
    },
    /// A full configuration scrub (readback + repair).
    Scrub,
}

/// A configuration operation stamped with its AXI beat time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOp {
    /// Beat at which the operation lands.
    pub beat: u64,
    /// The operation.
    pub op: ConfigOp,
}

/// A named, beat-timed configuration program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigProgram {
    /// Report name (`config-` + stream name for the shipped corpus).
    pub name: String,
    /// Operations in program order.
    pub ops: Vec<TimedOp>,
}

impl ConfigProgram {
    /// The canonical deployment schedule for a packed query: write every
    /// instruction word, then scan continuously for `scan_beats`, with a
    /// scrub at every interval boundary. This is the program the shipped
    /// streams are checked under.
    pub fn load_scan_scrub(
        name: impl Into<String>,
        packed: &PackedQuery,
        shape: &DeviceShape,
        scan_beats: u64,
    ) -> ConfigProgram {
        let mut ops = Vec::new();
        let len = packed.len();
        for bank in 0..len {
            ops.push(TimedOp {
                beat: bank as u64,
                op: ConfigOp::Write {
                    bank,
                    bits: packed.bits_at(bank),
                },
            });
        }
        let load_done = len as u64;
        let last = len.saturating_sub(1);
        let mut beat = load_done;
        let end = load_done + scan_beats;
        // Scrub at every interval boundary covering the scan window.
        let mut next_scrub = 0u64;
        while next_scrub <= end {
            if next_scrub >= load_done {
                ops.push(TimedOp {
                    beat: next_scrub,
                    op: ConfigOp::Scrub,
                });
            }
            next_scrub += shape.scrub_interval_beats;
        }
        // Reads at the start and end of the scan window.
        ops.push(TimedOp {
            beat,
            op: ConfigOp::Read { first: 0, last },
        });
        beat = end;
        ops.push(TimedOp {
            beat,
            op: ConfigOp::Read { first: 0, last },
        });
        ops.sort_by_key(|t| t.beat);
        ConfigProgram {
            name: name.into(),
            ops,
        }
    }
}

#[derive(Clone, Copy)]
struct BankState {
    read_since_write: bool,
    write_beat: u64,
}

/// Checks one configuration program against a device shape. The report's
/// `stats.nodes` is the operation count; all other stats are zero (no
/// netlist behind a stream report, same convention as `fabp_lint`'s
/// stream rules).
pub fn check_config_program(program: &ConfigProgram, shape: &DeviceShape) -> Report {
    let mut report = Report::new(program.name.clone());
    report.stats = ModuleStats {
        nodes: program.ops.len(),
        ..ModuleStats::default()
    };
    let mut banks: Vec<Option<BankState>> = vec![None; shape.banks];
    let mut first_write: Option<u64> = None;
    let mut last_read: Option<u64> = None;
    let mut scrubs: Vec<u64> = Vec::new();
    let mut sorted = true;
    let mut prev_beat = 0u64;

    for timed in &program.ops {
        if timed.beat < prev_beat {
            sorted = false;
        }
        prev_beat = timed.beat;
        match timed.op {
            ConfigOp::Write { bank, bits } => {
                if bank >= shape.banks {
                    report.findings.push(Finding::new(
                        RuleId::ConfigReadUnwritten,
                        None,
                        format!(
                            "beat {}: write of {:#04x} targets bank {bank}, outside the \
                             device shape ({} banks)",
                            timed.beat, bits, shape.banks
                        ),
                    ));
                    continue;
                }
                if let Some(state) = banks[bank] {
                    if !state.read_since_write {
                        report.findings.push(Finding::new(
                            RuleId::ConfigShadowedWrite,
                            None,
                            format!(
                                "beat {}: write to bank {bank} shadows the beat-{} write \
                                 before any scan read observed it",
                                timed.beat, state.write_beat
                            ),
                        ));
                    }
                }
                banks[bank] = Some(BankState {
                    read_since_write: false,
                    write_beat: timed.beat,
                });
                first_write.get_or_insert(timed.beat);
            }
            ConfigOp::Read { first, last } => {
                let clamped_last = last.min(shape.banks.saturating_sub(1));
                if last >= shape.banks {
                    report.findings.push(Finding::new(
                        RuleId::ConfigReadUnwritten,
                        None,
                        format!(
                            "beat {}: scan read {first}..={last} runs past the device \
                             shape ({} banks)",
                            timed.beat, shape.banks
                        ),
                    ));
                }
                let mut unwritten: Vec<usize> = Vec::new();
                for (bank, slot) in banks.iter_mut().enumerate() {
                    if bank < first || bank > clamped_last {
                        continue;
                    }
                    match slot.as_mut() {
                        Some(state) => state.read_since_write = true,
                        None => unwritten.push(bank),
                    }
                }
                if !unwritten.is_empty() {
                    let shown: Vec<String> =
                        unwritten.iter().take(6).map(|b| b.to_string()).collect();
                    let more = unwritten.len().saturating_sub(6);
                    let suffix = if more > 0 {
                        format!(" (+{more} more)")
                    } else {
                        String::new()
                    };
                    report.findings.push(Finding::new(
                        RuleId::ConfigReadUnwritten,
                        None,
                        format!(
                            "beat {}: scan reads {} never-written bank(s): {}{suffix}",
                            timed.beat,
                            unwritten.len(),
                            shown.join(", ")
                        ),
                    ));
                }
                last_read = Some(timed.beat.max(last_read.unwrap_or(0)));
            }
            ConfigOp::Scrub => scrubs.push(timed.beat),
        }
    }

    debug_assert!(sorted, "config program ops must be beat-sorted");

    // Live-range vs scrub-interval check: between consecutive coverage
    // points (live-range start, each scrub, live-range end) the
    // configuration must not sit unscrubbed longer than the interval.
    if let (Some(start), Some(end)) = (first_write, last_read) {
        let mut points = vec![start];
        points.extend(scrubs.iter().copied().filter(|&s| s >= start && s <= end));
        points.push(end);
        points.sort_unstable();
        for pair in points.windows(2) {
            let gap = pair[1] - pair[0];
            if gap > shape.scrub_interval_beats {
                report.findings.push(Finding::new(
                    RuleId::ConfigScrubGap,
                    None,
                    format!(
                        "configuration live range is exposed for {gap} beats \
                         (beats {}..{}) with no scrub; the resilience interval is {}",
                        pair[0], pair[1], shape.scrub_interval_beats
                    ),
                ));
            }
        }
    }

    report
}

/// The shipped stream corpus as canonical configuration programs — the
/// dataflow half of `fabp_verify --all-modules`.
pub fn shipped_config_programs() -> Vec<(ConfigProgram, DeviceShape)> {
    let shape = DeviceShape::default();
    fabp_lint::shipped_streams()
        .into_iter()
        .map(|(name, packed)| {
            let program = ConfigProgram::load_scan_scrub(
                format!("config-{name}"),
                &packed,
                &shape,
                2 * shape.scrub_interval_beats,
            );
            (program, shape.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_shape() -> DeviceShape {
        DeviceShape {
            banks: 4,
            scrub_interval_beats: 100,
        }
    }

    fn write(beat: u64, bank: usize) -> TimedOp {
        TimedOp {
            beat,
            op: ConfigOp::Write { bank, bits: 0b10 },
        }
    }

    fn read(beat: u64, first: usize, last: usize) -> TimedOp {
        TimedOp {
            beat,
            op: ConfigOp::Read { first, last },
        }
    }

    #[test]
    fn clean_program_has_no_findings() {
        let program = ConfigProgram {
            name: "clean".into(),
            ops: vec![write(0, 0), write(1, 1), read(2, 0, 1)],
        };
        let report = check_config_program(&program, &tiny_shape());
        assert!(report.findings.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn shadowed_write_warns() {
        let program = ConfigProgram {
            name: "shadow".into(),
            ops: vec![write(0, 2), write(1, 2), read(2, 2, 2)],
        };
        let report = check_config_program(&program, &tiny_shape());
        let hits = report.findings_for(RuleId::ConfigShadowedWrite);
        assert_eq!(hits.len(), 1);
        // Rewritten after a read is fine.
        let program = ConfigProgram {
            name: "rewrite".into(),
            ops: vec![write(0, 2), read(1, 2, 2), write(2, 2), read(3, 2, 2)],
        };
        let report = check_config_program(&program, &tiny_shape());
        assert!(report.findings_for(RuleId::ConfigShadowedWrite).is_empty());
    }

    #[test]
    fn unwritten_and_out_of_shape_reads_error() {
        let program = ConfigProgram {
            name: "uninit".into(),
            ops: vec![write(0, 0), read(1, 0, 3), read(2, 0, 9)],
        };
        let report = check_config_program(&program, &tiny_shape());
        let hits = report.findings_for(RuleId::ConfigReadUnwritten);
        assert!(hits.len() >= 2, "{}", report.render_text());
        assert_eq!(report.max_severity(), Some(fabp_lint::Severity::Error));
    }

    #[test]
    fn scrub_gap_warns_and_scrubs_silence_it() {
        let exposed = ConfigProgram {
            name: "exposed".into(),
            ops: vec![write(0, 0), read(500, 0, 0)],
        };
        let report = check_config_program(&exposed, &tiny_shape());
        assert_eq!(report.findings_for(RuleId::ConfigScrubGap).len(), 1);

        let scrubbed = ConfigProgram {
            name: "scrubbed".into(),
            ops: vec![
                write(0, 0),
                TimedOp {
                    beat: 90,
                    op: ConfigOp::Scrub,
                },
                TimedOp {
                    beat: 180,
                    op: ConfigOp::Scrub,
                },
                TimedOp {
                    beat: 270,
                    op: ConfigOp::Scrub,
                },
                TimedOp {
                    beat: 360,
                    op: ConfigOp::Scrub,
                },
                TimedOp {
                    beat: 450,
                    op: ConfigOp::Scrub,
                },
                read(500, 0, 0),
            ],
        };
        let report = check_config_program(&scrubbed, &tiny_shape());
        assert!(report.findings_for(RuleId::ConfigScrubGap).is_empty());
    }

    #[test]
    fn shipped_programs_are_clean() {
        for (program, shape) in shipped_config_programs() {
            let report = check_config_program(&program, &shape);
            assert!(
                report.findings.is_empty(),
                "{}: {}",
                program.name,
                report.render_text()
            );
        }
    }

    #[test]
    fn canonical_schedule_covers_the_scan_window() {
        let (name, packed) = fabp_lint::shipped_streams().remove(1); // MFSRW
        let shape = DeviceShape::default();
        let program = ConfigProgram::load_scan_scrub(name.clone(), &packed, &shape, 8192);
        let scrubs = program
            .ops
            .iter()
            .filter(|t| t.op == ConfigOp::Scrub)
            .count();
        assert!(scrubs >= 2, "{scrubs}");
        assert_eq!(program.name, name);
    }
}
