//! X-propagation / reset analysis: 3-valued abstract simulation from
//! power-on.
//!
//! Unlike [`crate::bitsim::WordSim`], which models the post-reset state,
//! this engine starts every register at **X** (unknown power-on
//! contents) and abstractly simulates with all primary inputs held at
//! **D** (defined-but-arbitrary). It proves two reset-domain properties
//! the synthesis DRC cannot see:
//!
//! * every register reaches a defined value within a bounded number of
//!   clock edges ([`RuleId::XResetStuck`] otherwise) — a register that
//!   never flushes its power-on X (e.g. an enable-feedback loop with no
//!   reset path) silently corrupts scores on the real device until a
//!   full reconfiguration;
//! * no X can reach a named output after that window
//!   ([`RuleId::XReachesOutput`]).

use fabp_fpga::netlist::{Netlist, NodeKind};
use fabp_lint::{Finding, RuleId};
use std::collections::HashMap;

/// The 4-valued abstract domain: constants, defined-unknown, unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AValue {
    /// Constant 0 regardless of inputs.
    C0,
    /// Constant 1 regardless of inputs.
    C1,
    /// Defined: some function of the (defined) primary inputs.
    D,
    /// Unknown: may still depend on power-on register contents.
    X,
}

/// Abstract LUT evaluation: enumerate every assignment of the D and X
/// pins (constants stay fixed). The output is X only if, for some fixed
/// assignment of the D pins, the X pins can still change it; it is D if
/// the D pins matter but the X pins never do; and a constant when
/// nothing matters. At most 2^6 = 64 concrete evaluations.
fn abstract_eval(pins: &[AValue], eval: &dyn Fn(u8) -> bool) -> AValue {
    let d_pins: Vec<usize> = (0..pins.len()).filter(|&i| pins[i] == AValue::D).collect();
    let x_pins: Vec<usize> = (0..pins.len()).filter(|&i| pins[i] == AValue::X).collect();
    let mut base = 0u8;
    for (i, pin) in pins.iter().enumerate() {
        if *pin == AValue::C1 {
            base |= 1 << i;
        }
    }
    let mut any_x_varies = false;
    let mut first: Option<bool> = None;
    let mut d_varies = false;
    for d_assign in 0..(1u16 << d_pins.len()) {
        let mut addr = base;
        for (t, &pin) in d_pins.iter().enumerate() {
            if (d_assign >> t) & 1 == 1 {
                addr |= 1 << pin;
            }
        }
        let mut x_first: Option<bool> = None;
        for x_assign in 0..(1u16 << x_pins.len()) {
            let mut full = addr;
            for (t, &pin) in x_pins.iter().enumerate() {
                if (x_assign >> t) & 1 == 1 {
                    full |= 1 << pin;
                }
            }
            let out = eval(full);
            match x_first {
                None => x_first = Some(out),
                Some(prev) if prev != out => any_x_varies = true,
                _ => {}
            }
            match first {
                None => first = Some(out),
                Some(prev) if prev != out => d_varies = true,
                _ => {}
            }
        }
    }
    if any_x_varies {
        AValue::X
    } else if d_varies {
        AValue::D
    } else if first == Some(true) {
        AValue::C1
    } else {
        AValue::C0
    }
}

/// Runs the power-on analysis: `cycles` clock edges with defined inputs.
/// Returns V004 findings for registers that never leave X and V005
/// findings for outputs still X at the end of the window.
pub fn check_xprop(netlist: &Netlist, cycles: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut reg_state: HashMap<usize, AValue> = netlist
        .register_state_nodes()
        .iter()
        .map(|id| (id.index(), AValue::X))
        .collect();
    let mut values = vec![AValue::X; netlist.node_count()];

    let eval_pass = |values: &mut Vec<AValue>, reg_state: &HashMap<usize, AValue>| {
        for id in netlist.node_ids() {
            let at = id.index();
            values[at] = match netlist.node_kind(id) {
                NodeKind::Input => AValue::D,
                NodeKind::Const(v) => {
                    if v {
                        AValue::C1
                    } else {
                        AValue::C0
                    }
                }
                NodeKind::Lut(lut, pins) => {
                    let pv: Vec<AValue> = pins.iter().map(|p| values[p.index()]).collect();
                    abstract_eval(&pv, &|addr| lut.eval_addr(addr))
                }
                NodeKind::Carry { a, b, cin } => {
                    let pv = [values[a.index()], values[b.index()], values[cin.index()]];
                    abstract_eval(&pv, &|addr| {
                        let (a, b, c) = (addr & 1 != 0, addr & 2 != 0, addr & 4 != 0);
                        (a && b) || (c && (a != b))
                    })
                }
                NodeKind::Reg { .. } => reg_state[&at],
            };
        }
    };

    // Cycle 0 evaluation, then `cycles` clock edges. The abstraction is
    // monotone (X is never created, only flushed), so one forward sweep
    // per edge is a sound fixpoint iteration.
    eval_pass(&mut values, &reg_state);
    for _ in 0..cycles {
        let updates: Vec<(usize, AValue)> = netlist
            .register_state_nodes()
            .iter()
            .map(|id| {
                let d = match netlist.node_kind(*id) {
                    NodeKind::Reg { d } => d,
                    _ => unreachable!("register_state_nodes returned a non-register"),
                };
                (id.index(), values[d.index()])
            })
            .collect();
        for (index, value) in updates {
            reg_state.insert(index, value);
        }
        eval_pass(&mut values, &reg_state);
    }

    for id in netlist.register_state_nodes() {
        if reg_state[&id.index()] == AValue::X {
            findings.push(Finding::new(
                RuleId::XResetStuck,
                Some(id.index()),
                format!(
                    "register n{} still holds its power-on X after {cycles} clock edges; \
                     no input-driven path flushes it",
                    id.index()
                ),
            ));
        }
    }
    for (name, node) in netlist.named_outputs() {
        if values[node.index()] == AValue::X {
            findings.push(Finding::new(
                RuleId::XReachesOutput,
                Some(node.index()),
                format!(
                    "output \"{name}\" can still observe power-on X after {cycles} clock edges"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_fpga::netlist::Netlist;

    #[test]
    fn feedforward_pipeline_flushes_x() {
        let mut n = Netlist::new();
        let a = n.input();
        let r1 = n.reg(a);
        let r2 = n.reg(r1);
        n.mark_output("q", r2);
        assert!(check_xprop(&n, 4).is_empty());
        // One cycle is not enough for a depth-2 pipeline.
        let shallow = check_xprop(&n, 1);
        assert!(shallow.iter().any(|f| f.rule == RuleId::XResetStuck));
    }

    #[test]
    fn unresettable_feedback_register_is_flagged() {
        // T-flip-flop with no reset: q' = q XOR enable. The power-on X
        // never leaves.
        let mut n = Netlist::new();
        let enable = n.input();
        let r = n.reg_dangling();
        let t = n.lut_fn(&[r, enable], |addr| (addr & 1 != 0) ^ (addr & 2 != 0));
        n.connect_reg(r, t);
        n.mark_output("q", r);
        let findings = check_xprop(&n, 16);
        assert!(findings.iter().any(|f| f.rule == RuleId::XResetStuck));
        assert!(findings.iter().any(|f| f.rule == RuleId::XReachesOutput));
    }

    #[test]
    fn masked_x_does_not_propagate() {
        // AND with constant 0 masks the X register entirely.
        let mut n = Netlist::new();
        let r = n.reg_dangling();
        let t = n.lut_fn(&[r], |addr| addr & 1 != 0);
        n.connect_reg(r, t); // feedback: stays X forever
        let zero = n.constant(false);
        let masked = n.lut_fn(&[r, zero], |addr| (addr & 1 != 0) && (addr & 2 != 0));
        n.mark_output("y", masked);
        let findings = check_xprop(&n, 4);
        assert!(findings.iter().any(|f| f.rule == RuleId::XResetStuck));
        assert!(
            !findings.iter().any(|f| f.rule == RuleId::XReachesOutput),
            "constant masking must block X"
        );
    }

    #[test]
    fn abstract_eval_classifies_all_four_values() {
        let and2 = |addr: u8| (addr & 1 != 0) && (addr & 2 != 0);
        use AValue::*;
        assert_eq!(abstract_eval(&[C1, C1], &and2), C1);
        assert_eq!(abstract_eval(&[C0, X], &and2), C0);
        assert_eq!(abstract_eval(&[D, C1], &and2), D);
        assert_eq!(abstract_eval(&[D, X], &and2), X);
        assert_eq!(abstract_eval(&[C1, X], &and2), X);
    }
}
