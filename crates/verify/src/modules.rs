//! Golden software semantics for every shipped netlist.
//!
//! A [`VerifyTarget`] pairs a `fabp-lint` shipped-module name with the
//! [`Oracle`] that states what the hardware *should* compute, as a total
//! function from primary-input bits (netlist creation order) to each
//! named output. The oracles are the scalar reference paths the rest of
//! the repository already trusts — [`Instruction::matches`] for
//! comparator cones, plain `count_ones` for the Pop-Counters — so the
//! equivalence engine in [`crate::symbolic`] checks the gate-level model
//! against the same semantics the cycle engine and encoder tests use.

use fabp_bio::alphabet::Nucleotide;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::instruction::Instruction;
use fabp_lint::{find_module, ShippedModule};

/// Golden semantics of one shipped module, total over all input bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// The two-LUT comparator cell: inputs `Q[0..6]`, `Ref^i` (MSB,
    /// LSB), `Ref^{i-1}[1]`, `Ref^{i-2}` (MSB, LSB); output `match` is
    /// [`Instruction::matches`].
    Comparator,
    /// A Pop-Counter: `width` input bits, outputs `sum{i}` are the bits
    /// of the population count, settled after `latency` clock edges.
    Popcount {
        /// Input width in bits.
        width: usize,
        /// Pipeline latency in clock edges (0 for the flat counters).
        latency: usize,
    },
    /// A full alignment instance: per-element reference bits then
    /// per-element instruction bits; outputs `match{i}`, `score{i}`,
    /// `hit`.
    Align {
        /// Query length in elements (3 per amino acid).
        elements: usize,
        /// Hit threshold on the score.
        threshold: u32,
    },
}

/// The golden output values for one full input assignment.
///
/// Computed once per assignment, then queried per output name, so a
/// 53-output alignment instance does not recompute 45 comparators per
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenValues {
    /// Comparator result.
    Comparator {
        /// The `match` output.
        matched: bool,
    },
    /// Pop-Counter result.
    Popcount {
        /// Population count of the inputs.
        count: u64,
    },
    /// Alignment-instance result.
    Align {
        /// Per-element match bits.
        matches: Vec<bool>,
        /// The thresholded score.
        score: u64,
        /// `score >= threshold`.
        hit: bool,
    },
}

impl GoldenValues {
    /// The golden value of the named output, or `None` for an output
    /// name the oracle does not model.
    pub fn output(&self, name: &str) -> Option<bool> {
        match self {
            GoldenValues::Comparator { matched } => (name == "match").then_some(*matched),
            GoldenValues::Popcount { count } => {
                let i: u32 = name.strip_prefix("sum")?.parse().ok()?;
                Some(i < 64 && (count >> i) & 1 == 1)
            }
            GoldenValues::Align {
                matches,
                score,
                hit,
            } => {
                if name == "hit" {
                    return Some(*hit);
                }
                if let Some(i) = name.strip_prefix("score") {
                    let i: u32 = i.parse().ok()?;
                    return Some(i < 64 && (score >> i) & 1 == 1);
                }
                let i: usize = name.strip_prefix("match")?.parse().ok()?;
                matches.get(i).copied()
            }
        }
    }
}

fn bit(inputs: &[bool], at: usize) -> u8 {
    u8::from(inputs[at])
}

impl Oracle {
    /// Clock edges to hold inputs before outputs are valid.
    pub fn latency(&self) -> usize {
        match self {
            Oracle::Popcount { latency, .. } => *latency,
            _ => 0,
        }
    }

    /// Number of primary inputs the oracle models.
    pub fn input_count(&self) -> usize {
        match self {
            Oracle::Comparator => 11,
            Oracle::Popcount { width, .. } => *width,
            Oracle::Align { elements, .. } => elements * 8,
        }
    }

    /// Evaluates the golden semantics on one full input assignment in
    /// netlist creation order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    pub fn eval(&self, inputs: &[bool]) -> GoldenValues {
        assert_eq!(inputs.len(), self.input_count(), "oracle input width");
        match *self {
            Oracle::Comparator => {
                // Creation order: Q[0..6], ref (MSB, LSB), prev1 MSB,
                // prev2 (MSB, LSB) — see `build_comparator_netlist`.
                let bits = (0..6).fold(0u8, |acc, k| acc | bit(inputs, k) << (5 - k));
                let reference = Nucleotide::from_code2(bit(inputs, 6) << 1 | bit(inputs, 7));
                let prev1 = Nucleotide::from_code2(bit(inputs, 8) << 1);
                let prev2 = Nucleotide::from_code2(bit(inputs, 9) << 1 | bit(inputs, 10));
                let matched =
                    Instruction::from_bits(bits).matches(reference, Some(prev1), Some(prev2));
                GoldenValues::Comparator { matched }
            }
            Oracle::Popcount { .. } => GoldenValues::Popcount {
                count: inputs.iter().filter(|&&b| b).count() as u64,
            },
            Oracle::Align {
                elements,
                threshold,
            } => {
                // Creation order: per-element (ref MSB, ref LSB) for all
                // elements, then per-element Q[0..6].
                let reference: Vec<Nucleotide> = (0..elements)
                    .map(|i| {
                        Nucleotide::from_code2(bit(inputs, 2 * i) << 1 | bit(inputs, 2 * i + 1))
                    })
                    .collect();
                let q_base = 2 * elements;
                let matches: Vec<bool> = (0..elements)
                    .map(|i| {
                        let bits = (0..6).fold(0u8, |acc, k| {
                            acc | bit(inputs, q_base + 6 * i + k) << (5 - k)
                        });
                        let prev1 = i.checked_sub(1).map(|j| reference[j]);
                        let prev2 = i.checked_sub(2).map(|j| reference[j]);
                        Instruction::from_bits(bits).matches(reference[i], prev1, prev2)
                    })
                    .collect();
                let score = matches.iter().filter(|&&m| m).count() as u64;
                GoldenValues::Align {
                    hit: score >= u64::from(threshold),
                    score,
                    matches,
                }
            }
        }
    }
}

/// One shipped module paired with its golden oracle.
#[derive(Debug, Clone, Copy)]
pub struct VerifyTarget {
    /// The `fabp-lint` shipped-module name.
    pub name: &'static str,
    /// Golden semantics of the module.
    pub oracle: Oracle,
}

impl VerifyTarget {
    /// Rebuilds the shipped netlist this target verifies. Resolved
    /// through [`fabp_lint::find_module`], so the verified netlist *is*
    /// the deployed one — a registry drift panics here, and a unit test
    /// pins the two registries together.
    pub fn module(&self) -> ShippedModule {
        find_module(self.name)
            .unwrap_or_else(|| panic!("verify target {:?} is not a shipped module", self.name))
    }
}

/// Every shipped module with its oracle, in `shipped_modules` order.
///
/// Pipeline latencies are pinned as constants (and cross-checked against
/// `PipelinedPopCounter::latency` by a unit test) so building the
/// registry stays free.
pub fn verify_targets() -> Vec<VerifyTarget> {
    let pop = |width, latency| Oracle::Popcount { width, latency };
    vec![
        VerifyTarget {
            name: "comparator-cell",
            oracle: Oracle::Comparator,
        },
        VerifyTarget {
            name: "pop36-handcrafted",
            oracle: pop(36, 0),
        },
        VerifyTarget {
            name: "pop150-handcrafted",
            oracle: pop(150, 0),
        },
        VerifyTarget {
            name: "pop150-tree",
            oracle: pop(150, 0),
        },
        VerifyTarget {
            name: "pop750-handcrafted",
            oracle: pop(750, 0),
        },
        VerifyTarget {
            name: "pop750-pipelined",
            oracle: pop(750, 8),
        },
        VerifyTarget {
            name: "pop72-pipelined-tree",
            oracle: pop(72, 7),
        },
        VerifyTarget {
            name: "align-mfsrw-t10",
            oracle: Oracle::Align {
                elements: 15,
                threshold: 10,
            },
        },
        VerifyTarget {
            name: "align-15aa-t30",
            oracle: Oracle::Align {
                elements: 45,
                threshold: 30,
            },
        },
    ]
}

/// Looks a verify target up by shipped-module name.
pub fn find_target(name: &str) -> Option<VerifyTarget> {
    verify_targets().into_iter().find(|t| t.name == name)
}

/// Encodes the query behind an alignment target (test convenience).
pub fn encoded_query(aa: &str) -> EncodedQuery {
    let protein = aa
        .parse()
        .unwrap_or_else(|e| panic!("protein {aa:?} must parse: {e}"));
    EncodedQuery::from_protein(&protein)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_fpga::pipeline::PipelinedPopCounter;
    use fabp_fpga::popcount::PopStyle;

    #[test]
    fn every_target_is_a_shipped_module_and_vice_versa() {
        let targets = verify_targets();
        let shipped = fabp_lint::shipped_modules();
        assert_eq!(targets.len(), shipped.len(), "registries drifted");
        for (t, m) in targets.iter().zip(&shipped) {
            assert_eq!(t.name, m.name, "registry order drifted");
        }
    }

    #[test]
    fn oracle_input_counts_match_the_netlists() {
        for target in verify_targets() {
            let netlist = target.module().build();
            assert_eq!(
                netlist.input_nodes().len(),
                target.oracle.input_count(),
                "{}",
                target.name
            );
        }
    }

    #[test]
    fn pinned_latencies_match_the_pipeline_builders() {
        assert_eq!(
            PipelinedPopCounter::build(750, PopStyle::HandCrafted).latency(),
            8
        );
        assert_eq!(
            PipelinedPopCounter::build(72, PopStyle::TreeAdder).latency(),
            7
        );
        for target in verify_targets() {
            if target.oracle.latency() == 0 {
                let netlist = target.module().build();
                assert_eq!(netlist.resources().ffs, 0, "{} should be flat", target.name);
            }
        }
    }

    #[test]
    fn comparator_oracle_agrees_with_the_cell() {
        use fabp_fpga::comparator::ComparatorCell;
        let cell = ComparatorCell::new();
        let oracle = Oracle::Comparator;
        for assignment in 0..(1u32 << 11) {
            let inputs: Vec<bool> = (0..11).map(|k| (assignment >> k) & 1 == 1).collect();
            let bits = (0..6).fold(0u8, |acc, k| acc | bit(&inputs, k) << (5 - k));
            let expected = cell.matches(
                Instruction::from_bits(bits),
                Nucleotide::from_code2(bit(&inputs, 6) << 1 | bit(&inputs, 7)),
                Some(Nucleotide::from_code2(bit(&inputs, 8) << 1)),
                Some(Nucleotide::from_code2(
                    bit(&inputs, 9) << 1 | bit(&inputs, 10),
                )),
            );
            assert_eq!(oracle.eval(&inputs).output("match"), Some(expected));
        }
    }

    #[test]
    fn align_oracle_matches_instance_eval() {
        use fabp_fpga::instance::AlignmentInstance;
        let query = encoded_query("MFSRW");
        let mut instance = AlignmentInstance::build(&query, 10);
        let oracle = Oracle::Align {
            elements: 15,
            threshold: 10,
        };
        let window: Vec<Nucleotide> = "AUGUUUUCACGAUGGUAA"
            .parse::<fabp_bio::seq::RnaSeq>()
            .expect("rna")
            .into_inner();
        let (score, hit) = instance.eval(&window);
        // Rebuild the same input vector the instance drives.
        let mut inputs = Vec::new();
        for n in &window[..15] {
            inputs.push(n.code2() & 0b10 != 0);
            inputs.push(n.code2() & 0b01 != 0);
        }
        for instr in query.instructions() {
            for k in 0..6 {
                inputs.push((instr.bits() >> (5 - k)) & 1 == 1);
            }
        }
        let golden = oracle.eval(&inputs);
        assert_eq!(golden.output("hit"), Some(hit));
        for i in 0..8 {
            assert_eq!(
                golden.output(&format!("score{i}")),
                Some((score >> i) & 1 == 1)
            );
        }
    }
}
