//! # fabp-verify — static equivalence proofs for the shipped hardware
//!
//! Where `fabp-lint` is the DRC — structural rules a synthesis toolchain
//! would flag — this crate answers the question the DRC cannot: *does
//! the shipped netlist compute the right function?* Three engines run
//! over every module of [`fabp_lint::shipped_modules`] and every shipped
//! instruction stream:
//!
//! * **Symbolic equivalence** ([`symbolic`]): 64 test patterns per
//!   bit-parallel evaluation ([`bitsim::WordSim`]), plus exhaustive
//!   input-cone enumeration for every output whose primary-input support
//!   fits the cone bound. Checked against the golden software semantics
//!   ([`modules::Oracle`] — `Instruction::matches`, `count_ones`), with
//!   concrete counterexample input vectors on disagreement
//!   (`FABP-V001`/`V002`, with `V003` marking pattern-only coverage).
//! * **X-propagation / reset analysis** ([`xprop`]): 3-valued abstract
//!   simulation from power-on proving every register flushes its unknown
//!   state within a bounded number of clocks and no X reaches an output
//!   (`FABP-V004`/`V005`).
//! * **Instruction-stream dataflow** ([`dataflow`]): abstract
//!   interpretation over beat-timed configuration programs — shadowed
//!   writes, reads of never-written LUT banks, live ranges outrunning
//!   the `fabp-resilience` scrub interval (`FABP-V006`..`V008`).
//!
//! Findings flow through the shared `fabp-lint` diagnostics model
//! ([`fabp_lint::RuleId`], [`fabp_lint::Report`]), so the `fabp_verify`
//! binary renders the same text/JSON and gates CI with
//! `--all-modules --deny warn` exactly like `fabp_lint`. See
//! `docs/VERIFICATION.md` for the engines' soundness caveats.
//!
//! ```
//! let report = fabp_verify::verify_module(
//!     &fabp_verify::find_target("comparator-cell").expect("shipped"),
//!     &fabp_verify::VerifyConfig::default(),
//! );
//! assert!(report.findings.is_empty(), "{}", report.render_text());
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bitsim;
pub mod dataflow;
pub mod modules;
pub mod symbolic;
pub mod xprop;

pub use bitsim::{fanin_cone, input_support, WordSim};
pub use dataflow::{
    check_config_program, shipped_config_programs, ConfigOp, ConfigProgram, DeviceShape, TimedOp,
};
pub use modules::{find_target, verify_targets, GoldenValues, Oracle, VerifyTarget};
pub use symbolic::check_equivalence;
pub use xprop::check_xprop;

use fabp_fpga::netlist::Netlist;
use fabp_lint::{Finding, LintConfig, Report, RuleId, Severity};

/// Tunable bounds of the verification engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Maximum primary-input support width for exhaustive cone
    /// enumeration. The default (12) covers every comparator cone (11
    /// inputs) at ≤ 64 bit-parallel evaluations per output.
    pub cone_bound: usize,
    /// Seeded random pattern rounds appended to the deterministic
    /// schedule for outputs wider than the cone bound.
    pub random_rounds: usize,
    /// Clock edges the X-propagation engine allows for power-on state to
    /// flush. Must be at least the deepest shipped pipeline (8).
    pub xprop_cycles: usize,
    /// Cap on reported equivalence counterexamples per module.
    pub max_counterexamples: usize,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            cone_bound: 12,
            random_rounds: 16,
            xprop_cycles: 16,
            max_counterexamples: 4,
        }
    }
}

/// Verifies one netlist against its golden oracle: structural gate,
/// then the symbolic-equivalence and X-propagation engines.
///
/// The structural lint runs first because both engines assume an
/// acyclic, fully-connected netlist; on Error-level structural findings
/// the functional engines are skipped and a single `FABP-V003` (Info)
/// records that equivalence is unverified. Structural findings
/// themselves stay in `fabp_lint`'s report — this report carries only
/// the `FABP-V*` family.
pub fn verify_netlist(
    name: &str,
    netlist: &Netlist,
    oracle: &Oracle,
    config: &VerifyConfig,
) -> Report {
    let lint = fabp_lint::check_netlist(name, netlist, &LintConfig::default());
    let mut report = Report::new(name);
    report.stats = lint.stats.clone();
    if lint.max_severity() == Some(Severity::Error) {
        report.findings.push(Finding::new(
            RuleId::EquivUnverified,
            None,
            format!(
                "functional verification skipped: {} structural error(s) present \
                 (run fabp_lint for the FABP-N findings)",
                lint.count(Severity::Error)
            ),
        ));
        return report;
    }
    report
        .findings
        .extend(symbolic::check_equivalence(name, netlist, oracle, config));
    report
        .findings
        .extend(xprop::check_xprop(netlist, config.xprop_cycles));
    report
}

/// Verifies one shipped target (rebuilds its netlist, then
/// [`verify_netlist`]).
pub fn verify_module(target: &VerifyTarget, config: &VerifyConfig) -> Report {
    verify_netlist(
        target.name,
        &target.module().build(),
        &target.oracle,
        config,
    )
}

/// Verifies everything the repository ships: every netlist of
/// [`verify_targets`] and every canonical configuration program of
/// [`shipped_config_programs`]. This is the corpus behind the
/// `fabp_verify --all-modules` CI gate.
pub fn verify_all(config: &VerifyConfig) -> Vec<Report> {
    let mut reports: Vec<Report> = verify_targets()
        .iter()
        .map(|t| verify_module(t, config))
        .collect();
    for (program, shape) in shipped_config_programs() {
        reports.push(check_config_program(&program, &shape));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_cell_is_proven_equivalent() {
        let target = find_target("comparator-cell").unwrap();
        let report = verify_module(&target, &VerifyConfig::default());
        assert!(report.findings.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn structural_errors_gate_the_functional_engines() {
        // A combinational loop would panic the word simulator; the
        // structural gate must catch it first.
        let target = find_target("comparator-cell").unwrap();
        let mut netlist = target.module().build();
        let luts: Vec<_> = netlist
            .node_ids()
            .filter(|&id| {
                matches!(
                    netlist.node_kind(id),
                    fabp_fpga::netlist::NodeKind::Lut(_, _)
                )
            })
            .collect();
        netlist.rewire_lut_pin(luts[0], 0, luts[0]);
        let report = verify_netlist("looped", &netlist, &target.oracle, &VerifyConfig::default());
        let skipped = report.findings_for(RuleId::EquivUnverified);
        assert_eq!(skipped.len(), 1, "{}", report.render_text());
        assert_eq!(report.findings.len(), 1);
        assert!(report.passes(Severity::Warn), "V003 is informational");
    }
}
