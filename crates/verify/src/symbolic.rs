//! Symbolic bit-parallel equivalence checking against the golden
//! semantics.
//!
//! Two regimes per named output, chosen by the width of its primary-input
//! support cone:
//!
//! * **Exhaustive** (support ≤ `cone_bound`): the first six support
//!   inputs are driven with the lane-counter words so each 64-lane
//!   evaluation covers 64 assignments; the remaining support inputs are
//!   enumerated across evaluations. Every reachable input combination of
//!   the cone is checked — a disagreement is a *proof* of inequivalence
//!   ([`RuleId::ConeCounterexample`]) and agreement is a proof of
//!   equivalence over that cone.
//! * **Pattern-based** (support wider than the bound): a structured
//!   schedule — all-zeros, all-ones, walking ones/zeros, aligned 6-input
//!   counter sweeps, and seeded random words — runs 64 patterns per
//!   evaluation. The counter sweeps are deterministic, not
//!   probabilistic: for the shipped Pop-Counters they enumerate every
//!   first-stage `pop6` input combination, and a flipped first-stage
//!   table bit shifts the order-weighted sum by ±2^j, which is always
//!   visible on the `sum{j}` outputs. Disagreements report
//!   [`RuleId::EquivCounterexample`]; outputs that stay clean are
//!   summarised as [`RuleId::EquivUnverified`] (Info) because patterns
//!   alone are not a proof.

use crate::bitsim::{input_support, WordSim, COUNTER};
use crate::modules::Oracle;
use crate::VerifyConfig;
use fabp_fpga::netlist::{Netlist, NodeId};
use fabp_lint::{Finding, RuleId};

/// Deterministic SplitMix64 stream for the random pattern rounds.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Renders one concrete counterexample input vector. Short vectors are
/// printed as a full creation-order bitstring; wide ones list only the
/// inputs that are 1.
fn render_inputs(inputs: &[bool]) -> String {
    if inputs.len() <= 96 {
        let bits: String = inputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
        format!("inputs (creation order) {bits}")
    } else {
        let ones: Vec<String> = inputs
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| format!("in{i}"))
            .collect();
        format!("inputs set to 1: {{{}}}, all others 0", ones.join(", "))
    }
}

/// Extracts lane `lane` of the input words as a scalar assignment.
fn lane_inputs(words: &[u64], lane: u32) -> Vec<bool> {
    words.iter().map(|w| (w >> lane) & 1 == 1).collect()
}

struct Counterexample {
    output: String,
    node: NodeId,
    actual: bool,
    expected: bool,
    inputs: Vec<bool>,
}

impl Counterexample {
    fn finding(&self, rule: RuleId, proved: bool) -> Finding {
        let regime = if proved {
            "exhaustive cone enumeration"
        } else {
            "pattern simulation"
        };
        Finding::new(
            rule,
            Some(self.node.index()),
            format!(
                "output \"{}\" disagrees with the golden oracle under {}: netlist={} golden={} for {}",
                self.output,
                regime,
                u8::from(self.actual),
                u8::from(self.expected),
                render_inputs(&self.inputs)
            ),
        )
    }
}

/// Checks every named output of `netlist` against `oracle`.
///
/// The caller must have gated on the structural lint first: this routine
/// assumes an acyclic netlist with no dangling pins.
pub fn check_equivalence(
    name: &str,
    netlist: &Netlist,
    oracle: &Oracle,
    config: &VerifyConfig,
) -> Vec<Finding> {
    let outputs = netlist.named_outputs();
    let n_in = netlist.input_nodes().len();
    let latency = oracle.latency();
    let mut sim = WordSim::new(netlist);
    let mut findings = Vec::new();
    let mut counterexamples = 0usize;

    // Partition outputs by support width.
    let mut provable: Vec<(String, NodeId, Vec<usize>)> = Vec::new();
    let mut unproven: Vec<(String, NodeId)> = Vec::new();
    let input_index: std::collections::HashMap<usize, usize> = netlist
        .input_nodes()
        .iter()
        .enumerate()
        .map(|(ordinal, id)| (id.index(), ordinal))
        .collect();
    for (out_name, node) in outputs {
        let support: Vec<usize> = input_support(netlist, node)
            .iter()
            .map(|id| input_index[&id.index()])
            .collect();
        if support.len() <= config.cone_bound {
            provable.push((out_name, node, support));
        } else {
            unproven.push((out_name, node));
        }
    }

    // Exhaustive regime: prove each narrow cone outright.
    for (out_name, node, support) in &provable {
        if counterexamples >= config.max_counterexamples {
            break;
        }
        let lo = support.len().min(6);
        let hi_bits = support.len().saturating_sub(6);
        let mut broken = false;
        for hi in 0..(1u64 << hi_bits) {
            let mut words = vec![0u64; n_in];
            for (j, &ordinal) in support.iter().take(lo).enumerate() {
                words[ordinal] = COUNTER[j];
            }
            for (t, &ordinal) in support.iter().skip(6).enumerate() {
                words[ordinal] = if (hi >> t) & 1 == 1 { u64::MAX } else { 0 };
            }
            sim.reset();
            sim.settle(&words, latency);
            let actual_word = sim.value(*node);
            for lane in 0..64u32 {
                let inputs = lane_inputs(&words, lane);
                let expected = oracle
                    .eval(&inputs)
                    .output(out_name)
                    .unwrap_or_else(|| panic!("{name}: oracle does not model output {out_name:?}"));
                let actual = (actual_word >> lane) & 1 == 1;
                if actual != expected {
                    findings.push(
                        Counterexample {
                            output: out_name.clone(),
                            node: *node,
                            actual,
                            expected,
                            inputs,
                        }
                        .finding(RuleId::ConeCounterexample, true),
                    );
                    counterexamples += 1;
                    broken = true;
                    break;
                }
            }
            if broken {
                break;
            }
        }
    }

    // Pattern regime for the wide cones.
    if !unproven.is_empty() && counterexamples < config.max_counterexamples {
        let mut bad: std::collections::HashSet<String> = std::collections::HashSet::new();
        'patterns: for words in pattern_schedule(name, n_in, config.random_rounds) {
            sim.reset();
            sim.settle(&words, latency);
            for lane in 0..64u32 {
                let inputs = lane_inputs(&words, lane);
                let golden = oracle.eval(&inputs);
                for (out_name, node) in &unproven {
                    if bad.contains(out_name) {
                        continue;
                    }
                    let actual = (sim.value(*node) >> lane) & 1 == 1;
                    let expected = golden.output(out_name).unwrap_or_else(|| {
                        panic!("{name}: oracle does not model output {out_name:?}")
                    });
                    if actual != expected {
                        findings.push(
                            Counterexample {
                                output: out_name.clone(),
                                node: *node,
                                actual,
                                expected,
                                inputs: inputs.clone(),
                            }
                            .finding(RuleId::EquivCounterexample, false),
                        );
                        bad.insert(out_name.clone());
                        counterexamples += 1;
                        if counterexamples >= config.max_counterexamples {
                            break 'patterns;
                        }
                    }
                }
            }
        }
        // Clean wide cones are covered, not proven — say so at Info.
        let clean: Vec<&str> = unproven
            .iter()
            .filter(|(n, _)| !bad.contains(n))
            .map(|(n, _)| n.as_str())
            .collect();
        if !clean.is_empty() {
            let shown = clean[..clean.len().min(6)].join(", ");
            let more = clean.len().saturating_sub(6);
            let suffix = if more > 0 {
                format!(" (+{more} more)")
            } else {
                String::new()
            };
            findings.push(Finding::new(
                RuleId::EquivUnverified,
                None,
                format!(
                    "{} of {} outputs have input cones wider than the exhaustive bound ({}); \
                     covered by the pattern schedule only, not proven: {shown}{suffix}",
                    clean.len(),
                    clean.len() + provable.len() + bad.len(),
                    config.cone_bound
                ),
            ));
        }
    }

    findings
}

/// The deterministic pattern schedule: each item is one 64-lane input
/// word vector.
fn pattern_schedule(name: &str, n_in: usize, random_rounds: usize) -> Vec<Vec<u64>> {
    let mut schedule = Vec::new();
    schedule.push(vec![0u64; n_in]);
    schedule.push(vec![u64::MAX; n_in]);
    // Walking ones / walking zeros: 64 inputs per vector, each high (low)
    // in exactly one distinct lane.
    for base in (0..n_in).step_by(64) {
        let mut ones = vec![0u64; n_in];
        let mut zeros = vec![u64::MAX; n_in];
        for lane in 0..64usize.min(n_in - base) {
            ones[base + lane] = 1u64 << lane;
            zeros[base + lane] = !(1u64 << lane);
        }
        schedule.push(ones);
        schedule.push(zeros);
    }
    // Aligned 6-input counter sweeps: lane L drives the chunk's inputs
    // with the bits of L, enumerating all 64 combinations per chunk —
    // exactly the input space of each first-stage pop6 group.
    for chunk in (0..n_in).step_by(6) {
        let mut words = vec![0u64; n_in];
        let width = 6.min(n_in - chunk);
        words[chunk..chunk + width].copy_from_slice(&COUNTER[..width]);
        schedule.push(words);
    }
    // Seeded random rounds, deterministic per module name.
    let mut rng = SplitMix64(fnv1a(name) ^ 0xD6E8_FEB8_6659_FD93);
    for _ in 0..random_rounds {
        schedule.push((0..n_in).map(|_| rng.next()).collect());
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_covers_chunks() {
        let a = pattern_schedule("pop36-handcrafted", 36, 4);
        let b = pattern_schedule("pop36-handcrafted", 36, 4);
        assert_eq!(a, b);
        // zeros + ones + 1 walking pair + 6 sweeps + 4 random
        assert_eq!(a.len(), 2 + 2 + 6 + 4);
        let sweep = &a[4];
        assert_eq!(sweep[0], COUNTER[0]);
        assert_eq!(sweep[5], COUNTER[5]);
    }

    #[test]
    fn render_inputs_switches_to_sparse_form() {
        let short = render_inputs(&[true, false, true]);
        assert!(short.contains("101"));
        let mut wide = vec![false; 200];
        wide[7] = true;
        let sparse = render_inputs(&wide);
        assert!(sparse.contains("in7"));
        assert!(!sparse.contains("in8"));
    }
}
