//! Property-based mutation matrix: a random reachable truth-table bit
//! flip in any first-stage LUT of a shipped module is (a) invisible to
//! the structural DRC and (b) always caught by the equivalence engine
//! with an Error-level counterexample.
//!
//! First-stage LUTs (all pins primary inputs or constants) are the
//! deterministic half of the detection argument: for the hand-crafted
//! Pop-Counters the aligned 6-input counter sweeps enumerate every
//! `pop6` input combination and a flipped bit shifts the order-weighted
//! sum by ±2^j; for the comparator cells every reachable mux address is
//! inside the exhaustively-enumerated 11-input cone. Deeper-stage flips
//! are covered (not proven) by the random rounds, so the property is
//! restricted to the stage where detection is a theorem, keeping the
//! test deterministic rather than flaky.

use fabp_fpga::netlist::{Netlist, NodeId, NodeKind};
use fabp_fpga::primitives::Lut6;
use fabp_lint::{check_netlist, LintConfig, Severity};
use fabp_verify::{find_target, verify_netlist, VerifyConfig};
use proptest::prelude::*;

/// Modules where a first-stage flip is deterministically observable.
const MUTATION_CORPUS: [&str; 4] = [
    "comparator-cell",
    "pop36-handcrafted",
    "pop150-handcrafted",
    "align-mfsrw-t10",
];

fn first_stage_luts(n: &Netlist) -> Vec<(NodeId, Lut6, [NodeId; 6])> {
    n.node_ids()
        .filter_map(|id| match n.node_kind(id) {
            NodeKind::Lut(lut, pins) => Some((id, lut, pins)),
            _ => None,
        })
        .filter(|(_, _, pins)| {
            pins.iter()
                .all(|&p| matches!(n.node_kind(p), NodeKind::Input | NodeKind::Const(_)))
        })
        .collect()
}

fn reachable_addrs(n: &Netlist, pins: &[NodeId; 6]) -> Vec<u8> {
    (0..64u8)
        .filter(|addr| {
            pins.iter()
                .enumerate()
                .all(|(bit, &p)| match n.node_kind(p) {
                    NodeKind::Const(v) => ((addr >> bit) & 1 == 1) == v,
                    _ => true,
                })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flip one reachable first-stage truth-table bit anywhere in the
    /// corpus: DRC error-free, verify reports an Error counterexample.
    #[test]
    fn random_first_stage_flip_is_drc_clean_but_inequivalent(
        module_pick in 0usize..4,
        lut_pick in 0usize..1000,
        addr_pick in 0usize..1000,
    ) {
        let name = MUTATION_CORPUS[module_pick];
        let target = find_target(name).expect("shipped target");
        let mut netlist = target.module().build();

        let luts = first_stage_luts(&netlist);
        prop_assert!(!luts.is_empty());
        let (node, lut, pins) = luts[lut_pick % luts.len()];
        let addrs = reachable_addrs(&netlist, &pins);
        let addr = addrs[addr_pick % addrs.len()];
        let site = netlist.set_lut_table(node, Lut6::from_init(lut.init() ^ (1u64 << addr)));

        // (a) Structurally still perfect.
        let drc = check_netlist(name, &netlist, &LintConfig::default());
        prop_assert!(
            !drc.findings.iter().any(|f| f.severity == Severity::Error),
            "DRC errored on a purely functional defect {site}: {}",
            drc.render_text()
        );

        // (b) Functionally caught, at Error level, with a concrete vector.
        let report = verify_netlist(name, &netlist, &target.oracle, &VerifyConfig::default());
        let errors: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        prop_assert!(
            !errors.is_empty(),
            "equivalence engine missed {site} in {name}:\n{}",
            report.render_text()
        );
        prop_assert!(errors.iter().all(|f| f.message.contains("inputs")));
    }

    /// The unmutated corpus is a fixed point: zero findings above Info,
    /// whatever configuration knobs the property throws at it.
    #[test]
    fn clean_modules_verify_clean_under_any_config(
        module_pick in 0usize..4,
        rounds in 1usize..8,
        xprop in 9usize..24,
    ) {
        let name = MUTATION_CORPUS[module_pick];
        let target = find_target(name).expect("shipped target");
        let config = VerifyConfig {
            random_rounds: rounds,
            xprop_cycles: xprop,
            ..VerifyConfig::default()
        };
        let report = verify_netlist(name, &target.module().build(), &target.oracle, &config);
        prop_assert!(
            report.passes(Severity::Warn),
            "{name}:\n{}",
            report.render_text()
        );
    }
}
