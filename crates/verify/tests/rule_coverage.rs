//! Emission coverage for the FABP-V rule family: every `RuleId::*`
//! verification rule is produced by at least one real engine run here
//! (the structural FABP-N/S rules have the same guarantee in
//! `fabp-lint`'s `rule_registry` test), and the shared report plumbing
//! renders verify findings under the `fabp_verify` tool key.

use fabp_fpga::netlist::{Netlist, NodeKind};
use fabp_fpga::primitives::Lut6;
use fabp_lint::{render_json_reports_as, RuleId, Severity};
use fabp_verify::{
    check_config_program, check_xprop, find_target, verify_all, verify_netlist, ConfigOp,
    ConfigProgram, DeviceShape, TimedOp, VerifyConfig,
};

fn flip_lut_bit(netlist: &mut Netlist, lut_ordinal: usize, addr: u8) {
    let luts: Vec<_> = netlist
        .node_ids()
        .filter_map(|id| match netlist.node_kind(id) {
            NodeKind::Lut(lut, _) => Some((id, lut)),
            _ => None,
        })
        .collect();
    let (node, lut) = luts[lut_ordinal % luts.len()];
    netlist.set_lut_table(node, Lut6::from_init(lut.init() ^ (1u64 << addr)));
}

#[test]
fn v001_pattern_counterexample_fires() {
    let target = find_target("pop36-handcrafted").expect("shipped");
    let mut netlist = target.module().build();
    flip_lut_bit(&mut netlist, 0, 63); // all-ones address of a pop6 LUT
    let report = verify_netlist(
        "pop36-handcrafted",
        &netlist,
        &target.oracle,
        &VerifyConfig::default(),
    );
    let hits = report.findings_for(RuleId::EquivCounterexample);
    assert!(!hits.is_empty(), "{}", report.render_text());
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn v002_cone_counterexample_fires() {
    let target = find_target("comparator-cell").expect("shipped");
    let mut netlist = target.module().build();
    flip_lut_bit(&mut netlist, 1, 0); // compare LUT, address 0
    let report = verify_netlist(
        "comparator-cell",
        &netlist,
        &target.oracle,
        &VerifyConfig::default(),
    );
    let hits = report.findings_for(RuleId::ConeCounterexample);
    assert!(!hits.is_empty(), "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Error);
}

#[test]
fn v003_unverified_info_fires_on_wide_cones() {
    let target = find_target("pop36-handcrafted").expect("shipped");
    let report = verify_netlist(
        "pop36-handcrafted",
        &target.module().build(),
        &target.oracle,
        &VerifyConfig::default(),
    );
    let hits = report.findings_for(RuleId::EquivUnverified);
    assert_eq!(hits.len(), 1, "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Info);
    assert!(report.passes(Severity::Warn), "V003 must not gate CI");
}

#[test]
fn v004_v005_fire_on_unresettable_state() {
    // Enable-feedback toggle register with no reset path: the power-on
    // X never flushes and reaches the output.
    let mut n = Netlist::new();
    let enable = n.input();
    let r = n.reg_dangling();
    let t = n.lut_fn(&[r, enable], |addr| (addr & 1 != 0) ^ (addr & 2 != 0));
    n.connect_reg(r, t);
    n.mark_output("q", r);
    let findings = check_xprop(&n, 32);
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::XResetStuck && f.severity == Severity::Error));
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::XReachesOutput && f.severity == Severity::Error));
}

#[test]
fn v006_v007_v008_fire_on_bad_config_programs() {
    let shape = DeviceShape {
        banks: 8,
        scrub_interval_beats: 64,
    };
    let program = ConfigProgram {
        name: "bad".into(),
        ops: vec![
            TimedOp {
                beat: 0,
                op: ConfigOp::Write {
                    bank: 0,
                    bits: 0b01,
                },
            },
            // Shadowed before any read: V006.
            TimedOp {
                beat: 1,
                op: ConfigOp::Write {
                    bank: 0,
                    bits: 0b10,
                },
            },
            // Reads bank 1 which was never written: V007.
            TimedOp {
                beat: 2,
                op: ConfigOp::Read { first: 0, last: 1 },
            },
            // 200-beat unscrubbed live range against a 64-beat interval: V008.
            TimedOp {
                beat: 200,
                op: ConfigOp::Read { first: 0, last: 0 },
            },
        ],
    };
    let report = check_config_program(&program, &shape);
    let shadowed = report.findings_for(RuleId::ConfigShadowedWrite);
    let unwritten = report.findings_for(RuleId::ConfigReadUnwritten);
    let gap = report.findings_for(RuleId::ConfigScrubGap);
    assert_eq!(shadowed.len(), 1, "{}", report.render_text());
    assert_eq!(shadowed[0].severity, Severity::Warn);
    assert!(!unwritten.is_empty());
    assert_eq!(unwritten[0].severity, Severity::Error);
    assert!(!gap.is_empty());
    assert_eq!(gap[0].severity, Severity::Warn);
}

#[test]
fn full_corpus_passes_the_ci_gate_and_renders_as_fabp_verify() {
    let reports = verify_all(&VerifyConfig::default());
    // 9 netlist targets + 3 config programs.
    assert_eq!(reports.len(), 12);
    assert!(
        reports.iter().all(|r| r.passes(Severity::Warn)),
        "shipped corpus must pass --deny warn:\n{}",
        reports.iter().map(|r| r.render_text()).collect::<String>()
    );
    let json = render_json_reports_as("fabp_verify", &reports);
    assert!(
        json.starts_with("{\"fabp_verify\":{\"schema\":1}"),
        "{json}"
    );
    assert!(json.contains("\"module\":\"align-15aa-t30\""));
    assert!(json.contains("\"module\":\"config-packed-mfsrw\""));
}

#[test]
fn verify_telemetry_counts_under_its_own_tool_name() {
    let registry = fabp_telemetry::Registry::new();
    let target = find_target("comparator-cell").expect("shipped");
    let report = verify_netlist(
        "comparator-cell",
        &target.module().build(),
        &target.oracle,
        &VerifyConfig::default(),
    );
    fabp_lint::record_reports_as("fabp_verify", &registry, &[report]);
    let snapshot = registry.snapshot().to_prometheus();
    assert!(snapshot.contains("fabp_verify_modules_total"), "{snapshot}");
}
