//! Seeded functional defects: the adversarial bed for the equivalence
//! engine.
//!
//! Each test injects a *functional* defect — a single LUT truth-table
//! bit flip through the PR-2 defect-injection API — that leaves the
//! netlist structurally perfect: the DRC (`fabp-lint`) must stay free
//! of Error findings, while `fabp-verify` must produce an equivalence
//! counterexample with a concrete input vector that localises to the
//! injected cone (the reported output's fan-in contains the mutated
//! node). This is exactly the gap the verify layer exists to close.

use fabp_fpga::netlist::{Netlist, NodeId, NodeKind};
use fabp_fpga::primitives::Lut6;
use fabp_lint::{check_netlist, LintConfig, RuleId, Severity};
use fabp_verify::{fanin_cone, find_target, verify_netlist, VerifyConfig};

/// LUTs whose pins are all primary inputs or constants — the first
/// logic stage, where every reachable truth-table bit is exercised by
/// the engines' deterministic schedules.
fn first_stage_luts(n: &Netlist) -> Vec<(NodeId, Lut6, [NodeId; 6])> {
    n.node_ids()
        .filter_map(|id| match n.node_kind(id) {
            NodeKind::Lut(lut, pins) => Some((id, lut, pins)),
            _ => None,
        })
        .filter(|(_, _, pins)| {
            pins.iter()
                .all(|&p| matches!(n.node_kind(p), NodeKind::Input | NodeKind::Const(_)))
        })
        .collect()
}

/// Truth-table addresses reachable given the constant pins: every
/// address bit tied to a constant pin must equal that constant.
fn reachable_addrs(n: &Netlist, pins: &[NodeId; 6]) -> Vec<u8> {
    (0..64u8)
        .filter(|addr| {
            pins.iter()
                .enumerate()
                .all(|(bit, &p)| match n.node_kind(p) {
                    NodeKind::Const(v) => ((addr >> bit) & 1 == 1) == v,
                    _ => true,
                })
        })
        .collect()
}

/// Flips one reachable truth-table bit of a first-stage LUT, returning
/// the injection site.
fn flip_first_stage_bit(
    n: &mut Netlist,
    lut_pick: usize,
    addr_pick: usize,
) -> fabp_fpga::netlist::InjectionSite {
    let luts = first_stage_luts(n);
    assert!(!luts.is_empty(), "module has no first-stage LUTs");
    let (node, lut, pins) = luts[lut_pick % luts.len()];
    let addrs = reachable_addrs(n, &pins);
    let addr = addrs[addr_pick % addrs.len()];
    n.set_lut_table(node, Lut6::from_init(lut.init() ^ (1u64 << addr)))
}

/// Asserts the full contract: DRC error-free, verify reports an
/// Error-level counterexample under `rule` whose reported output cone
/// contains the injected node, and the message carries a concrete
/// input vector.
fn assert_defect_found(
    name: &str,
    netlist: &Netlist,
    site: &fabp_fpga::netlist::InjectionSite,
    rule: RuleId,
) {
    let target = find_target(name).expect("shipped target");
    let drc = check_netlist(name, netlist, &LintConfig::default());
    assert!(
        !drc.findings.iter().any(|f| f.severity == Severity::Error),
        "functional defect must be invisible to the DRC ({site}):\n{}",
        drc.render_text()
    );

    let report = verify_netlist(name, netlist, &target.oracle, &VerifyConfig::default());
    let hits = report.findings_for(rule);
    assert!(
        !hits.is_empty(),
        "verify missed seeded defect {site}:\n{}",
        report.render_text()
    );
    for finding in &hits {
        assert_eq!(finding.severity, Severity::Error);
        assert!(
            finding.message.contains("inputs"),
            "counterexample must carry a concrete input vector: {}",
            finding.message
        );
        let output_node = finding.node.expect("counterexample anchors to its output");
        let cone = fanin_cone(netlist, node_id_at(netlist, output_node));
        assert!(
            cone.contains(&site.node.index()),
            "counterexample on a cone that does not contain the injected node {site}"
        );
    }
}

fn node_id_at(n: &Netlist, index: usize) -> NodeId {
    n.node_ids()
        .find(|id| id.index() == index)
        .expect("finding anchors to a real node")
}

#[test]
fn comparator_mux_flip_yields_cone_counterexample() {
    let target = find_target("comparator-cell").expect("shipped");
    for addr_pick in [0usize, 13, 27, 45, 63] {
        let mut netlist = target.module().build();
        // LUT 0 is the input multiplexer (all pins are primary inputs).
        let site = flip_first_stage_bit(&mut netlist, 0, addr_pick);
        assert_eq!(site.kind, "set-lut-table");
        assert_defect_found(
            "comparator-cell",
            &netlist,
            &site,
            RuleId::ConeCounterexample,
        );
    }
}

#[test]
fn pop36_first_stage_flip_yields_pattern_counterexample() {
    for (lut_pick, addr_pick) in [(0usize, 5usize), (7, 21), (11, 63), (16, 40)] {
        let target = find_target("pop36-handcrafted").expect("shipped");
        let mut netlist = target.module().build();
        let site = flip_first_stage_bit(&mut netlist, lut_pick, addr_pick);
        assert_defect_found(
            "pop36-handcrafted",
            &netlist,
            &site,
            RuleId::EquivCounterexample,
        );
    }
}

#[test]
fn align_mux_flip_localises_to_its_element() {
    let target = find_target("align-mfsrw-t10").expect("shipped");
    for (lut_pick, addr_pick) in [(2usize, 9usize), (6, 33), (12, 50)] {
        let mut netlist = target.module().build();
        let site = flip_first_stage_bit(&mut netlist, lut_pick, addr_pick);
        assert_defect_found(
            "align-mfsrw-t10",
            &netlist,
            &site,
            RuleId::ConeCounterexample,
        );
        // Localisation is per element: exactly the match outputs whose
        // cone contains the mutated mux can report; at least one must.
        let report = verify_netlist(
            "align-mfsrw-t10",
            &netlist,
            &target.oracle,
            &VerifyConfig::default(),
        );
        for finding in report.findings_for(RuleId::ConeCounterexample) {
            assert!(finding.message.contains("match"), "{}", finding.message);
        }
    }
}

#[test]
fn pipelined_popcount_flip_is_caught_through_the_registers() {
    let target = find_target("pop72-pipelined-tree").expect("shipped");
    let mut netlist = target.module().build();
    // First-stage LUTs of the tree adder sit directly on the inputs;
    // flip the all-zeros address of the first one (changes count for
    // the all-zero pattern, which the schedule always drives).
    let site = flip_first_stage_bit(&mut netlist, 0, 0);
    assert_defect_found(
        "pop72-pipelined-tree",
        &netlist,
        &site,
        RuleId::EquivCounterexample,
    );
}

#[test]
fn injection_sites_describe_the_mutation() {
    let target = find_target("pop36-handcrafted").expect("shipped");
    let mut netlist = target.module().build();
    let site = flip_first_stage_bit(&mut netlist, 3, 17);
    assert_eq!(site.kind, "set-lut-table");
    assert!(site.detail.contains("INIT"), "{}", site.detail);
    assert!(site
        .to_string()
        .contains(&format!("n{}", site.node.index())));
}
