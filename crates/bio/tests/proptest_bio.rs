//! Property-based tests for the biology substrate.

use fabp_bio::alphabet::{AminoAcid, Nucleotide};
use fabp_bio::backtranslate::BackTranslatedQuery;
use fabp_bio::fasta::{read_records, write_records, Record};
use fabp_bio::mutate::SubstitutionModel;
use fabp_bio::seq::{PackedSeq, ProteinSeq, RnaSeq};
use fabp_bio::translate::{translate_frame, translate_six_frames};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_rna(max_len: usize) -> impl Strategy<Value = RnaSeq> {
    prop::collection::vec(0u8..4, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Nucleotide::from_code2).collect())
}

fn arb_protein(max_len: usize) -> impl Strategy<Value = ProteinSeq> {
    prop::collection::vec(0usize..21, 1..=max_len)
        .prop_map(|v| v.into_iter().map(|i| AminoAcid::ALL[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packed_seq_round_trip(rna in arb_rna(2000)) {
        let packed = PackedSeq::from_rna(&rna);
        prop_assert_eq!(packed.len(), rna.len());
        prop_assert_eq!(packed.to_rna(), rna);
    }

    #[test]
    fn reverse_complement_is_involutive(rna in arb_rna(500)) {
        prop_assert_eq!(rna.reverse_complement().reverse_complement(), rna);
    }

    #[test]
    fn dna_rna_conversions_are_inverse(rna in arb_rna(500)) {
        prop_assert_eq!(rna.to_dna().to_rna(), rna);
    }

    #[test]
    fn sequence_parse_display_round_trip(rna in arb_rna(300)) {
        let text = rna.to_string();
        prop_assert_eq!(text.parse::<RnaSeq>().unwrap(), rna);
    }

    #[test]
    fn coding_sequences_translate_back(protein in arb_protein(80), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let coding = fabp_bio::generate::coding_rna_for(&protein, &mut rng);
        prop_assert_eq!(translate_frame(&coding, 0), protein);
    }

    #[test]
    fn six_frame_translation_lengths(rna in arb_rna(200)) {
        let dna = rna.to_dna();
        for (frame, protein) in translate_six_frames(&dna) {
            let usable = rna.len().saturating_sub(frame.offset as usize);
            prop_assert_eq!(protein.len(), usable / 3);
        }
    }

    #[test]
    fn substitutions_preserve_length(
        rna in arb_rna(400),
        rate in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mutated, summary) = SubstitutionModel::new(rate).mutate_rna(&rna, &mut rng);
        prop_assert_eq!(mutated.len(), rna.len());
        let differing = rna
            .iter()
            .zip(mutated.iter())
            .filter(|(a, b)| a != b)
            .count();
        prop_assert_eq!(differing, summary.substitutions);
    }

    #[test]
    fn back_translation_length_is_three_per_residue(protein in arb_protein(100)) {
        let bt = BackTranslatedQuery::from_protein(&protein);
        prop_assert_eq!(bt.len(), protein.len() * 3);
        let [t1, t2, t3] = bt.type_histogram();
        prop_assert_eq!(t1 + t2 + t3, bt.len());
    }

    #[test]
    fn fasta_round_trip(
        sequences in prop::collection::vec("[ACGU]{1,80}", 1..6),
        width in 1usize..100,
    ) {
        let records: Vec<Record> = sequences
            .iter()
            .enumerate()
            .map(|(i, s)| Record::new(format!("r{i}"), s.clone()))
            .collect();
        let mut bytes = Vec::new();
        write_records(&mut bytes, &records, width).unwrap();
        let parsed = read_records(bytes.as_slice()).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn gc_content_is_bounded(rna in arb_rna(500)) {
        let gc = fabp_bio::stats::Composition::of(&rna).gc_content();
        prop_assert!((0.0..=1.0).contains(&gc) || rna.is_empty());
    }

    #[test]
    fn orfs_are_well_formed(rna in arb_rna(600)) {
        for orf in fabp_bio::orf::find_orfs(&rna, 1) {
            prop_assert!(orf.start < orf.end);
            prop_assert!(orf.end <= rna.len());
            prop_assert_eq!(orf.len() % 3, 0);
            prop_assert_eq!((orf.start % 3) as u8, orf.frame);
            // Starts with AUG.
            let s = &rna.as_slice()[orf.start..orf.start + 3];
            prop_assert_eq!(
                fabp_bio::codon::Codon::new(s[0], s[1], s[2]).translate(),
                AminoAcid::Met
            );
        }
    }
}
