//! Owned sequence types over the biological alphabets.
//!
//! [`RnaSeq`], [`DnaSeq`] and [`ProteinSeq`] are thin, invariant-preserving
//! wrappers around `Vec` of the respective symbols. [`PackedSeq`] stores an
//! RNA sequence 2 bits per base — the representation FabP streams from the
//! FPGA DRAM (256 bases per 512-bit AXI beat, paper §III-C).

use crate::alphabet::{AminoAcid, DnaNucleotide, Nucleotide, ParseSymbolError};
use std::fmt;
use std::str::FromStr;

macro_rules! seq_newtype {
    (
        $(#[$meta:meta])*
        $name:ident, $elem:ty, $alphabet:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
        pub struct $name(Vec<$elem>);

        impl $name {
            /// Creates an empty sequence.
            pub fn new() -> $name {
                $name(Vec::new())
            }

            /// Creates an empty sequence with room for `capacity` symbols.
            pub fn with_capacity(capacity: usize) -> $name {
                $name(Vec::with_capacity(capacity))
            }

            /// Number of symbols in the sequence.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` when the sequence holds no symbols.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Borrow the symbols as a slice.
            pub fn as_slice(&self) -> &[$elem] {
                &self.0
            }

            /// Appends one symbol.
            pub fn push(&mut self, symbol: $elem) {
                self.0.push(symbol);
            }

            /// Iterates over the symbols.
            pub fn iter(&self) -> std::slice::Iter<'_, $elem> {
                self.0.iter()
            }

            /// Consumes the sequence, returning the underlying vector.
            pub fn into_inner(self) -> Vec<$elem> {
                self.0
            }
        }

        impl From<Vec<$elem>> for $name {
            fn from(v: Vec<$elem>) -> $name {
                $name(v)
            }
        }

        impl FromIterator<$elem> for $name {
            fn from_iter<I: IntoIterator<Item = $elem>>(iter: I) -> $name {
                $name(iter.into_iter().collect())
            }
        }

        impl Extend<$elem> for $name {
            fn extend<I: IntoIterator<Item = $elem>>(&mut self, iter: I) {
                self.0.extend(iter);
            }
        }

        impl std::ops::Index<usize> for $name {
            type Output = $elem;

            fn index(&self, idx: usize) -> &$elem {
                &self.0[idx]
            }
        }

        impl AsRef<[$elem]> for $name {
            fn as_ref(&self) -> &[$elem] {
                &self.0
            }
        }

        impl<'a> IntoIterator for &'a $name {
            type Item = &'a $elem;
            type IntoIter = std::slice::Iter<'a, $elem>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.iter()
            }
        }

        impl IntoIterator for $name {
            type Item = $elem;
            type IntoIter = std::vec::IntoIter<$elem>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for symbol in &self.0 {
                    write!(f, "{}", symbol)?;
                }
                Ok(())
            }
        }

        impl FromStr for $name {
            type Err = ParseSymbolError;

            fn from_str(s: &str) -> Result<$name, ParseSymbolError> {
                s.chars()
                    .filter(|c| !c.is_whitespace())
                    .map(<$elem>::try_from)
                    .collect()
            }
        }
    };
}

seq_newtype!(
    /// An owned RNA sequence (string over `{A, C, G, U}`).
    ///
    /// # Examples
    ///
    /// ```
    /// use fabp_bio::seq::RnaSeq;
    /// let seq: RnaSeq = "AUGUUU".parse()?;
    /// assert_eq!(seq.len(), 6);
    /// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
    /// ```
    RnaSeq,
    Nucleotide,
    "RNA"
);

seq_newtype!(
    /// An owned DNA sequence (string over `{A, C, G, T}`).
    DnaSeq,
    DnaNucleotide,
    "DNA"
);

seq_newtype!(
    /// An owned protein sequence (string over the 20 amino acids + `*`).
    ///
    /// # Examples
    ///
    /// ```
    /// use fabp_bio::seq::ProteinSeq;
    /// let q: ProteinSeq = "MFSR*".parse()?;
    /// assert_eq!(q.len(), 5);
    /// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
    /// ```
    ProteinSeq,
    AminoAcid,
    "protein"
);

impl RnaSeq {
    /// Converts to DNA by the `U → T` substitution.
    pub fn to_dna(&self) -> DnaSeq {
        self.iter().map(|&n| DnaNucleotide::from_rna(n)).collect()
    }

    /// Reverse complement of the sequence.
    pub fn reverse_complement(&self) -> RnaSeq {
        self.iter().rev().map(|n| n.complement()).collect()
    }
}

impl DnaSeq {
    /// Converts to RNA by the `T → U` substitution (how FabP treats DNA
    /// reference databases).
    pub fn to_rna(&self) -> RnaSeq {
        self.iter().map(|&n| n.to_rna()).collect()
    }

    /// Reverse complement of the sequence.
    pub fn reverse_complement(&self) -> DnaSeq {
        self.iter().rev().map(|n| n.complement()).collect()
    }
}

impl ProteinSeq {
    /// `true` when no position is the Stop symbol.
    pub fn is_stop_free(&self) -> bool {
        self.iter().all(|aa| aa.is_standard())
    }
}

/// An RNA sequence packed 2 bits per base, in hardware code order.
///
/// Base `i` occupies bits `2*(i mod 32)..2*(i mod 32)+2` of word `i / 32`,
/// i.e. base 0 sits in the least-significant bits of word 0. A 512-bit AXI
/// beat is therefore exactly eight consecutive words holding 256 bases
/// (paper §III-C).
///
/// # Examples
///
/// ```
/// use fabp_bio::seq::{PackedSeq, RnaSeq};
/// let rna: RnaSeq = "ACGU".parse()?;
/// let packed = PackedSeq::from_rna(&rna);
/// assert_eq!(packed.len(), 4);
/// assert_eq!(packed.to_rna(), rna);
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Bases stored per 64-bit word.
    pub const BASES_PER_WORD: usize = 32;

    /// Creates an empty packed sequence.
    pub fn new() -> PackedSeq {
        PackedSeq::default()
    }

    /// Packs an RNA sequence.
    pub fn from_rna(seq: &RnaSeq) -> PackedSeq {
        let mut packed = PackedSeq::with_capacity(seq.len());
        for &base in seq {
            packed.push(base);
        }
        packed
    }

    /// Packs a DNA sequence (treating `T` as `U`).
    pub fn from_dna(seq: &DnaSeq) -> PackedSeq {
        let mut packed = PackedSeq::with_capacity(seq.len());
        for &base in seq {
            packed.push(base.to_rna());
        }
        packed
    }

    /// Reassembles a packed sequence from raw words previously exposed
    /// by [`PackedSeq::words`] — the zero-re-encode load path of the
    /// persistent reference index.
    ///
    /// Returns `None` when the word count does not match `len` or when
    /// the unused high bits of the last word are non-zero (either means
    /// the words did not come from a `PackedSeq` of that length, and
    /// accepting them would break `Eq`/round-trip guarantees).
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<PackedSeq> {
        if words.len() != len.div_ceil(Self::BASES_PER_WORD) {
            return None;
        }
        let tail_bases = len % Self::BASES_PER_WORD;
        if tail_bases != 0 {
            let used_bits = 2 * tail_bases;
            let last = *words.last().expect("len > 0 implies a last word");
            if used_bits < 64 && (last >> used_bits) != 0 {
                return None;
            }
        }
        Some(PackedSeq { words, len })
    }

    /// Creates an empty packed sequence with room for `bases` bases.
    pub fn with_capacity(bases: usize) -> PackedSeq {
        PackedSeq {
            words: Vec::with_capacity(bases.div_ceil(Self::BASES_PER_WORD)),
            len: 0,
        }
    }

    /// Number of bases stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one base.
    pub fn push(&mut self, base: Nucleotide) {
        let bit = 2 * (self.len % Self::BASES_PER_WORD);
        if bit == 0 {
            self.words.push(0);
        }
        let word = self.words.last_mut().expect("word allocated above");
        *word |= (base.code2() as u64) << bit;
        self.len += 1;
    }

    /// The base at position `index`.
    ///
    /// Returns `None` when `index >= self.len()`.
    #[inline]
    pub fn get(&self, index: usize) -> Option<Nucleotide> {
        if index >= self.len {
            return None;
        }
        Some(self.get_unchecked_internal(index))
    }

    #[inline]
    fn get_unchecked_internal(&self, index: usize) -> Nucleotide {
        let word = self.words[index / Self::BASES_PER_WORD];
        let bit = 2 * (index % Self::BASES_PER_WORD);
        Nucleotide::from_code2(((word >> bit) & 0b11) as u8)
    }

    /// The 2-bit hardware code at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn code_at(&self, index: usize) -> u8 {
        assert!(index < self.len, "base index {index} out of range");
        let word = self.words[index / Self::BASES_PER_WORD];
        let bit = 2 * (index % Self::BASES_PER_WORD);
        ((word >> bit) & 0b11) as u8
    }

    /// Borrow the underlying 64-bit words (base 0 in the LSBs of word 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> impl Iterator<Item = Nucleotide> + '_ {
        (0..self.len).map(|i| self.get_unchecked_internal(i))
    }

    /// Unpacks into an owned [`RnaSeq`].
    pub fn to_rna(&self) -> RnaSeq {
        self.iter().collect()
    }

    /// Appends every base of `other` to `self`.
    pub fn extend_from(&mut self, other: &PackedSeq) {
        for base in other.iter() {
            self.push(base);
        }
    }
}

impl FromIterator<Nucleotide> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = Nucleotide>>(iter: I) -> PackedSeq {
        let mut packed = PackedSeq::new();
        for base in iter {
            packed.push(base);
        }
        packed
    }
}

impl fmt::Display for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for base in self.iter() {
            write!(f, "{base}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rna_parse_display_round_trip() {
        let s = "AUGCUUACGGAU";
        let seq: RnaSeq = s.parse().unwrap();
        assert_eq!(seq.to_string(), s);
        assert_eq!(seq.len(), s.len());
    }

    #[test]
    fn rna_parse_skips_whitespace_and_accepts_t() {
        let seq: RnaSeq = "AUG\nCT T".parse().unwrap();
        assert_eq!(seq.to_string(), "AUGCUU");
    }

    #[test]
    fn rna_parse_rejects_garbage() {
        assert!("AUGX".parse::<RnaSeq>().is_err());
    }

    #[test]
    fn protein_parse_round_trip() {
        let s = "MFSR*";
        let seq: ProteinSeq = s.parse().unwrap();
        assert_eq!(seq.to_string(), s);
        assert!(!seq.is_stop_free());
        let clean: ProteinSeq = "MFSR".parse().unwrap();
        assert!(clean.is_stop_free());
    }

    #[test]
    fn dna_rna_conversion_round_trip() {
        let dna: DnaSeq = "ACGTTTGA".parse().unwrap();
        assert_eq!(dna.to_rna().to_dna(), dna);
        assert_eq!(dna.to_rna().to_string(), "ACGUUUGA");
    }

    #[test]
    fn reverse_complement_involution() {
        let rna: RnaSeq = "AUGCUUACG".parse().unwrap();
        assert_eq!(rna.reverse_complement().reverse_complement(), rna);
        let dna: DnaSeq = "ACGT".parse().unwrap();
        assert_eq!(dna.reverse_complement().to_string(), "ACGT");
    }

    #[test]
    fn packed_round_trip_various_lengths() {
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 255, 256, 1000] {
            let rna: RnaSeq = (0..len)
                .map(|i| Nucleotide::from_code2((i % 4) as u8))
                .collect();
            let packed = PackedSeq::from_rna(&rna);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_rna(), rna);
            assert_eq!(packed.words().len(), len.div_ceil(32));
        }
    }

    #[test]
    fn packed_bit_layout_is_lsb_first() {
        let rna: RnaSeq = "UA".parse().unwrap(); // U=11 at bits 0..2, A=00 at 2..4
        let packed = PackedSeq::from_rna(&rna);
        assert_eq!(packed.words()[0], 0b0011);
        assert_eq!(packed.code_at(0), 0b11);
        assert_eq!(packed.code_at(1), 0b00);
    }

    #[test]
    fn packed_get_bounds() {
        let packed = PackedSeq::from_rna(&"ACG".parse().unwrap());
        assert_eq!(packed.get(2), Some(Nucleotide::G));
        assert_eq!(packed.get(3), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_code_at_panics_out_of_range() {
        let packed = PackedSeq::from_rna(&"ACG".parse().unwrap());
        let _ = packed.code_at(3);
    }

    #[test]
    fn packed_extend_from() {
        let mut a = PackedSeq::from_rna(&"ACG".parse().unwrap());
        let b = PackedSeq::from_rna(&"UUA".parse().unwrap());
        a.extend_from(&b);
        assert_eq!(a.to_rna().to_string(), "ACGUUA");
    }

    #[test]
    fn seq_collect_and_extend() {
        let mut seq: RnaSeq = [Nucleotide::A, Nucleotide::C].into_iter().collect();
        seq.extend([Nucleotide::G]);
        assert_eq!(seq.to_string(), "ACG");
        assert_eq!(seq[1], Nucleotide::C);
    }
}
