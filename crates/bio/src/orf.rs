//! Open-reading-frame discovery.
//!
//! Protein-coding regions — the places where FabP hits are biologically
//! meaningful — run from a start codon (`AUG`) to the first in-frame stop.
//! ORF discovery lets examples and experiments restrict searches or
//! cross-check hits against gene structure.

use crate::alphabet::AminoAcid;
use crate::codon::Codon;
use crate::seq::{ProteinSeq, RnaSeq};

/// One open reading frame on the forward strand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orf {
    /// Nucleotide position of the start codon's first base.
    pub start: usize,
    /// One past the stop codon's last base (or the last complete codon for
    /// open-ended ORFs).
    pub end: usize,
    /// Reading frame offset (0, 1, 2).
    pub frame: u8,
    /// `true` when terminated by a stop codon (otherwise it ran off the
    /// sequence end).
    pub has_stop: bool,
}

impl Orf {
    /// Length in nucleotides (including the stop codon when present).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// ORFs are never shorter than a start codon.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Residue count of the encoded protein (start codon included, stop
    /// excluded).
    pub fn protein_len(&self) -> usize {
        self.len() / 3 - usize::from(self.has_stop)
    }

    /// Extracts and translates the ORF's protein (stop excluded).
    pub fn translate(&self, rna: &RnaSeq) -> ProteinSeq {
        let coding = &rna.as_slice()[self.start..self.end];
        coding
            .chunks_exact(3)
            .map(|c| Codon::new(c[0], c[1], c[2]).translate())
            .filter(|aa| aa.is_standard())
            .collect()
    }
}

/// Finds every ORF of at least `min_protein_len` residues in all three
/// forward frames.
///
/// An ORF starts at each `AUG` not already inside an ORF of the same frame
/// and extends to the first in-frame stop codon (or the sequence end).
///
/// # Examples
///
/// ```
/// use fabp_bio::orf::find_orfs;
/// use fabp_bio::seq::RnaSeq;
///
/// let rna: RnaSeq = "GGAUGAAAUUUUAAGG".parse()?;
/// let orfs = find_orfs(&rna, 2);
/// assert_eq!(orfs.len(), 1);
/// assert_eq!(orfs[0].start, 2);
/// assert!(orfs[0].has_stop);
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
pub fn find_orfs(rna: &RnaSeq, min_protein_len: usize) -> Vec<Orf> {
    let bases = rna.as_slice();
    let mut orfs = Vec::new();
    for frame in 0u8..3 {
        let mut pos = frame as usize;
        while pos + 3 <= bases.len() {
            let codon = Codon::new(bases[pos], bases[pos + 1], bases[pos + 2]);
            if codon.translate() != AminoAcid::Met {
                pos += 3;
                continue;
            }
            // Scan to the stop.
            let start = pos;
            let mut end = pos;
            let mut has_stop = false;
            let mut scan = pos;
            while scan + 3 <= bases.len() {
                let c = Codon::new(bases[scan], bases[scan + 1], bases[scan + 2]);
                scan += 3;
                end = scan;
                if c.translate() == AminoAcid::Stop {
                    has_stop = true;
                    break;
                }
            }
            let orf = Orf {
                start,
                end,
                frame,
                has_stop,
            };
            if orf.protein_len() >= min_protein_len {
                orfs.push(orf);
            }
            pos = end.max(pos + 3);
        }
    }
    orfs.sort_by_key(|o| (o.start, o.frame));
    orfs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{coding_rna_for, random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_orf_with_stop() {
        let rna: RnaSeq = "AUGAAAUUUUAA".parse().unwrap();
        let orfs = find_orfs(&rna, 1);
        assert_eq!(orfs.len(), 1);
        let orf = &orfs[0];
        assert_eq!((orf.start, orf.end), (0, 12));
        assert!(orf.has_stop);
        assert_eq!(orf.protein_len(), 3);
        assert_eq!(orf.translate(&rna).to_string(), "MKF");
    }

    #[test]
    fn open_ended_orf() {
        let rna: RnaSeq = "AUGAAAUUU".parse().unwrap();
        let orfs = find_orfs(&rna, 1);
        assert_eq!(orfs.len(), 1);
        assert!(!orfs[0].has_stop);
        assert_eq!(orfs[0].protein_len(), 3);
    }

    #[test]
    fn min_length_filters() {
        let rna: RnaSeq = "AUGUAA".parse().unwrap(); // M then stop
        assert_eq!(find_orfs(&rna, 1).len(), 1);
        assert!(find_orfs(&rna, 2).is_empty());
    }

    #[test]
    fn orfs_in_all_frames() {
        // Frame 1 ORF: pad with one base.
        let rna: RnaSeq = "GAUGAAAUAA".parse().unwrap();
        let orfs = find_orfs(&rna, 1);
        assert_eq!(orfs.len(), 1);
        assert_eq!(orfs[0].frame, 1);
        assert_eq!(orfs[0].start, 1);
    }

    #[test]
    fn nested_aug_is_absorbed() {
        // AUG AUG AAA UAA: one ORF from the first AUG; the inner AUG must
        // not spawn a second ORF in the same frame.
        let rna: RnaSeq = "AUGAUGAAAUAA".parse().unwrap();
        let orfs = find_orfs(&rna, 1);
        assert_eq!(orfs.len(), 1);
        assert_eq!(orfs[0].start, 0);
    }

    #[test]
    fn planted_gene_is_recovered() {
        let mut rng = StdRng::seed_from_u64(0x0F);
        let mut protein: ProteinSeq = "M".parse().unwrap();
        protein.extend(random_protein(30, &mut rng).iter().copied());
        let mut coding = coding_rna_for(&protein, &mut rng);
        coding.extend("UAA".parse::<RnaSeq>().unwrap().iter().copied());

        let mut bases = random_rna(300, &mut rng).into_inner();
        // Clear stray AUGs upstream in the planting frame for determinism:
        // plant at a frame-0 position.
        bases.splice(99..99 + coding.len(), coding.iter().copied());
        let rna = RnaSeq::from(bases);
        let orfs = find_orfs(&rna, 25);
        assert!(
            orfs.iter()
                .any(|o| o.start == 99 && o.has_stop && o.translate(&rna) == protein),
            "planted ORF not recovered: {orfs:?}"
        );
    }

    #[test]
    fn no_aug_no_orfs() {
        let rna: RnaSeq = "CCCCCCCCCCCC".parse().unwrap();
        assert!(find_orfs(&rna, 1).is_empty());
    }
}
