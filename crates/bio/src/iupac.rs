//! IUPAC degenerate nucleotide codes.
//!
//! The standard nomenclature for "a position that can be several
//! nucleotides" — the language bioinformatics tools speak. FabP's Type II
//! conditions map onto IUPAC codes (`U/C = Y`, `A/G = R`, `G̅ = H`,
//! `A/C = M`) and the paper's match-anything element `D` is IUPAC `N`
//! (IUPAC's own `D` means "not C" — a naming collision worth surfacing,
//! see `DESIGN.md`). This module provides the full 15-code alphabet plus
//! conversions to/from FabP pattern elements where they exist.

use crate::alphabet::{Nucleotide, ParseSymbolError};
use crate::backtranslate::{DependentFn, MatchCondition, PatternElement};
use std::fmt;

/// A set of nucleotides encoded as a 4-bit mask (bit = `Nucleotide::code2`).
///
/// # Examples
///
/// ```
/// use fabp_bio::iupac::IupacCode;
/// use fabp_bio::alphabet::Nucleotide;
///
/// let y = IupacCode::from_char('Y')?; // pyrimidine: C or U
/// assert!(y.contains(Nucleotide::C));
/// assert!(!y.contains(Nucleotide::A));
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IupacCode(u8);

impl IupacCode {
    /// Any nucleotide (`N`).
    pub const N: IupacCode = IupacCode(0b1111);

    /// Builds a code from a set mask (low four bits, bit index =
    /// [`Nucleotide::code2`]).
    ///
    /// # Panics
    ///
    /// Panics if the mask is empty (IUPAC has no empty code).
    pub fn from_mask(mask: u8) -> IupacCode {
        let mask = mask & 0b1111;
        assert!(mask != 0, "IUPAC codes are non-empty sets");
        IupacCode(mask)
    }

    /// The 4-bit membership mask.
    pub fn mask(self) -> u8 {
        self.0
    }

    /// Builds a code from the set of allowed nucleotides.
    pub fn from_set(set: &[Nucleotide]) -> IupacCode {
        let mut mask = 0u8;
        for &n in set {
            mask |= 1 << n.code2();
        }
        IupacCode::from_mask(mask)
    }

    /// Whether the code admits `n`.
    pub fn contains(self, n: Nucleotide) -> bool {
        self.0 & (1 << n.code2()) != 0
    }

    /// Number of admitted nucleotides (1–4).
    pub fn cardinality(self) -> u32 {
        self.0.count_ones()
    }

    /// The admitted nucleotides in code order.
    pub fn members(self) -> Vec<Nucleotide> {
        Nucleotide::ALL
            .into_iter()
            .filter(|&n| self.contains(n))
            .collect()
    }

    /// The one-letter IUPAC symbol.
    pub fn to_char(self) -> char {
        // Mask bit order: A=1, C=2, G=4, U=8.
        match self.0 {
            0b0001 => 'A',
            0b0010 => 'C',
            0b0100 => 'G',
            0b1000 => 'U',
            0b0011 => 'M', // A/C
            0b0101 => 'R', // A/G
            0b1001 => 'W', // A/U
            0b0110 => 'S', // C/G
            0b1010 => 'Y', // C/U
            0b1100 => 'K', // G/U
            0b0111 => 'V', // not U
            0b1011 => 'H', // not G
            0b1101 => 'D', // not C
            0b1110 => 'B', // not A
            _ => 'N',
        }
    }

    /// Parses a one-letter IUPAC symbol (case-insensitive; `T` reads as
    /// `U`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSymbolError`] for non-IUPAC characters.
    pub fn from_char(c: char) -> Result<IupacCode, ParseSymbolError> {
        let mask = match c.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'U' | 'T' => 0b1000,
            'M' => 0b0011,
            'R' => 0b0101,
            'W' => 0b1001,
            'S' => 0b0110,
            'Y' => 0b1010,
            'K' => 0b1100,
            'V' => 0b0111,
            'H' => 0b1011,
            'D' => 0b1101,
            'B' => 0b1110,
            'N' => 0b1111,
            other => {
                return Err(ParseSymbolError {
                    found: other,
                    alphabet: "IUPAC nucleotide",
                })
            }
        };
        Ok(IupacCode(mask))
    }

    /// Converts a FabP pattern element to its IUPAC code, when the element
    /// is context-free (Type I, Type II, and the match-anything `D`).
    /// Context-dependent elements (Leu/Arg/Stop functions) return `None` —
    /// their accepted set varies with earlier reference elements.
    pub fn from_pattern_element(element: PatternElement) -> Option<IupacCode> {
        match element {
            PatternElement::Exact(n) => Some(IupacCode::from_set(&[n])),
            PatternElement::Conditional(c) => Some(IupacCode::from_condition(c)),
            PatternElement::Dependent(DependentFn::Any) => Some(IupacCode::N),
            PatternElement::Dependent(_) => None,
        }
    }

    /// The IUPAC code of a Type II matching condition.
    pub fn from_condition(condition: MatchCondition) -> IupacCode {
        IupacCode::from_set(
            &Nucleotide::ALL
                .into_iter()
                .filter(|&n| condition.matches(n))
                .collect::<Vec<_>>(),
        )
    }

    /// Converts back to a pattern element when one exists: singletons map
    /// to Type I, the four Type II condition sets to conditionals, `N` to
    /// the `D` element. Other IUPAC codes (e.g. `W`, `S`) have no FabP
    /// instruction and return `None` — exactly the paper's observation
    /// that only five conditions occur in the codon table.
    pub fn to_pattern_element(self) -> Option<PatternElement> {
        if self.cardinality() == 1 {
            return Some(PatternElement::Exact(self.members()[0]));
        }
        if self == IupacCode::N {
            return Some(PatternElement::Dependent(DependentFn::Any));
        }
        MatchCondition::ALL
            .into_iter()
            .find(|&c| IupacCode::from_condition(c) == self)
            .map(PatternElement::Conditional)
    }
}

impl fmt::Display for IupacCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::AminoAcid;
    use crate::backtranslate::back_translate;

    #[test]
    fn char_round_trip_all_fifteen_codes() {
        for mask in 1u8..16 {
            let code = IupacCode::from_mask(mask);
            let parsed = IupacCode::from_char(code.to_char()).unwrap();
            assert_eq!(parsed, code, "symbol {}", code.to_char());
        }
        assert!(IupacCode::from_char('X').is_err());
    }

    #[test]
    fn membership_matches_semantics() {
        let r = IupacCode::from_char('R').unwrap();
        assert!(r.contains(Nucleotide::A) && r.contains(Nucleotide::G));
        assert_eq!(r.cardinality(), 2);
        assert_eq!(r.members(), vec![Nucleotide::A, Nucleotide::G]);
    }

    #[test]
    fn conditions_map_to_expected_codes() {
        assert_eq!(
            IupacCode::from_condition(MatchCondition::PyrimidineUc).to_char(),
            'Y'
        );
        assert_eq!(
            IupacCode::from_condition(MatchCondition::PurineAg).to_char(),
            'R'
        );
        assert_eq!(
            IupacCode::from_condition(MatchCondition::NotG).to_char(),
            'H'
        );
        assert_eq!(
            IupacCode::from_condition(MatchCondition::AOrC).to_char(),
            'M'
        );
    }

    #[test]
    fn papers_d_element_is_iupac_n() {
        // The paper's "D represents all the four nucleotides" — IUPAC
        // calls that N; IUPAC's own D is "not C".
        let d = PatternElement::Dependent(DependentFn::Any);
        assert_eq!(IupacCode::from_pattern_element(d).unwrap(), IupacCode::N);
        assert_eq!(IupacCode::from_char('D').unwrap().to_char(), 'D');
        assert_ne!(IupacCode::from_char('D').unwrap(), IupacCode::N);
    }

    #[test]
    fn dependent_functions_have_no_static_code() {
        for f in [DependentFn::Stop, DependentFn::Leu, DependentFn::Arg] {
            assert_eq!(
                IupacCode::from_pattern_element(PatternElement::Dependent(f)),
                None
            );
        }
    }

    #[test]
    fn pattern_element_round_trip_where_defined() {
        for aa in AminoAcid::ALL {
            for element in back_translate(aa).0 {
                if let Some(code) = IupacCode::from_pattern_element(element) {
                    let back = code.to_pattern_element().unwrap();
                    // Semantically equal: same accepted nucleotide set in
                    // context-free positions.
                    for n in Nucleotide::ALL {
                        assert_eq!(
                            element.matches(n, Some(Nucleotide::A), Some(Nucleotide::A)),
                            back.matches(n, Some(Nucleotide::A), Some(Nucleotide::A)),
                            "{aa:?} element {element}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn codes_without_fabp_instruction_return_none() {
        // W (A/U) and S (C/G) never occur in back-translation patterns.
        assert_eq!(
            IupacCode::from_char('W').unwrap().to_pattern_element(),
            None
        );
        assert_eq!(
            IupacCode::from_char('S').unwrap().to_pattern_element(),
            None
        );
        // K (G/U) and B/V/D likewise.
        assert_eq!(
            IupacCode::from_char('K').unwrap().to_pattern_element(),
            None
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mask_panics() {
        let _ = IupacCode::from_mask(0);
    }
}
