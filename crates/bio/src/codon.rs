//! Codons and the standard genetic code.
//!
//! A [`Codon`] is a non-overlapping three-letter window of an mRNA; the
//! standard codon table (paper Fig. 2) maps each of the 64 codons to one of
//! the 20 amino acids or the Stop signal.

use crate::alphabet::{AminoAcid, Nucleotide};
use std::fmt;

/// A three-nucleotide codon.
///
/// # Examples
///
/// ```
/// use fabp_bio::alphabet::{AminoAcid, Nucleotide};
/// use fabp_bio::codon::Codon;
///
/// let aug = Codon::new(Nucleotide::A, Nucleotide::U, Nucleotide::G);
/// assert_eq!(aug.translate(), AminoAcid::Met);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Codon(pub [Nucleotide; 3]);

impl Codon {
    /// Builds a codon from its three positions (5'→3').
    #[inline]
    pub const fn new(first: Nucleotide, second: Nucleotide, third: Nucleotide) -> Codon {
        Codon([first, second, third])
    }

    /// Reconstructs a codon from its dense 6-bit index
    /// (`first.code2() << 4 | second.code2() << 2 | third.code2()`).
    #[inline]
    pub const fn from_index(index: u8) -> Codon {
        Codon([
            Nucleotide::from_code2(index >> 4),
            Nucleotide::from_code2(index >> 2),
            Nucleotide::from_code2(index),
        ])
    }

    /// Dense index in `0..64` — the concatenated 2-bit codes of the three
    /// positions, first position most significant.
    #[inline]
    pub const fn index(self) -> usize {
        ((self.0[0].code2() as usize) << 4)
            | ((self.0[1].code2() as usize) << 2)
            | (self.0[2].code2() as usize)
    }

    /// Iterator over all 64 codons in index order.
    pub fn all() -> impl Iterator<Item = Codon> {
        (0u8..64).map(Codon::from_index)
    }

    /// Translates this codon under the standard genetic code.
    #[inline]
    pub fn translate(self) -> AminoAcid {
        CODON_TABLE[self.index()]
    }

    /// Parses a codon from exactly three nucleotide characters.
    ///
    /// # Errors
    ///
    /// Returns an error message if the length is not 3 or a character is not
    /// a nucleotide.
    pub fn from_str_strict(s: &str) -> Result<Codon, String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 3 {
            return Err(format!("codon must have 3 characters, got {}", chars.len()));
        }
        let mut bases = [Nucleotide::A; 3];
        for (i, &c) in chars.iter().enumerate() {
            bases[i] = Nucleotide::from_char(c).map_err(|e| e.to_string())?;
        }
        Ok(Codon(bases))
    }
}

impl fmt::Display for Codon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.0[0], self.0[1], self.0[2])
    }
}

/// The standard genetic code indexed by [`Codon::index`].
///
/// Generated once at first use from the per-amino-acid codon lists in
/// [`codons_of`], so the two views of the table can never drift apart.
pub static CODON_TABLE: CodonTable = CodonTable::new();

/// Lazily-built dense codon → amino-acid table.
pub struct CodonTable {
    cell: std::sync::OnceLock<[AminoAcid; 64]>,
}

impl CodonTable {
    const fn new() -> CodonTable {
        CodonTable {
            cell: std::sync::OnceLock::new(),
        }
    }

    fn table(&self) -> &[AminoAcid; 64] {
        self.cell.get_or_init(|| {
            let mut t = [None::<AminoAcid>; 64];
            for aa in AminoAcid::ALL {
                for codon in codons_of(aa) {
                    let idx = codon.index();
                    assert!(
                        t[idx].is_none(),
                        "codon {codon} assigned to two amino acids"
                    );
                    t[idx] = Some(aa);
                }
            }
            t.map(|slot| slot.expect("codon table must cover all 64 codons"))
        })
    }
}

impl std::ops::Index<usize> for CodonTable {
    type Output = AminoAcid;

    fn index(&self, idx: usize) -> &AminoAcid {
        &self.table()[idx]
    }
}

impl fmt::Debug for CodonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodonTable").finish_non_exhaustive()
    }
}

macro_rules! codon_list {
    ($name:ident: $($s:literal),+ $(,)?) => {
        const $name: &[Codon] = &[$(parse_codon_literal($s)),+];
    };
}

const fn parse_base(b: u8) -> Nucleotide {
    match b {
        b'A' => Nucleotide::A,
        b'C' => Nucleotide::C,
        b'G' => Nucleotide::G,
        b'U' => Nucleotide::U,
        _ => panic!("invalid codon literal"),
    }
}

const fn parse_codon_literal(s: &str) -> Codon {
    let b = s.as_bytes();
    assert!(b.len() == 3, "codon literal must be 3 bases");
    Codon([parse_base(b[0]), parse_base(b[1]), parse_base(b[2])])
}

codon_list!(ALA: "GCU", "GCC", "GCA", "GCG");
codon_list!(ARG: "CGU", "CGC", "CGA", "CGG", "AGA", "AGG");
codon_list!(ASN: "AAU", "AAC");
codon_list!(ASP: "GAU", "GAC");
codon_list!(CYS: "UGU", "UGC");
codon_list!(GLN: "CAA", "CAG");
codon_list!(GLU: "GAA", "GAG");
codon_list!(GLY: "GGU", "GGC", "GGA", "GGG");
codon_list!(HIS: "CAU", "CAC");
codon_list!(ILE: "AUU", "AUC", "AUA");
codon_list!(LEU: "UUA", "UUG", "CUU", "CUC", "CUA", "CUG");
codon_list!(LYS: "AAA", "AAG");
codon_list!(MET: "AUG");
codon_list!(PHE: "UUU", "UUC");
codon_list!(PRO: "CCU", "CCC", "CCA", "CCG");
codon_list!(SER: "UCU", "UCC", "UCA", "UCG", "AGU", "AGC");
codon_list!(THR: "ACU", "ACC", "ACA", "ACG");
codon_list!(TRP: "UGG");
codon_list!(TYR: "UAU", "UAC");
codon_list!(VAL: "GUU", "GUC", "GUA", "GUG");
codon_list!(STOP: "UAA", "UAG", "UGA");

/// The RNA codons that translate to `aa` under the standard genetic code.
///
/// The lists follow the standard table (NCBI translation table 1), which is
/// the one depicted in the paper's Fig. 2.
pub const fn codons_of(aa: AminoAcid) -> &'static [Codon] {
    match aa {
        AminoAcid::Ala => ALA,
        AminoAcid::Arg => ARG,
        AminoAcid::Asn => ASN,
        AminoAcid::Asp => ASP,
        AminoAcid::Cys => CYS,
        AminoAcid::Gln => GLN,
        AminoAcid::Glu => GLU,
        AminoAcid::Gly => GLY,
        AminoAcid::His => HIS,
        AminoAcid::Ile => ILE,
        AminoAcid::Leu => LEU,
        AminoAcid::Lys => LYS,
        AminoAcid::Met => MET,
        AminoAcid::Phe => PHE,
        AminoAcid::Pro => PRO,
        AminoAcid::Ser => SER,
        AminoAcid::Thr => THR,
        AminoAcid::Trp => TRP,
        AminoAcid::Tyr => TYR,
        AminoAcid::Val => VAL,
        AminoAcid::Stop => STOP,
    }
}

/// Number of codons that translate to `aa` (its degeneracy).
pub const fn degeneracy(aa: AminoAcid) -> usize {
    codons_of(aa).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codon_index_round_trip() {
        for codon in Codon::all() {
            assert_eq!(Codon::from_index(codon.index() as u8), codon);
        }
    }

    #[test]
    fn all_yields_64_unique_codons() {
        let codons: Vec<Codon> = Codon::all().collect();
        assert_eq!(codons.len(), 64);
        for (i, c) in codons.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn codon_lists_cover_table_exactly() {
        let total: usize = AminoAcid::ALL.iter().map(|&aa| degeneracy(aa)).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn translate_agrees_with_codon_lists() {
        for aa in AminoAcid::ALL {
            for &codon in codons_of(aa) {
                assert_eq!(codon.translate(), aa, "codon {codon}");
            }
        }
    }

    #[test]
    fn paper_fig2_spot_checks() {
        // Worked examples from §III-A.
        assert_eq!(
            Codon::from_str_strict("AUG").unwrap().translate(),
            AminoAcid::Met
        );
        assert_eq!(
            Codon::from_str_strict("UUU").unwrap().translate(),
            AminoAcid::Phe
        );
        assert_eq!(
            Codon::from_str_strict("UUC").unwrap().translate(),
            AminoAcid::Phe
        );
        assert_eq!(
            Codon::from_str_strict("UCA").unwrap().translate(),
            AminoAcid::Ser
        );
        assert_eq!(
            Codon::from_str_strict("AGA").unwrap().translate(),
            AminoAcid::Arg
        );
        assert_eq!(
            Codon::from_str_strict("CGG").unwrap().translate(),
            AminoAcid::Arg
        );
        assert_eq!(
            Codon::from_str_strict("UGA").unwrap().translate(),
            AminoAcid::Stop
        );
        assert_eq!(
            Codon::from_str_strict("UGG").unwrap().translate(),
            AminoAcid::Trp
        );
    }

    #[test]
    fn degeneracy_counts() {
        assert_eq!(degeneracy(AminoAcid::Met), 1);
        assert_eq!(degeneracy(AminoAcid::Trp), 1);
        assert_eq!(degeneracy(AminoAcid::Leu), 6);
        assert_eq!(degeneracy(AminoAcid::Ser), 6);
        assert_eq!(degeneracy(AminoAcid::Arg), 6);
        assert_eq!(degeneracy(AminoAcid::Stop), 3);
        assert_eq!(degeneracy(AminoAcid::Ile), 3);
    }

    #[test]
    fn from_str_strict_rejects_bad_input() {
        assert!(Codon::from_str_strict("AU").is_err());
        assert!(Codon::from_str_strict("AUGC").is_err());
        assert!(Codon::from_str_strict("AXG").is_err());
    }

    #[test]
    fn display_round_trips() {
        for codon in Codon::all() {
            let s = codon.to_string();
            assert_eq!(Codon::from_str_strict(&s).unwrap(), codon);
        }
    }
}
