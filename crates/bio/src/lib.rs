//! # fabp-bio — biological substrate for the FabP reproduction
//!
//! Alphabets, sequences, the standard genetic code, translation,
//! back-translation into FabP's Type I/II/III degenerate patterns, FASTA
//! I/O, mutation models and synthetic workload generators.
//!
//! This crate is the *golden model* of the reproduction: the bit-level
//! layers in `fabp-encoding` and `fabp-fpga` are property-tested against
//! the semantics defined here.
//!
//! ## Quick example
//!
//! ```
//! use fabp_bio::prelude::*;
//!
//! let query: ProteinSeq = "MFSR*".parse()?;
//! let bt = BackTranslatedQuery::from_protein(&query);
//! assert_eq!(bt.len(), 15); // 3 elements per amino acid
//!
//! let reference: RnaSeq = "AUGUUCUCAAGAUAA".parse()?;
//! assert_eq!(bt.score_window(reference.as_slice()), 15); // perfect hit
//! # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
//! ```

pub mod alphabet;
pub mod backtranslate;
pub mod blosum;
pub mod codon;
pub mod codon_usage;
pub mod fasta;
pub mod generate;
pub mod iupac;
pub mod mutate;
pub mod orf;
pub mod seq;
pub mod stats;
pub mod translate;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::alphabet::{AminoAcid, DnaNucleotide, Nucleotide};
    pub use crate::backtranslate::{
        back_translate, BackTranslatedQuery, BackTranslationMode, CodonPattern, DependentFn,
        ElementType, MatchCondition, PatternElement,
    };
    pub use crate::codon::{codons_of, Codon};
    pub use crate::codon_usage::CodonUsage;
    pub use crate::seq::{DnaSeq, PackedSeq, ProteinSeq, RnaSeq};
    pub use crate::translate::{translate_frame, translate_three_frames, Frame};
}
