//! Protein back-translation into degenerate codon patterns (paper §III-A).
//!
//! Back-translation maps each amino acid to the set of codons that could
//! have produced it. FabP represents that set as a three-element *pattern*
//! whose elements fall into the paper's three classes:
//!
//! * **Type I** — uniquely back-translated, exact element-wise comparison
//!   ([`PatternElement::Exact`]).
//! * **Type II** — non-unique but independent of other positions,
//!   conditional comparison ([`PatternElement::Conditional`] with a
//!   [`MatchCondition`]).
//! * **Type III** — dependent on an earlier element of the same codon,
//!   implemented by one of the hardware functions `F:00` (Stop), `F:01`
//!   (Leu), `F:10` (Arg) ([`PatternElement::Dependent`]). The
//!   "match-anything" element `D` is logically Type II but is encoded with
//!   the Type III opcode as function `F:11` for hardware simplicity
//!   (paper §III-B); we model it as [`DependentFn::Any`].
//!
//! This module is the **golden model**: every bit-level layer (the 6-bit
//! instruction encoding, the LUT truth tables, the cycle-level engine) is
//! property-tested against the semantics defined here.
//!
//! ## Fidelity notes
//!
//! The dependent functions discriminate their two branches by a *single bit*
//! of the earlier reference element, exactly as the hardware multiplexer
//! does (Fig. 5(a)): Stop and Leu use the MSB of the source element, Arg
//! uses the LSB. For reference elements that satisfy the pattern's earlier
//! positions the discrimination is exact; for arbitrary reference windows it
//! reproduces the hardware's (intentional) don't-care behaviour.
//!
//! The paper aggregates Serine as `UCD`, deliberately dropping its `AGU` and
//! `AGC` codons — only third-position dependence is expressible with the
//! F-functions. [`BackTranslationMode::Paper`] reproduces that;
//! [`BackTranslationMode::ExtendedSer`] adds the second pattern `AG(U/C)`
//! so full-sensitivity experiments are possible.

use crate::alphabet::{AminoAcid, Nucleotide};
use crate::codon::Codon;
use crate::seq::ProteinSeq;
use std::fmt;

/// The four Type II matching conditions that fit the 2-bit condition field
/// (paper §III-B). The paper observes five conditions in the codon table;
/// the fifth (`D`, match-anything) is encoded with the Type III opcode.
///
/// Discriminants are the hardware condition codes from Fig. 5(b)'s legend:
/// `U/C=00, A/G=01, G̅=10, A/C=11`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MatchCondition {
    /// Matches `U` or `C` (a pyrimidine). Hardware code `00`.
    PyrimidineUc = 0b00,
    /// Matches `A` or `G` (a purine). Hardware code `01`.
    PurineAg = 0b01,
    /// Matches anything except `G`. Hardware code `10`.
    NotG = 0b10,
    /// Matches `A` or `C`. Hardware code `11`.
    AOrC = 0b11,
}

impl MatchCondition {
    /// All four conditions in hardware-code order.
    pub const ALL: [MatchCondition; 4] = [
        MatchCondition::PyrimidineUc,
        MatchCondition::PurineAg,
        MatchCondition::NotG,
        MatchCondition::AOrC,
    ];

    /// The 2-bit hardware condition code.
    #[inline]
    pub const fn code2(self) -> u8 {
        self as u8
    }

    /// Reconstructs a condition from its 2-bit hardware code.
    #[inline]
    pub const fn from_code2(code: u8) -> MatchCondition {
        match code & 0b11 {
            0b00 => MatchCondition::PyrimidineUc,
            0b01 => MatchCondition::PurineAg,
            0b10 => MatchCondition::NotG,
            _ => MatchCondition::AOrC,
        }
    }

    /// Whether `reference` satisfies this condition.
    #[inline]
    pub const fn matches(self, reference: Nucleotide) -> bool {
        match self {
            MatchCondition::PyrimidineUc => {
                matches!(reference, Nucleotide::U | Nucleotide::C)
            }
            MatchCondition::PurineAg => matches!(reference, Nucleotide::A | Nucleotide::G),
            MatchCondition::NotG => !matches!(reference, Nucleotide::G),
            MatchCondition::AOrC => matches!(reference, Nucleotide::A | Nucleotide::C),
        }
    }
}

impl fmt::Display for MatchCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchCondition::PyrimidineUc => "U/C",
            MatchCondition::PurineAg => "A/G",
            MatchCondition::NotG => "G\u{0305}", // G with overline, the paper's G̅
            MatchCondition::AOrC => "A/C",
        })
    }
}

/// The four Type III hardware functions (paper §III-B).
///
/// Discriminants are the 2-bit `F` codes: `F:00` Stop, `F:01` Leu,
/// `F:10` Arg, `F:11` the match-anything element `D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DependentFn {
    /// `F:00` — third element of the Stop codons `{UAA, UAG, UGA}`:
    /// if the previous element is `A`-like, match `A/G`; if `G`-like,
    /// match only `A`.
    Stop = 0b00,
    /// `F:01` — third element of Leucine (`CUD` or `UUA/G`): if the
    /// first codon element is `C`-like, match anything; if `U`-like,
    /// match `A/G`.
    Leu = 0b01,
    /// `F:10` — third element of Arginine (`(A/C)G…`): if the first codon
    /// element is `A`-like, match `A/G`; if `C`-like, match anything.
    Arg = 0b10,
    /// `F:11` — the element `D`: matches all four nucleotides.
    Any = 0b11,
}

impl DependentFn {
    /// All four functions in `F`-code order.
    pub const ALL: [DependentFn; 4] = [
        DependentFn::Stop,
        DependentFn::Leu,
        DependentFn::Arg,
        DependentFn::Any,
    ];

    /// The 2-bit `F` code.
    #[inline]
    pub const fn code2(self) -> u8 {
        self as u8
    }

    /// Reconstructs a function from its 2-bit `F` code.
    #[inline]
    pub const fn from_code2(code: u8) -> DependentFn {
        match code & 0b11 {
            0b00 => DependentFn::Stop,
            0b01 => DependentFn::Leu,
            0b10 => DependentFn::Arg,
            _ => DependentFn::Any,
        }
    }

    /// Which earlier reference element the hardware multiplexer taps, and
    /// which of its two bits (Fig. 5(a)): `(offset, bit)` where `offset` is
    /// 1 for `Ref^{i-1}` or 2 for `Ref^{i-2}` and `bit` is 0 (LSB) or 1
    /// (MSB) of the 2-bit base code.
    ///
    /// Returns `None` for [`DependentFn::Any`], whose output ignores the
    /// selected bit.
    #[inline]
    pub const fn source_tap(self) -> Option<(usize, u8)> {
        match self {
            DependentFn::Stop => Some((1, 1)), // Ref^{i-1}[1]
            DependentFn::Leu => Some((2, 1)),  // Ref^{i-2}[1]
            DependentFn::Arg => Some((2, 0)),  // Ref^{i-2}[0]
            DependentFn::Any => None,
        }
    }

    /// Evaluates the function given the multiplexer-selected bit `s` and
    /// the current reference element — the exact truth table of Fig. 5(b)'s
    /// "Dependent matching" columns.
    #[inline]
    pub const fn eval(self, s: bool, reference: Nucleotide) -> bool {
        match self {
            DependentFn::Stop => {
                if s {
                    matches!(reference, Nucleotide::A)
                } else {
                    matches!(reference, Nucleotide::A | Nucleotide::G)
                }
            }
            DependentFn::Leu => {
                if s {
                    matches!(reference, Nucleotide::A | Nucleotide::G)
                } else {
                    true
                }
            }
            DependentFn::Arg => {
                if s {
                    true
                } else {
                    matches!(reference, Nucleotide::A | Nucleotide::G)
                }
            }
            DependentFn::Any => true,
        }
    }

    /// Evaluates the function against full earlier-element context.
    ///
    /// `prev1` is the reference element one position back (`Ref^{i-1}`),
    /// `prev2` two positions back (`Ref^{i-2}`). Missing context (window
    /// truncated at the start) selects `s = 0`, matching the hardware whose
    /// shift registers reset to zero.
    #[inline]
    pub fn eval_in_context(
        self,
        reference: Nucleotide,
        prev1: Option<Nucleotide>,
        prev2: Option<Nucleotide>,
    ) -> bool {
        let s = match self.source_tap() {
            None => false,
            Some((offset, bit)) => {
                let src = if offset == 1 { prev1 } else { prev2 };
                match src {
                    Some(n) => (n.code2() >> bit) & 1 == 1,
                    None => false,
                }
            }
        };
        self.eval(s, reference)
    }
}

impl fmt::Display for DependentFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependentFn::Stop => write!(f, "F:00"),
            DependentFn::Leu => write!(f, "F:01"),
            DependentFn::Arg => write!(f, "F:10"),
            DependentFn::Any => write!(f, "D"),
        }
    }
}

/// The paper's element type taxonomy (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementType {
    /// Uniquely back-translated; exact comparison.
    TypeI,
    /// Non-unique, independent of other positions; conditional comparison.
    TypeII,
    /// Depends on an earlier element of the codon; dependent comparison.
    TypeIII,
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ElementType::TypeI => "Type I",
            ElementType::TypeII => "Type II",
            ElementType::TypeIII => "Type III",
        })
    }
}

/// One element of a back-translated (degenerate) codon pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternElement {
    /// Type I: the reference element must equal this nucleotide.
    Exact(Nucleotide),
    /// Type II: the reference element must satisfy the condition.
    Conditional(MatchCondition),
    /// Type III (and `D`): evaluated by a hardware function against earlier
    /// reference elements.
    Dependent(DependentFn),
}

impl PatternElement {
    /// The paper's type classification of this element.
    ///
    /// `D` reports [`ElementType::TypeII`] — the paper calls it a Type II
    /// element even though it shares the Type III opcode.
    #[inline]
    pub const fn element_type(self) -> ElementType {
        match self {
            PatternElement::Exact(_) => ElementType::TypeI,
            PatternElement::Conditional(_) => ElementType::TypeII,
            PatternElement::Dependent(DependentFn::Any) => ElementType::TypeII,
            PatternElement::Dependent(_) => ElementType::TypeIII,
        }
    }

    /// Whether `reference` matches this element given earlier reference
    /// elements (`prev1` = one back, `prev2` = two back).
    ///
    /// This is the golden element-wise comparison every hardware layer must
    /// agree with.
    #[inline]
    pub fn matches(
        self,
        reference: Nucleotide,
        prev1: Option<Nucleotide>,
        prev2: Option<Nucleotide>,
    ) -> bool {
        match self {
            PatternElement::Exact(n) => reference == n,
            PatternElement::Conditional(cond) => cond.matches(reference),
            PatternElement::Dependent(func) => func.eval_in_context(reference, prev1, prev2),
        }
    }

    /// The set of nucleotides this element can match in *some* context.
    pub fn possible_matches(self) -> Vec<Nucleotide> {
        Nucleotide::ALL
            .into_iter()
            .filter(|&n| {
                Nucleotide::ALL.into_iter().any(|p1| {
                    Nucleotide::ALL
                        .into_iter()
                        .any(|p2| self.matches(n, Some(p1), Some(p2)))
                })
            })
            .collect()
    }
}

impl fmt::Display for PatternElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternElement::Exact(n) => write!(f, "{n}"),
            PatternElement::Conditional(c) => write!(f, "({c})"),
            PatternElement::Dependent(DependentFn::Any) => write!(f, "D"),
            PatternElement::Dependent(func) => write!(f, "({func})"),
        }
    }
}

/// A back-translated codon: three pattern elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodonPattern(pub [PatternElement; 3]);

impl CodonPattern {
    /// Whether the pattern matches a whole reference codon (all three
    /// elements match).
    pub fn matches_codon(&self, codon: Codon) -> bool {
        let [a, b, c] = codon.0;
        self.0[0].matches(a, None, None)
            && self.0[1].matches(b, Some(a), None)
            && self.0[2].matches(c, Some(b), Some(a))
    }

    /// The set of codons this pattern accepts.
    pub fn accepted_codons(&self) -> Vec<Codon> {
        Codon::all().filter(|&c| self.matches_codon(c)).collect()
    }

    /// Iterates over the three elements.
    pub fn iter(&self) -> std::slice::Iter<'_, PatternElement> {
        self.0.iter()
    }
}

impl fmt::Display for CodonPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.0[0], self.0[1], self.0[2])
    }
}

/// How Serine's six codons are represented.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackTranslationMode {
    /// The paper's scheme: Ser = `UCD`, silently dropping `AGU`/`AGC`
    /// (§III-A lists only the four `UCx` codons).
    #[default]
    Paper,
    /// Extension: Ser is represented by two patterns, `UCD` and `AG(U/C)`,
    /// restoring full codon coverage at the cost of a second query pass.
    ExtendedSer,
}

/// Back-translates one amino acid into its primary degenerate codon pattern
/// (the paper's scheme, Fig. 2 / §III-A).
///
/// # Examples
///
/// ```
/// use fabp_bio::alphabet::AminoAcid;
/// use fabp_bio::backtranslate::back_translate;
///
/// assert_eq!(back_translate(AminoAcid::Phe).to_string(), "UU(U/C)");
/// assert_eq!(back_translate(AminoAcid::Met).to_string(), "AUG");
/// ```
pub fn back_translate(aa: AminoAcid) -> CodonPattern {
    use DependentFn as F;
    use MatchCondition as C;
    use Nucleotide::{A, C as Cy, G, U};
    use PatternElement::{Conditional as Cond, Dependent as Dep, Exact};

    match aa {
        AminoAcid::Ala => CodonPattern([Exact(G), Exact(Cy), Dep(F::Any)]),
        AminoAcid::Arg => CodonPattern([Cond(C::AOrC), Exact(G), Dep(F::Arg)]),
        AminoAcid::Asn => CodonPattern([Exact(A), Exact(A), Cond(C::PyrimidineUc)]),
        AminoAcid::Asp => CodonPattern([Exact(G), Exact(A), Cond(C::PyrimidineUc)]),
        AminoAcid::Cys => CodonPattern([Exact(U), Exact(G), Cond(C::PyrimidineUc)]),
        AminoAcid::Gln => CodonPattern([Exact(Cy), Exact(A), Cond(C::PurineAg)]),
        AminoAcid::Glu => CodonPattern([Exact(G), Exact(A), Cond(C::PurineAg)]),
        AminoAcid::Gly => CodonPattern([Exact(G), Exact(G), Dep(F::Any)]),
        AminoAcid::His => CodonPattern([Exact(Cy), Exact(A), Cond(C::PyrimidineUc)]),
        AminoAcid::Ile => CodonPattern([Exact(A), Exact(U), Cond(C::NotG)]),
        AminoAcid::Leu => CodonPattern([Cond(C::PyrimidineUc), Exact(U), Dep(F::Leu)]),
        AminoAcid::Lys => CodonPattern([Exact(A), Exact(A), Cond(C::PurineAg)]),
        AminoAcid::Met => CodonPattern([Exact(A), Exact(U), Exact(G)]),
        AminoAcid::Phe => CodonPattern([Exact(U), Exact(U), Cond(C::PyrimidineUc)]),
        AminoAcid::Pro => CodonPattern([Exact(Cy), Exact(Cy), Dep(F::Any)]),
        AminoAcid::Ser => CodonPattern([Exact(U), Exact(Cy), Dep(F::Any)]),
        AminoAcid::Thr => CodonPattern([Exact(A), Exact(Cy), Dep(F::Any)]),
        AminoAcid::Trp => CodonPattern([Exact(U), Exact(G), Exact(G)]),
        AminoAcid::Tyr => CodonPattern([Exact(U), Exact(A), Cond(C::PyrimidineUc)]),
        AminoAcid::Val => CodonPattern([Exact(G), Exact(U), Dep(F::Any)]),
        AminoAcid::Stop => CodonPattern([Exact(U), Cond(C::PurineAg), Dep(F::Stop)]),
    }
}

/// The secondary Serine pattern `AG(U/C)` used by
/// [`BackTranslationMode::ExtendedSer`].
pub fn serine_secondary_pattern() -> CodonPattern {
    CodonPattern([
        PatternElement::Exact(Nucleotide::A),
        PatternElement::Exact(Nucleotide::G),
        PatternElement::Conditional(MatchCondition::PyrimidineUc),
    ])
}

/// A whole back-translated query: the paper's *consensus sequence*.
///
/// Flattens one [`CodonPattern`] per amino acid into a single element
/// stream of length `3 × protein length` — the `L_q` the hardware works
/// with ("After the back-translation, the length of the query sequence is
/// multiplied by three", §IV-A).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BackTranslatedQuery {
    elements: Vec<PatternElement>,
}

impl BackTranslatedQuery {
    /// Back-translates `protein` with the paper's per-amino-acid patterns.
    pub fn from_protein(protein: &ProteinSeq) -> BackTranslatedQuery {
        let mut elements = Vec::with_capacity(protein.len() * 3);
        for &aa in protein {
            elements.extend(back_translate(aa).0);
        }
        BackTranslatedQuery { elements }
    }

    /// Builds a query directly from pattern elements (used by tests and the
    /// exact-RNA query path).
    pub fn from_elements(elements: Vec<PatternElement>) -> BackTranslatedQuery {
        BackTranslatedQuery { elements }
    }

    /// Builds an exact-match query from an RNA sequence (every element
    /// Type I) — FabP degenerates to plain nucleotide alignment.
    pub fn from_exact_rna(rna: &crate::seq::RnaSeq) -> BackTranslatedQuery {
        BackTranslatedQuery {
            elements: rna.iter().map(|&n| PatternElement::Exact(n)).collect(),
        }
    }

    /// Number of elements (`L_q`, three per amino acid).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` when the query holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Borrow the elements.
    pub fn elements(&self) -> &[PatternElement] {
        &self.elements
    }

    /// Golden alignment score of this query against one reference window:
    /// the number of element-wise matches (paper §III-C — FabP "only counts
    /// the differences", i.e. the score is the popcount of matches).
    ///
    /// `window` must be at least as long as the query; extra elements are
    /// ignored. Earlier-element context for Type III elements comes from
    /// the *reference window*, exactly as the hardware's shift taps do.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() < self.len()`.
    pub fn score_window(&self, window: &[Nucleotide]) -> usize {
        assert!(
            window.len() >= self.len(),
            "window ({}) shorter than query ({})",
            window.len(),
            self.len()
        );
        self.elements
            .iter()
            .enumerate()
            .filter(|&(i, element)| {
                let prev1 = i.checked_sub(1).map(|j| window[j]);
                let prev2 = i.checked_sub(2).map(|j| window[j]);
                element.matches(window[i], prev1, prev2)
            })
            .count()
    }

    /// Golden sliding-window scores against a full reference: one score per
    /// alignment position `0 ..= reference.len() - query.len()` — the
    /// paper's `L_r - L_q + 1` independent alignment instances.
    ///
    /// Returns an empty vector when the reference is shorter than the query.
    pub fn score_all_positions(&self, reference: &[Nucleotide]) -> Vec<usize> {
        if reference.len() < self.len() || self.is_empty() {
            return Vec::new();
        }
        (0..=reference.len() - self.len())
            .map(|k| self.score_window(&reference[k..]))
            .collect()
    }

    /// Count of elements per [`ElementType`], in order (I, II, III).
    pub fn type_histogram(&self) -> [usize; 3] {
        let mut h = [0usize; 3];
        for e in &self.elements {
            match e.element_type() {
                ElementType::TypeI => h[0] += 1,
                ElementType::TypeII => h[1] += 1,
                ElementType::TypeIII => h[2] += 1,
            }
        }
        h
    }
}

impl fmt::Display for BackTranslatedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.elements {
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codon::codons_of;

    /// Codons a pattern should accept: the amino acid's codon list, minus
    /// the paper's documented Ser exception.
    fn expected_codons(aa: AminoAcid) -> Vec<Codon> {
        let mut v: Vec<Codon> = codons_of(aa).to_vec();
        if aa == AminoAcid::Ser {
            v.retain(|c| c.0[0] == Nucleotide::U); // drop AGU, AGC
        }
        v.sort();
        v
    }

    #[test]
    fn pattern_accepts_exactly_the_codon_set() {
        for aa in AminoAcid::ALL {
            let pattern = back_translate(aa);
            let mut accepted = pattern.accepted_codons();
            accepted.sort();
            assert_eq!(
                accepted,
                expected_codons(aa),
                "pattern {pattern} for {aa:?} accepts the wrong codon set"
            );
        }
    }

    #[test]
    fn serine_secondary_covers_the_dropped_codons() {
        let pattern = serine_secondary_pattern();
        let mut accepted = pattern.accepted_codons();
        accepted.sort();
        let mut expected = vec![
            Codon::from_str_strict("AGU").unwrap(),
            Codon::from_str_strict("AGC").unwrap(),
        ];
        expected.sort();
        assert_eq!(accepted, expected);
    }

    #[test]
    fn paper_notation_round_trip() {
        // §III-A worked notation.
        assert_eq!(back_translate(AminoAcid::Phe).to_string(), "UU(U/C)");
        assert_eq!(
            back_translate(AminoAcid::Ile).to_string(),
            format!("AU({})", MatchCondition::NotG)
        );
        assert_eq!(back_translate(AminoAcid::Ser).to_string(), "UCD");
        assert_eq!(back_translate(AminoAcid::Arg).to_string(), "(A/C)G(F:10)");
        assert_eq!(back_translate(AminoAcid::Stop).to_string(), "U(A/G)(F:00)");
        assert_eq!(back_translate(AminoAcid::Leu).to_string(), "(U/C)U(F:01)");
    }

    #[test]
    fn element_types_follow_the_paper() {
        // Phe = UU(U/C): two Type I then a Type II (§III-A).
        let phe = back_translate(AminoAcid::Phe);
        assert_eq!(phe.0[0].element_type(), ElementType::TypeI);
        assert_eq!(phe.0[1].element_type(), ElementType::TypeI);
        assert_eq!(phe.0[2].element_type(), ElementType::TypeII);
        // D is "a Type II element" even though it shares the Type III opcode.
        let ser = back_translate(AminoAcid::Ser);
        assert_eq!(ser.0[2].element_type(), ElementType::TypeII);
        // Leu/Arg/Stop third elements are Type III.
        for aa in [AminoAcid::Leu, AminoAcid::Arg, AminoAcid::Stop] {
            assert_eq!(back_translate(aa).0[2].element_type(), ElementType::TypeIII);
        }
    }

    #[test]
    fn dependent_fn_truth_tables_match_fig5b() {
        use Nucleotide::{A, C, G, U};
        // Stop column.
        let f = DependentFn::Stop;
        assert!(f.eval(false, A) && !f.eval(false, C) && f.eval(false, G) && !f.eval(false, U));
        assert!(f.eval(true, A) && !f.eval(true, C) && !f.eval(true, G) && !f.eval(true, U));
        // Leu column.
        let f = DependentFn::Leu;
        assert!(f.eval(false, A) && f.eval(false, C) && f.eval(false, G) && f.eval(false, U));
        assert!(f.eval(true, A) && !f.eval(true, C) && f.eval(true, G) && !f.eval(true, U));
        // Arg column.
        let f = DependentFn::Arg;
        assert!(f.eval(false, A) && !f.eval(false, C) && f.eval(false, G) && !f.eval(false, U));
        assert!(f.eval(true, A) && f.eval(true, C) && f.eval(true, G) && f.eval(true, U));
        // D column.
        let f = DependentFn::Any;
        for s in [false, true] {
            for n in Nucleotide::ALL {
                assert!(f.eval(s, n));
            }
        }
    }

    #[test]
    fn source_taps_match_fig5a_inputs() {
        assert_eq!(DependentFn::Stop.source_tap(), Some((1, 1)));
        assert_eq!(DependentFn::Leu.source_tap(), Some((2, 1)));
        assert_eq!(DependentFn::Arg.source_tap(), Some((2, 0)));
        assert_eq!(DependentFn::Any.source_tap(), None);
    }

    #[test]
    fn dependent_elements_only_in_third_position() {
        for aa in AminoAcid::ALL {
            let pattern = back_translate(aa);
            for element in &pattern.0[..2] {
                assert!(
                    !matches!(
                        element,
                        PatternElement::Dependent(DependentFn::Stop)
                            | PatternElement::Dependent(DependentFn::Leu)
                            | PatternElement::Dependent(DependentFn::Arg)
                    ),
                    "{aa:?}: dependent function before codon position 2"
                );
            }
        }
    }

    #[test]
    fn condition_codes_match_fig5b_legend() {
        assert_eq!(MatchCondition::PyrimidineUc.code2(), 0b00);
        assert_eq!(MatchCondition::PurineAg.code2(), 0b01);
        assert_eq!(MatchCondition::NotG.code2(), 0b10);
        assert_eq!(MatchCondition::AOrC.code2(), 0b11);
        for c in MatchCondition::ALL {
            assert_eq!(MatchCondition::from_code2(c.code2()), c);
        }
        for f in DependentFn::ALL {
            assert_eq!(DependentFn::from_code2(f.code2()), f);
        }
    }

    #[test]
    fn paper_query_example_back_translation() {
        // §III-B: Q = {Met-Phe-Ser-Arg-Stop}
        // → {AUG - UU(U/C) - UCD - (A/C)G(F:10) - U(A/G)(F:00)}
        // (the paper prints "UUD" for Ser; the codon table makes it UCD —
        //  see DESIGN.md fidelity notes).
        let q: ProteinSeq = "MFSR*".parse().unwrap();
        let bt = BackTranslatedQuery::from_protein(&q);
        assert_eq!(bt.len(), 15);
        assert_eq!(bt.to_string(), "AUGUU(U/C)UCD(A/C)G(F:10)U(A/G)(F:00)");
    }

    #[test]
    fn score_window_counts_matches() {
        let q: ProteinSeq = "MF".parse().unwrap(); // AUG UU(U/C)
        let bt = BackTranslatedQuery::from_protein(&q);
        let reference: crate::seq::RnaSeq = "AUGUUC".parse().unwrap();
        assert_eq!(bt.score_window(reference.as_slice()), 6);
        let mismatch: crate::seq::RnaSeq = "AUGUUG".parse().unwrap();
        assert_eq!(bt.score_window(mismatch.as_slice()), 5);
        let worse: crate::seq::RnaSeq = "CCCUUG".parse().unwrap();
        assert_eq!(bt.score_window(worse.as_slice()), 2);
    }

    #[test]
    fn score_all_positions_counts_instances() {
        let q: ProteinSeq = "M".parse().unwrap();
        let bt = BackTranslatedQuery::from_protein(&q);
        let reference: crate::seq::RnaSeq = "AAUGAUGA".parse().unwrap();
        let scores = bt.score_all_positions(reference.as_slice());
        // L_r - L_q + 1 = 8 - 3 + 1 = 6 alignment instances.
        assert_eq!(scores.len(), 6);
        assert_eq!(scores[1], 3); // AUG at offset 1
        assert_eq!(scores[4], 3); // AUG at offset 4
    }

    #[test]
    fn score_all_positions_short_reference() {
        let q: ProteinSeq = "MF".parse().unwrap();
        let bt = BackTranslatedQuery::from_protein(&q);
        let reference: crate::seq::RnaSeq = "AUG".parse().unwrap();
        assert!(bt.score_all_positions(reference.as_slice()).is_empty());
    }

    #[test]
    fn exact_rna_query_scores_hamming() {
        let rna: crate::seq::RnaSeq = "ACGU".parse().unwrap();
        let bt = BackTranslatedQuery::from_exact_rna(&rna);
        assert_eq!(bt.score_window(rna.as_slice()), 4);
        let other: crate::seq::RnaSeq = "ACGA".parse().unwrap();
        assert_eq!(bt.score_window(other.as_slice()), 3);
    }

    #[test]
    fn type_histogram_for_paper_example() {
        let q: ProteinSeq = "MFSR*".parse().unwrap();
        let bt = BackTranslatedQuery::from_protein(&q);
        let [t1, t2, t3] = bt.type_histogram();
        // AUG: 3×I. UU(U/C): 2×I + 1×II. UCD: 2×I + 1×II (D).
        // (A/C)G(F:10): 1×II + 1×I + 1×III. U(A/G)(F:00): 1×I + 1×II + 1×III.
        assert_eq!(t1, 9);
        assert_eq!(t2, 4);
        assert_eq!(t3, 2);
        assert_eq!(t1 + t2 + t3, bt.len());
    }

    #[test]
    fn possible_matches_of_d_is_everything() {
        let d = PatternElement::Dependent(DependentFn::Any);
        assert_eq!(d.possible_matches(), Nucleotide::ALL.to_vec());
        let exact = PatternElement::Exact(Nucleotide::G);
        assert_eq!(exact.possible_matches(), vec![Nucleotide::G]);
    }
}
