//! Sequence statistics: composition, GC content, k-mer entropy.
//!
//! Used by the workload generators' tests (synthetic references should be
//! statistically unremarkable) and by examples to sanity-check inputs.

use crate::alphabet::Nucleotide;
use crate::seq::RnaSeq;

/// Nucleotide composition of a sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Composition {
    /// Count per nucleotide, indexed by [`Nucleotide::code2`].
    pub counts: [usize; 4],
}

impl Composition {
    /// Computes the composition of a sequence.
    pub fn of(seq: &RnaSeq) -> Composition {
        let mut counts = [0usize; 4];
        for &base in seq {
            counts[base.code2() as usize] += 1;
        }
        Composition { counts }
    }

    /// Total bases counted.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of a given nucleotide (0 for empty sequences).
    pub fn fraction(&self, base: Nucleotide) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[base.code2() as usize] as f64 / total as f64
        }
    }

    /// GC content in `[0, 1]`.
    pub fn gc_content(&self) -> f64 {
        self.fraction(Nucleotide::G) + self.fraction(Nucleotide::C)
    }
}

/// Shannon entropy (bits per symbol) of the k-mer distribution of a
/// sequence. Uniform random RNA approaches `2k` bits; repetitive or biased
/// sequences score lower.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 16` (k-mers are packed 2 bits each into a
/// `u32`).
pub fn kmer_entropy(seq: &RnaSeq, k: usize) -> f64 {
    assert!((1..=16).contains(&k), "k must be in 1..=16");
    if seq.len() < k {
        return 0.0;
    }
    let mask: u32 = if k == 16 {
        u32::MAX
    } else {
        (1u32 << (2 * k)) - 1
    };
    let mut counts = std::collections::HashMap::new();
    let mut kmer: u32 = 0;
    for (i, &base) in seq.iter().enumerate() {
        kmer = ((kmer << 2) | u32::from(base.code2())) & mask;
        if i + 1 >= k {
            *counts.entry(kmer).or_insert(0usize) += 1;
        }
    }
    let total = (seq.len() - k + 1) as f64;
    -counts
        .values()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_rna;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn composition_counts() {
        let seq: RnaSeq = "AACGGGUU".parse().unwrap();
        let c = Composition::of(&seq);
        assert_eq!(c.counts, [2, 1, 3, 2]);
        assert_eq!(c.total(), 8);
        assert!((c.fraction(Nucleotide::G) - 0.375).abs() < 1e-12);
        assert!((c.gc_content() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_composition() {
        let c = Composition::of(&RnaSeq::new());
        assert_eq!(c.total(), 0);
        assert_eq!(c.fraction(Nucleotide::A), 0.0);
    }

    #[test]
    fn random_rna_entropy_is_near_maximal() {
        let mut rng = StdRng::seed_from_u64(0x57A7);
        let seq = random_rna(100_000, &mut rng);
        let h1 = kmer_entropy(&seq, 1);
        assert!((h1 - 2.0).abs() < 0.01, "1-mer entropy {h1}");
        let h3 = kmer_entropy(&seq, 3);
        assert!((h3 - 6.0).abs() < 0.05, "3-mer entropy {h3}");
    }

    #[test]
    fn repetitive_sequence_entropy_is_low() {
        let seq: RnaSeq = "ACACACACACACACAC".parse().unwrap();
        assert!((kmer_entropy(&seq, 1) - 1.0).abs() < 1e-9);
        // Only two distinct 2-mers: AC and CA.
        assert!(kmer_entropy(&seq, 2) < 1.01);
    }

    #[test]
    fn short_sequence_entropy_is_zero() {
        let seq: RnaSeq = "AC".parse().unwrap();
        assert_eq!(kmer_entropy(&seq, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn entropy_rejects_zero_k() {
        let _ = kmer_entropy(&RnaSeq::new(), 0);
    }
}
