//! Codon usage tables and usage-weighted back-translation.
//!
//! The paper's abstract describes back-translation as generating "an mRNA
//! sequence representing the most likely non-degenerate coding sequence".
//! FabP sidesteps picking one by matching *all* codons via degenerate
//! patterns, but the most-likely sequence is still needed when a concrete
//! mRNA must be produced (primer design, workload generation with
//! realistic codon bias). This module provides per-organism codon usage
//! tables and the derived generators.
//!
//! Frequencies are the widely tabulated genome-wide fractions (rounded);
//! swap in exact Kazusa counts via [`CodonUsage::from_weights`] if needed.

use crate::alphabet::AminoAcid;
use crate::codon::{codons_of, Codon};
use crate::seq::{ProteinSeq, RnaSeq};
use rand::Rng;

/// Per-codon usage weights, normalised within each amino acid.
#[derive(Debug, Clone, PartialEq)]
pub struct CodonUsage {
    /// Human-readable source label.
    name: &'static str,
    /// Weight per codon index (0..64), normalised so each amino acid's
    /// codons sum to 1.
    weights: [f64; 64],
}

impl CodonUsage {
    /// Uniform usage: every codon of an amino acid equally likely.
    pub fn uniform() -> CodonUsage {
        let mut weights = [0.0f64; 64];
        for aa in AminoAcid::ALL {
            let codons = codons_of(aa);
            for codon in codons {
                weights[codon.index()] = 1.0 / codons.len() as f64;
            }
        }
        CodonUsage {
            name: "uniform",
            weights,
        }
    }

    /// Builds a table from `(codon, weight)` pairs; weights are
    /// renormalised within each amino acid. Codons not listed get weight 0
    /// unless their amino acid has no listed codon at all, in which case
    /// its codons stay uniform.
    ///
    /// # Panics
    ///
    /// Panics if any listed weight is negative.
    pub fn from_weights(name: &'static str, pairs: &[(&str, f64)]) -> CodonUsage {
        let mut usage = CodonUsage::uniform();
        usage.name = name;
        let mut listed = [false; 64];
        let mut raw = [0.0f64; 64];
        for &(codon_str, w) in pairs {
            assert!(w >= 0.0, "negative codon weight for {codon_str}");
            let codon = Codon::from_str_strict(codon_str)
                .unwrap_or_else(|e| panic!("bad codon literal {codon_str}: {e}"));
            raw[codon.index()] = w;
            listed[codon.index()] = true;
        }
        for aa in AminoAcid::ALL {
            let codons = codons_of(aa);
            if !codons.iter().any(|c| listed[c.index()]) {
                continue; // keep uniform
            }
            let total: f64 = codons.iter().map(|c| raw[c.index()]).sum();
            for c in codons {
                usage.weights[c.index()] = if total > 0.0 {
                    raw[c.index()] / total
                } else {
                    1.0 / codons.len() as f64
                };
            }
        }
        usage
    }

    /// Approximate human genome-wide codon usage (fractions per amino
    /// acid).
    pub fn human() -> CodonUsage {
        CodonUsage::from_weights(
            "human",
            &[
                ("GCU", 0.27),
                ("GCC", 0.40),
                ("GCA", 0.23),
                ("GCG", 0.11),
                ("CGU", 0.08),
                ("CGC", 0.18),
                ("CGA", 0.11),
                ("CGG", 0.20),
                ("AGA", 0.21),
                ("AGG", 0.21),
                ("AAU", 0.47),
                ("AAC", 0.53),
                ("GAU", 0.46),
                ("GAC", 0.54),
                ("UGU", 0.46),
                ("UGC", 0.54),
                ("CAA", 0.27),
                ("CAG", 0.73),
                ("GAA", 0.42),
                ("GAG", 0.58),
                ("GGU", 0.16),
                ("GGC", 0.34),
                ("GGA", 0.25),
                ("GGG", 0.25),
                ("CAU", 0.42),
                ("CAC", 0.58),
                ("AUU", 0.36),
                ("AUC", 0.47),
                ("AUA", 0.17),
                ("UUA", 0.08),
                ("UUG", 0.13),
                ("CUU", 0.13),
                ("CUC", 0.20),
                ("CUA", 0.07),
                ("CUG", 0.40),
                ("AAA", 0.43),
                ("AAG", 0.57),
                ("AUG", 1.0),
                ("UUU", 0.46),
                ("UUC", 0.54),
                ("CCU", 0.29),
                ("CCC", 0.32),
                ("CCA", 0.28),
                ("CCG", 0.11),
                ("UCU", 0.19),
                ("UCC", 0.22),
                ("UCA", 0.15),
                ("UCG", 0.05),
                ("AGU", 0.15),
                ("AGC", 0.24),
                ("ACU", 0.25),
                ("ACC", 0.36),
                ("ACA", 0.28),
                ("ACG", 0.11),
                ("UGG", 1.0),
                ("UAU", 0.44),
                ("UAC", 0.56),
                ("GUU", 0.18),
                ("GUC", 0.24),
                ("GUA", 0.12),
                ("GUG", 0.46),
                ("UAA", 0.30),
                ("UAG", 0.24),
                ("UGA", 0.47),
            ],
        )
    }

    /// Approximate E. coli K-12 codon usage (fractions per amino acid).
    pub fn e_coli() -> CodonUsage {
        CodonUsage::from_weights(
            "e_coli",
            &[
                ("GCU", 0.16),
                ("GCC", 0.27),
                ("GCA", 0.21),
                ("GCG", 0.36),
                ("CGU", 0.38),
                ("CGC", 0.40),
                ("CGA", 0.06),
                ("CGG", 0.10),
                ("AGA", 0.04),
                ("AGG", 0.02),
                ("AAU", 0.45),
                ("AAC", 0.55),
                ("GAU", 0.63),
                ("GAC", 0.37),
                ("UGU", 0.45),
                ("UGC", 0.55),
                ("CAA", 0.35),
                ("CAG", 0.65),
                ("GAA", 0.69),
                ("GAG", 0.31),
                ("GGU", 0.34),
                ("GGC", 0.40),
                ("GGA", 0.11),
                ("GGG", 0.15),
                ("CAU", 0.57),
                ("CAC", 0.43),
                ("AUU", 0.51),
                ("AUC", 0.42),
                ("AUA", 0.07),
                ("UUA", 0.13),
                ("UUG", 0.13),
                ("CUU", 0.10),
                ("CUC", 0.10),
                ("CUA", 0.04),
                ("CUG", 0.50),
                ("AAA", 0.77),
                ("AAG", 0.23),
                ("AUG", 1.0),
                ("UUU", 0.57),
                ("UUC", 0.43),
                ("CCU", 0.16),
                ("CCC", 0.12),
                ("CCA", 0.19),
                ("CCG", 0.53),
                ("UCU", 0.15),
                ("UCC", 0.15),
                ("UCA", 0.12),
                ("UCG", 0.15),
                ("AGU", 0.15),
                ("AGC", 0.28),
                ("ACU", 0.17),
                ("ACC", 0.44),
                ("ACA", 0.13),
                ("ACG", 0.27),
                ("UGG", 1.0),
                ("UAU", 0.57),
                ("UAC", 0.43),
                ("GUU", 0.26),
                ("GUC", 0.22),
                ("GUA", 0.15),
                ("GUG", 0.37),
                ("UAA", 0.64),
                ("UAG", 0.07),
                ("UGA", 0.29),
            ],
        )
    }

    /// Source label of this table.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Usage fraction of `codon` among its amino acid's codons.
    pub fn fraction(&self, codon: Codon) -> f64 {
        self.weights[codon.index()]
    }

    /// The most frequent codon for `aa` (ties: table order).
    pub fn most_likely_codon(&self, aa: AminoAcid) -> Codon {
        *codons_of(aa)
            .iter()
            .max_by(|a, b| {
                self.fraction(**a)
                    .partial_cmp(&self.fraction(**b))
                    .expect("weights are finite")
            })
            .expect("every amino acid has codons")
    }

    /// The "most likely non-degenerate coding sequence" of a protein
    /// (paper abstract): the concatenation of each residue's most frequent
    /// codon.
    pub fn most_likely_coding(&self, protein: &ProteinSeq) -> RnaSeq {
        let mut rna = RnaSeq::with_capacity(protein.len() * 3);
        for &aa in protein {
            rna.extend(self.most_likely_codon(aa).0);
        }
        rna
    }

    /// Samples one codon for `aa` with usage-proportional probability.
    pub fn sample_codon<R: Rng + ?Sized>(&self, aa: AminoAcid, rng: &mut R) -> Codon {
        let codons = codons_of(aa);
        let mut x: f64 = rng.gen_range(0.0..1.0);
        for &codon in codons {
            x -= self.fraction(codon);
            if x <= 0.0 {
                return codon;
            }
        }
        *codons.last().expect("every amino acid has codons")
    }

    /// A usage-weighted random coding sequence for a protein — workload
    /// generation with realistic codon bias.
    pub fn sample_coding<R: Rng + ?Sized>(&self, protein: &ProteinSeq, rng: &mut R) -> RnaSeq {
        let mut rna = RnaSeq::with_capacity(protein.len() * 3);
        for &aa in protein {
            rna.extend(self.sample_codon(aa, rng).0);
        }
        rna
    }
}

impl Default for CodonUsage {
    fn default() -> CodonUsage {
        CodonUsage::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_protein;
    use crate::translate::translate_frame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fractions_sum_to_one_per_amino_acid() {
        for usage in [
            CodonUsage::uniform(),
            CodonUsage::human(),
            CodonUsage::e_coli(),
        ] {
            for aa in AminoAcid::ALL {
                let total: f64 = codons_of(aa).iter().map(|&c| usage.fraction(c)).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "{} / {aa:?}: total {total}",
                    usage.name()
                );
            }
        }
    }

    #[test]
    fn most_likely_coding_translates_back() {
        let mut rng = StdRng::seed_from_u64(0xC0D);
        let protein = random_protein(60, &mut rng);
        for usage in [
            CodonUsage::uniform(),
            CodonUsage::human(),
            CodonUsage::e_coli(),
        ] {
            let rna = usage.most_likely_coding(&protein);
            assert_eq!(translate_frame(&rna, 0), protein, "{}", usage.name());
        }
    }

    #[test]
    fn sampled_coding_translates_back() {
        let mut rng = StdRng::seed_from_u64(0xC0E);
        let protein = random_protein(40, &mut rng);
        let usage = CodonUsage::human();
        for _ in 0..10 {
            let rna = usage.sample_coding(&protein, &mut rng);
            assert_eq!(translate_frame(&rna, 0), protein);
        }
    }

    #[test]
    fn organisms_prefer_different_codons() {
        // Arg: human favours CGG/AGA-ish, E. coli strongly CGC/CGU.
        let human = CodonUsage::human().most_likely_codon(AminoAcid::Arg);
        let ecoli = CodonUsage::e_coli().most_likely_codon(AminoAcid::Arg);
        assert_ne!(human, ecoli);
        assert_eq!(ecoli.to_string(), "CGC");
    }

    #[test]
    fn sampling_matches_fractions() {
        let usage = CodonUsage::human();
        let mut rng = StdRng::seed_from_u64(0xC0F);
        let n = 20_000;
        let mut cag = 0usize;
        for _ in 0..n {
            if usage.sample_codon(AminoAcid::Gln, &mut rng).to_string() == "CAG" {
                cag += 1;
            }
        }
        let share = cag as f64 / n as f64;
        assert!((share - 0.73).abs() < 0.02, "CAG share {share}");
    }

    #[test]
    fn from_weights_renormalises() {
        let usage = CodonUsage::from_weights("test", &[("UUU", 3.0), ("UUC", 1.0)]);
        let uuu = Codon::from_str_strict("UUU").unwrap();
        assert!((usage.fraction(uuu) - 0.75).abs() < 1e-12);
        // Unlisted amino acids stay uniform.
        let aug = Codon::from_str_strict("AUG").unwrap();
        assert!((usage.fraction(aug) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative codon weight")]
    fn negative_weight_panics() {
        let _ = CodonUsage::from_weights("bad", &[("UUU", -1.0)]);
    }

    #[test]
    fn uniform_is_default() {
        assert_eq!(CodonUsage::default(), CodonUsage::uniform());
    }
}
