//! The BLOSUM62 substitution matrix.
//!
//! TBLASTN scores protein–protein alignments (query vs. translated
//! reference) with BLOSUM62 by default; the Smith–Waterman and
//! TBLASTN-like baselines in `fabp-baselines` use this table.

use crate::alphabet::AminoAcid;

/// Number of symbols scored by the matrix (20 amino acids + Stop).
pub const ALPHABET_SIZE: usize = 21;

/// BLOSUM62 in NCBI symbol order `A R N D C Q E G H I L K M F P S T W Y V *`
/// — which is exactly [`AminoAcid`]'s index order, so the table can be
/// indexed directly with [`AminoAcid::index`].
///
/// Stop (`*`) scores −4 against everything and +1 against itself, matching
/// NCBI's convention.
#[rustfmt::skip]
const BLOSUM62: [[i32; ALPHABET_SIZE]; ALPHABET_SIZE] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   *
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -4], // A
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -4], // R
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3, -4], // N
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3, -4], // D
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -4], // C
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2, -4], // Q
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2, -4], // E
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -4], // G
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3, -4], // H
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -4], // I
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4], // L
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2, -4], // K
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -4], // M
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -4], // F
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -4], // P
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2, -4], // S
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -4], // T
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4], // W
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -4], // Y
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -4], // V
    [-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1], // *
];

/// BLOSUM62 score for substituting `a` with `b`.
///
/// # Examples
///
/// ```
/// use fabp_bio::alphabet::AminoAcid;
/// use fabp_bio::blosum::blosum62;
///
/// assert_eq!(blosum62(AminoAcid::Trp, AminoAcid::Trp), 11);
/// assert_eq!(blosum62(AminoAcid::Ala, AminoAcid::Arg), -1);
/// ```
#[inline]
pub fn blosum62(a: AminoAcid, b: AminoAcid) -> i32 {
    BLOSUM62[a.index()][b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        for a in AminoAcid::ALL {
            for b in AminoAcid::ALL {
                assert_eq!(blosum62(a, b), blosum62(b, a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn diagonal_is_positive_and_maximal_in_row() {
        for a in AminoAcid::ALL {
            let self_score = blosum62(a, a);
            assert!(self_score > 0, "{a:?} self-score {self_score}");
            for b in AminoAcid::ALL {
                if a != b {
                    assert!(
                        blosum62(a, b) <= self_score,
                        "{a:?}/{b:?} exceeds self-score"
                    );
                }
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(blosum62(AminoAcid::Trp, AminoAcid::Trp), 11);
        assert_eq!(blosum62(AminoAcid::Cys, AminoAcid::Cys), 9);
        assert_eq!(blosum62(AminoAcid::Ile, AminoAcid::Val), 3);
        assert_eq!(blosum62(AminoAcid::Leu, AminoAcid::Ile), 2);
        assert_eq!(blosum62(AminoAcid::Trp, AminoAcid::Gly), -2);
        assert_eq!(blosum62(AminoAcid::Stop, AminoAcid::Stop), 1);
        assert_eq!(blosum62(AminoAcid::Stop, AminoAcid::Ala), -4);
    }

    #[test]
    fn average_off_diagonal_is_negative() {
        // A substitution matrix must have negative expected score for random
        // pairs; a weak proxy: the mean off-diagonal entry is negative.
        let mut sum = 0i64;
        let mut n = 0i64;
        for a in AminoAcid::STANDARD {
            for b in AminoAcid::STANDARD {
                if a != b {
                    sum += i64::from(blosum62(a, b));
                    n += 1;
                }
            }
        }
        assert!(sum / n < 0);
    }
}
