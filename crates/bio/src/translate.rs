//! Forward translation: nucleotide sequences → protein, in one or many
//! reading frames.
//!
//! TBLASTN (the paper's CPU baseline) "translates the reference sequences to
//! proteins and then aligns the query with the translated reference
//! sequence" (§II). For a single-stranded RNA reference that means the three
//! forward reading frames; for double-stranded DNA it is six (three per
//! strand).

use crate::alphabet::Nucleotide;
use crate::codon::Codon;
use crate::seq::{DnaSeq, ProteinSeq, RnaSeq};

/// Identifies a reading frame of a (possibly double-stranded) reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Offset of the first codon within the (possibly reverse-complemented)
    /// strand: 0, 1 or 2.
    pub offset: u8,
    /// `true` when the frame reads the reverse-complement strand.
    pub reverse: bool,
}

impl Frame {
    /// The three forward frames.
    pub const FORWARD: [Frame; 3] = [
        Frame {
            offset: 0,
            reverse: false,
        },
        Frame {
            offset: 1,
            reverse: false,
        },
        Frame {
            offset: 2,
            reverse: false,
        },
    ];

    /// All six frames (forward then reverse).
    pub const ALL_SIX: [Frame; 6] = [
        Frame {
            offset: 0,
            reverse: false,
        },
        Frame {
            offset: 1,
            reverse: false,
        },
        Frame {
            offset: 2,
            reverse: false,
        },
        Frame {
            offset: 0,
            reverse: true,
        },
        Frame {
            offset: 1,
            reverse: true,
        },
        Frame {
            offset: 2,
            reverse: true,
        },
    ];

    /// Maps a protein coordinate in this frame back to the nucleotide
    /// coordinate (on the forward strand) of the codon's first base.
    ///
    /// `seq_len` is the nucleotide length of the reference.
    pub fn to_nucleotide_pos(self, protein_pos: usize, seq_len: usize) -> usize {
        let strand_pos = self.offset as usize + 3 * protein_pos;
        if self.reverse {
            // Position on the reverse strand maps to seq_len - 1 - strand_pos
            // on the forward strand (codon start = highest coordinate).
            seq_len - 1 - strand_pos
        } else {
            strand_pos
        }
    }
}

/// Translates an RNA sequence in a single forward frame starting at
/// `offset` (0, 1 or 2). Trailing bases that do not fill a codon are
/// dropped.
///
/// # Examples
///
/// ```
/// use fabp_bio::seq::RnaSeq;
/// use fabp_bio::translate::translate_frame;
///
/// let rna: RnaSeq = "AUGUUU".parse()?;
/// assert_eq!(translate_frame(&rna, 0).to_string(), "MF");
/// assert_eq!(translate_frame(&rna, 1).to_string(), "C"); // UGU
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
pub fn translate_frame(rna: &RnaSeq, offset: u8) -> ProteinSeq {
    translate_slice(&rna.as_slice()[usize::from(offset).min(rna.len())..])
}

/// Translates a raw nucleotide slice codon-by-codon from its start.
pub fn translate_slice(bases: &[Nucleotide]) -> ProteinSeq {
    bases
        .chunks_exact(3)
        .map(|c| Codon::new(c[0], c[1], c[2]).translate())
        .collect()
}

/// Translates all three forward frames of an RNA sequence.
pub fn translate_three_frames(rna: &RnaSeq) -> [ProteinSeq; 3] {
    [
        translate_frame(rna, 0),
        translate_frame(rna, 1),
        translate_frame(rna, 2),
    ]
}

/// Translates all six frames of a DNA sequence (three forward, three on the
/// reverse complement).
pub fn translate_six_frames(dna: &DnaSeq) -> [(Frame, ProteinSeq); 6] {
    let fwd = dna.to_rna();
    let rev = dna.reverse_complement().to_rna();
    Frame::ALL_SIX.map(|frame| {
        let strand = if frame.reverse { &rev } else { &fwd };
        (frame, translate_frame(strand, frame.offset))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_basic_orf() {
        let rna: RnaSeq = "AUGUUUUCUAGAUAA".parse().unwrap(); // M F S R *
        assert_eq!(translate_frame(&rna, 0).to_string(), "MFSR*");
    }

    #[test]
    fn translate_drops_partial_codon() {
        let rna: RnaSeq = "AUGUU".parse().unwrap();
        assert_eq!(translate_frame(&rna, 0).to_string(), "M");
        assert_eq!(translate_frame(&rna, 2).to_string(), "V"); // GUU
    }

    #[test]
    fn three_frames_have_expected_lengths() {
        let rna: RnaSeq = "AUGUUUACG".parse().unwrap(); // 9 bases
        let frames = translate_three_frames(&rna);
        assert_eq!(frames[0].len(), 3);
        assert_eq!(frames[1].len(), 2);
        assert_eq!(frames[2].len(), 2);
    }

    #[test]
    fn offset_beyond_length_is_empty() {
        let rna: RnaSeq = "AU".parse().unwrap();
        assert!(translate_frame(&rna, 2).is_empty());
        assert!(translate_frame(&rna, 0).is_empty());
    }

    #[test]
    fn six_frames_cover_reverse_strand() {
        let dna: DnaSeq = "ATGAAA".parse().unwrap(); // fwd frame0: MK
        let frames = translate_six_frames(&dna);
        assert_eq!(frames[0].1.to_string(), "MK");
        // reverse complement of ATGAAA is TTTCAT -> FH? TTT CAT = F H
        assert_eq!(frames[3].1.to_string(), "FH");
        assert!(frames[3].0.reverse);
    }

    #[test]
    fn frame_coordinate_mapping_forward() {
        let f = Frame {
            offset: 1,
            reverse: false,
        };
        assert_eq!(f.to_nucleotide_pos(0, 100), 1);
        assert_eq!(f.to_nucleotide_pos(5, 100), 16);
    }

    #[test]
    fn frame_coordinate_mapping_reverse() {
        let f = Frame {
            offset: 0,
            reverse: true,
        };
        // First codon of the reverse strand starts at the last forward base.
        assert_eq!(f.to_nucleotide_pos(0, 100), 99);
        assert_eq!(f.to_nucleotide_pos(1, 100), 96);
    }

    #[test]
    fn translate_slice_matches_frame() {
        let rna: RnaSeq = "AUGGCUUAA".parse().unwrap();
        assert_eq!(translate_slice(rna.as_slice()), translate_frame(&rna, 0));
    }
}
