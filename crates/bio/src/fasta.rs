//! Minimal FASTA reading and writing.
//!
//! The paper's workloads come from the NCBI protein (`nr`) and nucleotide
//! (`nt`) FASTA databases; this module lets the examples and benchmark
//! harness load real FASTA files when available and write the synthetic
//! databases they generate.

use crate::alphabet::ParseSymbolError;
use crate::seq::{DnaSeq, ProteinSeq, RnaSeq};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::str::FromStr;

/// One FASTA record: a header line and the raw residue text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Record {
    /// Identifier: the header up to the first whitespace (without `>`).
    pub id: String,
    /// Remainder of the header line after the identifier.
    pub description: String,
    /// Concatenated sequence lines (whitespace removed), unparsed.
    pub sequence: String,
}

impl Record {
    /// Creates a record from an identifier and sequence text.
    pub fn new(id: impl Into<String>, sequence: impl Into<String>) -> Record {
        Record {
            id: id.into(),
            description: String::new(),
            sequence: sequence.into(),
        }
    }

    /// Parses the sequence text as a given sequence type.
    ///
    /// # Errors
    ///
    /// Propagates the symbol error of the target alphabet.
    pub fn parse_as<S: FromStr<Err = ParseSymbolError>>(&self) -> Result<S, ParseSymbolError> {
        self.sequence.parse()
    }
}

/// Errors produced while reading FASTA.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A `>` header was followed by no sequence lines (or only gap
    /// characters) before the next header or end of input.
    EmptyRecord {
        /// Identifier from the offending header.
        id: String,
        /// 1-based line number of the offending header.
        line: usize,
    },
    /// A residue failed to parse as the requested alphabet, with the
    /// record it came from for context.
    Symbol {
        /// Identifier of the record the bad residue is in.
        id: String,
        /// 1-based line number of the record's header.
        line: usize,
        /// The underlying symbol error.
        source: ParseSymbolError,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "fasta i/o error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before first '>' header at line {line}")
            }
            FastaError::EmptyRecord { id, line } => {
                write!(
                    f,
                    "record '{id}' (header at line {line}) has no sequence data"
                )
            }
            FastaError::Symbol { id, line, source } => {
                write!(f, "record '{id}' (header at line {line}): {source}")
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            FastaError::Symbol { source, .. } => Some(source),
            FastaError::MissingHeader { .. } | FastaError::EmptyRecord { .. } => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> FastaError {
        FastaError::Io(e)
    }
}

/// Reads all FASTA records from `reader`, normalizing real-world mess.
///
/// Blank lines are ignored; `;` comment lines (an old FASTA dialect) are
/// skipped. CRLF line endings are accepted, lowercase residues are
/// uppercased (the NCBI soft-masking convention), and `-`/`.` alignment
/// gap characters are stripped, so the returned sequences contain only
/// residue symbols. A `&mut R` can be passed for readers you want to
/// keep.
///
/// # Errors
///
/// Returns [`FastaError`] on I/O failure, sequence data before the first
/// header, or a header with no sequence data at all
/// ([`FastaError::EmptyRecord`]).
///
/// # Examples
///
/// ```
/// use fabp_bio::fasta::read_records;
/// let text = ">q1 demo\r\nmfsr\nMK\n>q2\nac-gt..\n";
/// let records = read_records(text.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].id, "q1");
/// assert_eq!(records[0].sequence, "MFSRMK");
/// assert_eq!(records[1].sequence, "ACGT");
/// # Ok::<(), fabp_bio::fasta::FastaError>(())
/// ```
pub fn read_records<R: Read>(reader: R) -> Result<Vec<Record>, FastaError> {
    Ok(read_records_with_lines(reader)?
        .into_iter()
        .map(|(record, _)| record)
        .collect())
}

/// Like [`read_records`] but pairs each record with the 1-based line
/// number of its header, for error context in the typed readers.
fn read_records_with_lines<R: Read>(reader: R) -> Result<Vec<(Record, usize)>, FastaError> {
    let buf = BufReader::new(reader);
    let mut records: Vec<(Record, usize)> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some((last, header_line)) = records.last() {
                if last.sequence.is_empty() {
                    return Err(FastaError::EmptyRecord {
                        id: last.id.clone(),
                        line: *header_line,
                    });
                }
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            records.push((
                Record {
                    id,
                    description,
                    sequence: String::new(),
                },
                idx + 1,
            ));
        } else {
            let (record, _) = records
                .last_mut()
                .ok_or(FastaError::MissingHeader { line: idx + 1 })?;
            record.sequence.extend(
                trimmed
                    .chars()
                    .filter(|c| !c.is_whitespace() && *c != '-' && *c != '.')
                    .map(|c| c.to_ascii_uppercase()),
            );
        }
    }
    if let Some((last, header_line)) = records.last() {
        if last.sequence.is_empty() {
            return Err(FastaError::EmptyRecord {
                id: last.id.clone(),
                line: *header_line,
            });
        }
    }
    Ok(records)
}

/// Writes records in FASTA format, wrapping sequences at `width` columns.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_records<W: Write>(mut writer: W, records: &[Record], width: usize) -> io::Result<()> {
    let width = width.max(1);
    for record in records {
        if record.description.is_empty() {
            writeln!(writer, ">{}", record.id)?;
        } else {
            writeln!(writer, ">{} {}", record.id, record.description)?;
        }
        let bytes = record.sequence.as_bytes();
        for chunk in bytes.chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Reads and parses every record as a protein sequence.
///
/// # Errors
///
/// Returns the structural FASTA error, or [`FastaError::Symbol`] naming
/// the record (id + header line) whose residues failed to parse.
pub fn read_proteins<R: Read>(reader: R) -> Result<Vec<(String, ProteinSeq)>, FastaError> {
    read_typed(reader)
}

/// Reads and parses every record as a DNA sequence.
///
/// # Errors
///
/// See [`read_proteins`].
pub fn read_dna<R: Read>(reader: R) -> Result<Vec<(String, DnaSeq)>, FastaError> {
    read_typed(reader)
}

/// Reads and parses every record as an RNA sequence.
///
/// # Errors
///
/// See [`read_proteins`].
pub fn read_rna<R: Read>(reader: R) -> Result<Vec<(String, RnaSeq)>, FastaError> {
    read_typed(reader)
}

fn read_typed<R: Read, S: FromStr<Err = ParseSymbolError>>(
    reader: R,
) -> Result<Vec<(String, S)>, FastaError> {
    let records = read_records_with_lines(reader)?;
    records
        .into_iter()
        .map(|(r, line)| match r.parse_as::<S>() {
            Ok(seq) => Ok((r.id, seq)),
            Err(source) => Err(FastaError::Symbol {
                id: r.id,
                line,
                source,
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_text() {
        let records = vec![
            Record {
                id: "a".into(),
                description: "first record".into(),
                sequence: "MFSRMKLV".into(),
            },
            Record::new("b", "ACGT"),
        ];
        let mut out = Vec::new();
        write_records(&mut out, &records, 4).unwrap();
        let parsed = read_records(out.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn wrapping_splits_lines() {
        let records = vec![Record::new("x", "AAAAAAAAAA")];
        let mut out = Vec::new();
        write_records(&mut out, &records, 4).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, ">x\nAAAA\nAAAA\nAA\n");
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = read_records("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "; comment\n\n>s\nAC\n; another\nGT\n\n";
        let records = read_records(text.as_bytes()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].sequence, "ACGT");
    }

    #[test]
    fn typed_readers_parse_sequences() {
        let proteins = read_proteins(">p\nMFW\n".as_bytes()).unwrap();
        assert_eq!(proteins[0].1.to_string(), "MFW");
        let dna = read_dna(">d\nACGT\n".as_bytes()).unwrap();
        assert_eq!(dna[0].1.to_string(), "ACGT");
        let rna = read_rna(">r\nACGU\n".as_bytes()).unwrap();
        assert_eq!(rna[0].1.to_string(), "ACGU");
    }

    #[test]
    fn typed_reader_propagates_symbol_errors() {
        assert!(read_proteins(">p\nMF!\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(read_records("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn header_without_description() {
        let records = read_records(">only_id\nAC\n".as_bytes()).unwrap();
        assert_eq!(records[0].id, "only_id");
        assert!(records[0].description.is_empty());
    }

    // --- Regressions for real-world messy inputs that used to corrupt
    // sequences or pass silently: CRLF, lowercase soft-masking, gap
    // characters, and headers with no sequence.

    #[test]
    fn crlf_line_endings_are_normalized() {
        let text = ">q1 desc here\r\nMFSR\r\nMK\r\n>q2\r\nACGU\r\n";
        let records = read_records(text.as_bytes()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "q1");
        assert_eq!(records[0].description, "desc here");
        assert_eq!(records[0].sequence, "MFSRMK");
        assert_eq!(records[1].sequence, "ACGU");
    }

    #[test]
    fn lowercase_residues_are_uppercased() {
        // NCBI soft-masks repeats as lowercase; they are the same
        // residues and must not fail the alphabet parse downstream.
        let records = read_records(">r\nacgUAcg\n".as_bytes()).unwrap();
        assert_eq!(records[0].sequence, "ACGUACG");
        let rna = read_rna(">r\nacgu\n".as_bytes()).unwrap();
        assert_eq!(rna[0].1.to_string(), "ACGU");
    }

    #[test]
    fn gap_characters_are_stripped() {
        let records = read_records(">aln\nAC-GU\n..AC--GU.\n".as_bytes()).unwrap();
        assert_eq!(records[0].sequence, "ACGUACGU");
    }

    #[test]
    fn empty_record_after_header_is_a_typed_error() {
        // Mid-file: header immediately followed by another header.
        let err = read_records(">empty\n>full\nACGU\n".as_bytes()).unwrap_err();
        match err {
            FastaError::EmptyRecord { id, line } => {
                assert_eq!(id, "empty");
                assert_eq!(line, 1);
            }
            other => panic!("expected EmptyRecord, got {other:?}"),
        }
        // Trailing: header at end of input.
        let err = read_records(">full\nACGU\n>tail junk\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { line: 3, .. }));
        // A record whose lines are all gaps is empty too.
        let err = read_records(">gaps\n---\n...\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { line: 1, .. }));
        assert!(err.to_string().contains("gaps"));
    }

    #[test]
    fn symbol_errors_carry_record_context() {
        let err = read_proteins(">good\nMFW\n>bad one\nMF!\n".as_bytes()).unwrap_err();
        match &err {
            FastaError::Symbol { id, line, .. } => {
                assert_eq!(id, "bad");
                assert_eq!(*line, 3);
            }
            other => panic!("expected Symbol, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("'bad'") && msg.contains("line 3"),
            "msg: {msg}"
        );
        assert!(std::error::Error::source(&err).is_some());
    }
}
