//! Minimal FASTA reading and writing.
//!
//! The paper's workloads come from the NCBI protein (`nr`) and nucleotide
//! (`nt`) FASTA databases; this module lets the examples and benchmark
//! harness load real FASTA files when available and write the synthetic
//! databases they generate.

use crate::alphabet::ParseSymbolError;
use crate::seq::{DnaSeq, ProteinSeq, RnaSeq};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::str::FromStr;

/// One FASTA record: a header line and the raw residue text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Record {
    /// Identifier: the header up to the first whitespace (without `>`).
    pub id: String,
    /// Remainder of the header line after the identifier.
    pub description: String,
    /// Concatenated sequence lines (whitespace removed), unparsed.
    pub sequence: String,
}

impl Record {
    /// Creates a record from an identifier and sequence text.
    pub fn new(id: impl Into<String>, sequence: impl Into<String>) -> Record {
        Record {
            id: id.into(),
            description: String::new(),
            sequence: sequence.into(),
        }
    }

    /// Parses the sequence text as a given sequence type.
    ///
    /// # Errors
    ///
    /// Propagates the symbol error of the target alphabet.
    pub fn parse_as<S: FromStr<Err = ParseSymbolError>>(&self) -> Result<S, ParseSymbolError> {
        self.sequence.parse()
    }
}

/// Errors produced while reading FASTA.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "fasta i/o error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before first '>' header at line {line}")
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            FastaError::MissingHeader { .. } => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> FastaError {
        FastaError::Io(e)
    }
}

/// Reads all FASTA records from `reader`.
///
/// Blank lines are ignored; `;` comment lines (an old FASTA dialect) are
/// skipped. A `&mut R` can be passed for readers you want to keep.
///
/// # Errors
///
/// Returns [`FastaError`] on I/O failure or malformed structure.
///
/// # Examples
///
/// ```
/// use fabp_bio::fasta::read_records;
/// let text = ">q1 demo\nMFSR\nMK\n>q2\nACGT\n";
/// let records = read_records(text.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].id, "q1");
/// assert_eq!(records[0].sequence, "MFSRMK");
/// # Ok::<(), fabp_bio::fasta::FastaError>(())
/// ```
pub fn read_records<R: Read>(reader: R) -> Result<Vec<Record>, FastaError> {
    let buf = BufReader::new(reader);
    let mut records: Vec<Record> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            records.push(Record {
                id,
                description,
                sequence: String::new(),
            });
        } else {
            let record = records
                .last_mut()
                .ok_or(FastaError::MissingHeader { line: idx + 1 })?;
            record
                .sequence
                .extend(trimmed.chars().filter(|c| !c.is_whitespace()));
        }
    }
    Ok(records)
}

/// Writes records in FASTA format, wrapping sequences at `width` columns.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_records<W: Write>(mut writer: W, records: &[Record], width: usize) -> io::Result<()> {
    let width = width.max(1);
    for record in records {
        if record.description.is_empty() {
            writeln!(writer, ">{}", record.id)?;
        } else {
            writeln!(writer, ">{} {}", record.id, record.description)?;
        }
        let bytes = record.sequence.as_bytes();
        for chunk in bytes.chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Reads and parses every record as a protein sequence.
///
/// # Errors
///
/// Returns the FASTA error or the first symbol that fails to parse
/// (as a boxed error, since the two error types differ).
pub fn read_proteins<R: Read>(
    reader: R,
) -> Result<Vec<(String, ProteinSeq)>, Box<dyn std::error::Error + Send + Sync>> {
    read_typed(reader)
}

/// Reads and parses every record as a DNA sequence.
///
/// # Errors
///
/// See [`read_proteins`].
pub fn read_dna<R: Read>(
    reader: R,
) -> Result<Vec<(String, DnaSeq)>, Box<dyn std::error::Error + Send + Sync>> {
    read_typed(reader)
}

/// Reads and parses every record as an RNA sequence.
///
/// # Errors
///
/// See [`read_proteins`].
pub fn read_rna<R: Read>(
    reader: R,
) -> Result<Vec<(String, RnaSeq)>, Box<dyn std::error::Error + Send + Sync>> {
    read_typed(reader)
}

fn read_typed<R: Read, S: FromStr<Err = ParseSymbolError>>(
    reader: R,
) -> Result<Vec<(String, S)>, Box<dyn std::error::Error + Send + Sync>> {
    let records = read_records(reader)?;
    records
        .into_iter()
        .map(|r| Ok((r.id.clone(), r.parse_as::<S>()?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_text() {
        let records = vec![
            Record {
                id: "a".into(),
                description: "first record".into(),
                sequence: "MFSRMKLV".into(),
            },
            Record::new("b", "ACGT"),
        ];
        let mut out = Vec::new();
        write_records(&mut out, &records, 4).unwrap();
        let parsed = read_records(out.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn wrapping_splits_lines() {
        let records = vec![Record::new("x", "AAAAAAAAAA")];
        let mut out = Vec::new();
        write_records(&mut out, &records, 4).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, ">x\nAAAA\nAAAA\nAA\n");
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = read_records("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "; comment\n\n>s\nAC\n; another\nGT\n\n";
        let records = read_records(text.as_bytes()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].sequence, "ACGT");
    }

    #[test]
    fn typed_readers_parse_sequences() {
        let proteins = read_proteins(">p\nMFW\n".as_bytes()).unwrap();
        assert_eq!(proteins[0].1.to_string(), "MFW");
        let dna = read_dna(">d\nACGT\n".as_bytes()).unwrap();
        assert_eq!(dna[0].1.to_string(), "ACGT");
        let rna = read_rna(">r\nACGU\n".as_bytes()).unwrap();
        assert_eq!(rna[0].1.to_string(), "ACGU");
    }

    #[test]
    fn typed_reader_propagates_symbol_errors() {
        assert!(read_proteins(">p\nMF!\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(read_records("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn header_without_description() {
        let records = read_records(">only_id\nAC\n".as_bytes()).unwrap();
        assert_eq!(records[0].id, "only_id");
        assert!(records[0].description.is_empty());
    }
}
