//! Biological alphabets: RNA/DNA nucleotides and amino acids.
//!
//! FabP's hardware encoding assigns the 2-bit codes `A=00, C=01, G=10, U=11`
//! (paper §III-B); [`Nucleotide::code2`] and [`Nucleotide::from_code2`]
//! implement exactly that mapping so every layer above (query instructions,
//! reference packing, LUT truth tables) agrees on the bit-level view.

use std::fmt;

/// Error returned when a byte/char does not belong to the target alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParseSymbolError {
    /// The offending character.
    pub found: char,
    /// Name of the alphabet that rejected it (`"nucleotide"`, `"amino acid"`, ...).
    pub alphabet: &'static str,
}

impl fmt::Display for ParseSymbolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} symbol {:?}", self.alphabet, self.found)
    }
}

impl std::error::Error for ParseSymbolError {}

/// An RNA nucleotide.
///
/// The discriminants are the 2-bit hardware codes used throughout FabP
/// (`A=00, C=01, G=10, U=11`).
///
/// # Examples
///
/// ```
/// use fabp_bio::alphabet::Nucleotide;
/// assert_eq!(Nucleotide::U.code2(), 0b11);
/// assert_eq!(Nucleotide::from_code2(0b01), Nucleotide::C);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Nucleotide {
    /// Adenine (hardware code `00`).
    A = 0b00,
    /// Cytosine (hardware code `01`).
    C = 0b01,
    /// Guanine (hardware code `10`).
    G = 0b10,
    /// Uracil (hardware code `11`).
    U = 0b11,
}

impl Nucleotide {
    /// All four nucleotides in hardware-code order.
    pub const ALL: [Nucleotide; 4] = [Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::U];

    /// The 2-bit hardware code of this nucleotide (paper §III-B).
    #[inline]
    pub const fn code2(self) -> u8 {
        self as u8
    }

    /// Reconstructs a nucleotide from its 2-bit hardware code.
    ///
    /// Only the low two bits of `code` are used.
    #[inline]
    pub const fn from_code2(code: u8) -> Nucleotide {
        match code & 0b11 {
            0b00 => Nucleotide::A,
            0b01 => Nucleotide::C,
            0b10 => Nucleotide::G,
            _ => Nucleotide::U,
        }
    }

    /// Watson–Crick complement (`A↔U`, `C↔G`).
    #[inline]
    pub const fn complement(self) -> Nucleotide {
        match self {
            Nucleotide::A => Nucleotide::U,
            Nucleotide::U => Nucleotide::A,
            Nucleotide::C => Nucleotide::G,
            Nucleotide::G => Nucleotide::C,
        }
    }

    /// `true` when the base is a purine (`A` or `G`).
    #[inline]
    pub const fn is_purine(self) -> bool {
        matches!(self, Nucleotide::A | Nucleotide::G)
    }

    /// `true` when the base is a pyrimidine (`C` or `U`).
    #[inline]
    pub const fn is_pyrimidine(self) -> bool {
        !self.is_purine()
    }

    /// One-letter character for this nucleotide.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Nucleotide::A => 'A',
            Nucleotide::C => 'C',
            Nucleotide::G => 'G',
            Nucleotide::U => 'U',
        }
    }

    /// Parses a one-letter RNA code (case-insensitive; `T` is accepted as `U`
    /// so DNA-flavoured inputs round-trip).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSymbolError`] for any other character.
    pub fn from_char(c: char) -> Result<Nucleotide, ParseSymbolError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(Nucleotide::A),
            'C' => Ok(Nucleotide::C),
            'G' => Ok(Nucleotide::G),
            'U' | 'T' => Ok(Nucleotide::U),
            other => Err(ParseSymbolError {
                found: other,
                alphabet: "nucleotide",
            }),
        }
    }
}

impl fmt::Display for Nucleotide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Nucleotide::A => "A",
            Nucleotide::C => "C",
            Nucleotide::G => "G",
            Nucleotide::U => "U",
        })
    }
}

impl TryFrom<char> for Nucleotide {
    type Error = ParseSymbolError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        Nucleotide::from_char(c)
    }
}

/// A DNA nucleotide (`T` instead of `U`).
///
/// Reference databases (NCBI `nt`) are DNA; FabP treats them as RNA by the
/// trivial `T→U` substitution, which [`DnaNucleotide::to_rna`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum DnaNucleotide {
    /// Adenine.
    A = 0b00,
    /// Cytosine.
    C = 0b01,
    /// Guanine.
    G = 0b10,
    /// Thymine.
    T = 0b11,
}

impl DnaNucleotide {
    /// All four DNA nucleotides in hardware-code order.
    pub const ALL: [DnaNucleotide; 4] = [
        DnaNucleotide::A,
        DnaNucleotide::C,
        DnaNucleotide::G,
        DnaNucleotide::T,
    ];

    /// Converts to the RNA alphabet (`T → U`).
    #[inline]
    pub const fn to_rna(self) -> Nucleotide {
        Nucleotide::from_code2(self as u8)
    }

    /// Converts from the RNA alphabet (`U → T`).
    #[inline]
    pub const fn from_rna(n: Nucleotide) -> DnaNucleotide {
        match n {
            Nucleotide::A => DnaNucleotide::A,
            Nucleotide::C => DnaNucleotide::C,
            Nucleotide::G => DnaNucleotide::G,
            Nucleotide::U => DnaNucleotide::T,
        }
    }

    /// Watson–Crick complement (`A↔T`, `C↔G`).
    #[inline]
    pub const fn complement(self) -> DnaNucleotide {
        DnaNucleotide::from_rna(self.to_rna().complement())
    }

    /// One-letter character for this nucleotide.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            DnaNucleotide::A => 'A',
            DnaNucleotide::C => 'C',
            DnaNucleotide::G => 'G',
            DnaNucleotide::T => 'T',
        }
    }

    /// Parses a one-letter DNA code (case-insensitive; `U` is accepted as `T`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSymbolError`] for any other character.
    pub fn from_char(c: char) -> Result<DnaNucleotide, ParseSymbolError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(DnaNucleotide::A),
            'C' => Ok(DnaNucleotide::C),
            'G' => Ok(DnaNucleotide::G),
            'T' | 'U' => Ok(DnaNucleotide::T),
            other => Err(ParseSymbolError {
                found: other,
                alphabet: "DNA nucleotide",
            }),
        }
    }
}

impl fmt::Display for DnaNucleotide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl TryFrom<char> for DnaNucleotide {
    type Error = ParseSymbolError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        DnaNucleotide::from_char(c)
    }
}

impl From<DnaNucleotide> for Nucleotide {
    fn from(d: DnaNucleotide) -> Nucleotide {
        d.to_rna()
    }
}

impl From<Nucleotide> for DnaNucleotide {
    fn from(n: Nucleotide) -> DnaNucleotide {
        DnaNucleotide::from_rna(n)
    }
}

/// The 20 standard amino acids plus the translation Stop signal.
///
/// Stop is included because FabP's query alphabet is "whatever a codon can
/// translate to", and the paper's encoding dedicates the dependent function
/// `F:00` to the Stop codons (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AminoAcid {
    /// Alanine (A).
    Ala,
    /// Arginine (R).
    Arg,
    /// Asparagine (N).
    Asn,
    /// Aspartate (D).
    Asp,
    /// Cysteine (C).
    Cys,
    /// Glutamine (Q).
    Gln,
    /// Glutamate (E).
    Glu,
    /// Glycine (G).
    Gly,
    /// Histidine (H).
    His,
    /// Isoleucine (I).
    Ile,
    /// Leucine (L).
    Leu,
    /// Lysine (K).
    Lys,
    /// Methionine (M), also the canonical start.
    Met,
    /// Phenylalanine (F).
    Phe,
    /// Proline (P).
    Pro,
    /// Serine (S).
    Ser,
    /// Threonine (T).
    Thr,
    /// Tryptophan (W).
    Trp,
    /// Tyrosine (Y).
    Tyr,
    /// Valine (V).
    Val,
    /// Translation stop signal (`*`).
    Stop,
}

impl AminoAcid {
    /// The 20 standard amino acids (Stop excluded), in enum order.
    pub const STANDARD: [AminoAcid; 20] = [
        AminoAcid::Ala,
        AminoAcid::Arg,
        AminoAcid::Asn,
        AminoAcid::Asp,
        AminoAcid::Cys,
        AminoAcid::Gln,
        AminoAcid::Glu,
        AminoAcid::Gly,
        AminoAcid::His,
        AminoAcid::Ile,
        AminoAcid::Leu,
        AminoAcid::Lys,
        AminoAcid::Met,
        AminoAcid::Phe,
        AminoAcid::Pro,
        AminoAcid::Ser,
        AminoAcid::Thr,
        AminoAcid::Trp,
        AminoAcid::Tyr,
        AminoAcid::Val,
    ];

    /// All 21 symbols including [`AminoAcid::Stop`].
    pub const ALL: [AminoAcid; 21] = [
        AminoAcid::Ala,
        AminoAcid::Arg,
        AminoAcid::Asn,
        AminoAcid::Asp,
        AminoAcid::Cys,
        AminoAcid::Gln,
        AminoAcid::Glu,
        AminoAcid::Gly,
        AminoAcid::His,
        AminoAcid::Ile,
        AminoAcid::Leu,
        AminoAcid::Lys,
        AminoAcid::Met,
        AminoAcid::Phe,
        AminoAcid::Pro,
        AminoAcid::Ser,
        AminoAcid::Thr,
        AminoAcid::Trp,
        AminoAcid::Tyr,
        AminoAcid::Val,
        AminoAcid::Stop,
    ];

    /// Dense index in `0..21`, usable as a table key.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// One-letter IUPAC code (`*` for Stop).
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            AminoAcid::Ala => 'A',
            AminoAcid::Arg => 'R',
            AminoAcid::Asn => 'N',
            AminoAcid::Asp => 'D',
            AminoAcid::Cys => 'C',
            AminoAcid::Gln => 'Q',
            AminoAcid::Glu => 'E',
            AminoAcid::Gly => 'G',
            AminoAcid::His => 'H',
            AminoAcid::Ile => 'I',
            AminoAcid::Leu => 'L',
            AminoAcid::Lys => 'K',
            AminoAcid::Met => 'M',
            AminoAcid::Phe => 'F',
            AminoAcid::Pro => 'P',
            AminoAcid::Ser => 'S',
            AminoAcid::Thr => 'T',
            AminoAcid::Trp => 'W',
            AminoAcid::Tyr => 'Y',
            AminoAcid::Val => 'V',
            AminoAcid::Stop => '*',
        }
    }

    /// Three-letter abbreviation (`Ter` is rendered `Stop` to match the
    /// paper's notation).
    #[inline]
    pub const fn abbreviation(self) -> &'static str {
        match self {
            AminoAcid::Ala => "Ala",
            AminoAcid::Arg => "Arg",
            AminoAcid::Asn => "Asn",
            AminoAcid::Asp => "Asp",
            AminoAcid::Cys => "Cys",
            AminoAcid::Gln => "Gln",
            AminoAcid::Glu => "Glu",
            AminoAcid::Gly => "Gly",
            AminoAcid::His => "His",
            AminoAcid::Ile => "Ile",
            AminoAcid::Leu => "Leu",
            AminoAcid::Lys => "Lys",
            AminoAcid::Met => "Met",
            AminoAcid::Phe => "Phe",
            AminoAcid::Pro => "Pro",
            AminoAcid::Ser => "Ser",
            AminoAcid::Thr => "Thr",
            AminoAcid::Trp => "Trp",
            AminoAcid::Tyr => "Tyr",
            AminoAcid::Val => "Val",
            AminoAcid::Stop => "Stop",
        }
    }

    /// Parses a one-letter code (case-insensitive; `*` is Stop).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSymbolError`] for characters outside the 21-symbol
    /// alphabet (including ambiguity codes like `B`, `Z`, `X`).
    pub fn from_char(c: char) -> Result<AminoAcid, ParseSymbolError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(AminoAcid::Ala),
            'R' => Ok(AminoAcid::Arg),
            'N' => Ok(AminoAcid::Asn),
            'D' => Ok(AminoAcid::Asp),
            'C' => Ok(AminoAcid::Cys),
            'Q' => Ok(AminoAcid::Gln),
            'E' => Ok(AminoAcid::Glu),
            'G' => Ok(AminoAcid::Gly),
            'H' => Ok(AminoAcid::His),
            'I' => Ok(AminoAcid::Ile),
            'L' => Ok(AminoAcid::Leu),
            'K' => Ok(AminoAcid::Lys),
            'M' => Ok(AminoAcid::Met),
            'F' => Ok(AminoAcid::Phe),
            'P' => Ok(AminoAcid::Pro),
            'S' => Ok(AminoAcid::Ser),
            'T' => Ok(AminoAcid::Thr),
            'W' => Ok(AminoAcid::Trp),
            'Y' => Ok(AminoAcid::Tyr),
            'V' => Ok(AminoAcid::Val),
            '*' => Ok(AminoAcid::Stop),
            other => Err(ParseSymbolError {
                found: other,
                alphabet: "amino acid",
            }),
        }
    }

    /// `true` for the 20 standard residues, `false` for Stop.
    #[inline]
    pub const fn is_standard(self) -> bool {
        !matches!(self, AminoAcid::Stop)
    }
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl TryFrom<char> for AminoAcid {
    type Error = ParseSymbolError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        AminoAcid::from_char(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nucleotide_codes_match_paper() {
        // Paper §III-B: {A, C, G, U} -> {00, 01, 10, 11}.
        assert_eq!(Nucleotide::A.code2(), 0b00);
        assert_eq!(Nucleotide::C.code2(), 0b01);
        assert_eq!(Nucleotide::G.code2(), 0b10);
        assert_eq!(Nucleotide::U.code2(), 0b11);
    }

    #[test]
    fn nucleotide_code_round_trip() {
        for n in Nucleotide::ALL {
            assert_eq!(Nucleotide::from_code2(n.code2()), n);
        }
    }

    #[test]
    fn nucleotide_char_round_trip() {
        for n in Nucleotide::ALL {
            assert_eq!(Nucleotide::from_char(n.to_char()).unwrap(), n);
        }
        assert_eq!(Nucleotide::from_char('t').unwrap(), Nucleotide::U);
        assert!(Nucleotide::from_char('X').is_err());
    }

    #[test]
    fn nucleotide_complement_involution() {
        for n in Nucleotide::ALL {
            assert_eq!(n.complement().complement(), n);
            assert_ne!(n.complement(), n);
        }
    }

    #[test]
    fn purine_pyrimidine_partition() {
        let purines: Vec<_> = Nucleotide::ALL.iter().filter(|n| n.is_purine()).collect();
        assert_eq!(purines, [&Nucleotide::A, &Nucleotide::G]);
        for n in Nucleotide::ALL {
            assert_ne!(n.is_purine(), n.is_pyrimidine());
        }
    }

    #[test]
    fn dna_rna_round_trip() {
        for d in DnaNucleotide::ALL {
            assert_eq!(DnaNucleotide::from_rna(d.to_rna()), d);
        }
        assert_eq!(DnaNucleotide::T.to_rna(), Nucleotide::U);
        assert_eq!(DnaNucleotide::from_char('u').unwrap(), DnaNucleotide::T);
    }

    #[test]
    fn dna_complement() {
        assert_eq!(DnaNucleotide::A.complement(), DnaNucleotide::T);
        assert_eq!(DnaNucleotide::G.complement(), DnaNucleotide::C);
        for d in DnaNucleotide::ALL {
            assert_eq!(d.complement().complement(), d);
        }
    }

    #[test]
    fn amino_acid_char_round_trip() {
        for aa in AminoAcid::ALL {
            assert_eq!(AminoAcid::from_char(aa.to_char()).unwrap(), aa);
        }
        assert!(AminoAcid::from_char('X').is_err());
        assert!(AminoAcid::from_char('B').is_err());
    }

    #[test]
    fn amino_acid_indices_are_dense_and_unique() {
        let mut seen = [false; 21];
        for aa in AminoAcid::ALL {
            assert!(aa.index() < 21);
            assert!(!seen[aa.index()], "duplicate index for {aa:?}");
            seen[aa.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stop_is_not_standard() {
        assert!(!AminoAcid::Stop.is_standard());
        assert_eq!(AminoAcid::STANDARD.len(), 20);
        assert!(AminoAcid::STANDARD.iter().all(|aa| aa.is_standard()));
    }

    #[test]
    fn abbreviations_match_paper_examples() {
        assert_eq!(AminoAcid::Phe.abbreviation(), "Phe");
        assert_eq!(AminoAcid::Met.abbreviation(), "Met");
        assert_eq!(AminoAcid::Stop.abbreviation(), "Stop");
    }

    #[test]
    fn parse_error_displays_symbol() {
        let err = Nucleotide::from_char('!').unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('!'), "message was {msg:?}");
        assert!(msg.contains("nucleotide"));
    }
}
