//! Mutation models: substitutions and indels.
//!
//! The paper's accuracy argument (§IV-A) rests on empirical indel
//! statistics: "the distribution of empirical frequency of indels in
//! protein-coding regions has a median of 0 and a mean of 0.09 indels per
//! kilobase with a standard deviation of 0.36" (citing Neininger et al.),
//! and in the authors' sample "among 10,000 queries, only two of them
//! involved indels (~0.02%)". [`IndelModel::empirical`] is a zero-inflated
//! geometric model calibrated to those moments; [`SubstitutionModel`]
//! provides point mutations with a configurable transition/transversion
//! bias.

use crate::alphabet::{AminoAcid, Nucleotide};
use crate::seq::{ProteinSeq, RnaSeq};
use rand::Rng;

/// Tally of the mutations applied to one sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationSummary {
    /// Number of substituted positions.
    pub substitutions: usize,
    /// Number of insertion events.
    pub insertions: usize,
    /// Number of deletion events.
    pub deletions: usize,
    /// Total bases inserted across all insertion events.
    pub inserted_bases: usize,
    /// Total bases deleted across all deletion events.
    pub deleted_bases: usize,
}

impl MutationSummary {
    /// Number of indel events (insertions + deletions).
    pub fn indel_events(&self) -> usize {
        self.insertions + self.deletions
    }

    /// `true` when at least one indel event occurred — the paper's
    /// "query involved indels" predicate.
    pub fn involved_indels(&self) -> bool {
        self.indel_events() > 0
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: MutationSummary) {
        self.substitutions += other.substitutions;
        self.insertions += other.insertions;
        self.deletions += other.deletions;
        self.inserted_bases += other.inserted_bases;
        self.deleted_bases += other.deleted_bases;
    }
}

/// Point-substitution model with transition/transversion bias.
///
/// Each position independently mutates with probability `rate`. A mutated
/// purine becomes the other purine (transition) with probability
/// `kappa / (kappa + 2)`, otherwise one of the two pyrimidines
/// (transversion) — and symmetrically for pyrimidines. `kappa = 1`
/// recovers the uniform Jukes–Cantor-style model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubstitutionModel {
    /// Per-position substitution probability in `[0, 1]`.
    pub rate: f64,
    /// Transition:transversion rate ratio (`kappa >= 0`). Biological data
    /// typically shows `kappa ≈ 2`.
    pub kappa: f64,
}

impl SubstitutionModel {
    /// A model with the given per-position rate and `kappa = 2`.
    pub fn new(rate: f64) -> SubstitutionModel {
        SubstitutionModel { rate, kappa: 2.0 }
    }

    /// The transition partner of a base (`A↔G`, `C↔U`).
    fn transition(base: Nucleotide) -> Nucleotide {
        match base {
            Nucleotide::A => Nucleotide::G,
            Nucleotide::G => Nucleotide::A,
            Nucleotide::C => Nucleotide::U,
            Nucleotide::U => Nucleotide::C,
        }
    }

    /// Substitutes one base according to the bias.
    fn substitute<R: Rng + ?Sized>(&self, base: Nucleotide, rng: &mut R) -> Nucleotide {
        let p_transition = self.kappa / (self.kappa + 2.0);
        if rng.gen_bool(p_transition.clamp(0.0, 1.0)) {
            Self::transition(base)
        } else {
            // One of the two transversion partners, uniformly.
            let partners: [Nucleotide; 2] = if base.is_purine() {
                [Nucleotide::C, Nucleotide::U]
            } else {
                [Nucleotide::A, Nucleotide::G]
            };
            partners[usize::from(rng.gen_bool(0.5))]
        }
    }

    /// Applies the model to an RNA sequence, returning the mutated copy and
    /// a summary.
    pub fn mutate_rna<R: Rng + ?Sized>(
        &self,
        seq: &RnaSeq,
        rng: &mut R,
    ) -> (RnaSeq, MutationSummary) {
        let mut summary = MutationSummary::default();
        let mutated: RnaSeq = seq
            .iter()
            .map(|&base| {
                if rng.gen_bool(self.rate.clamp(0.0, 1.0)) {
                    summary.substitutions += 1;
                    self.substitute(base, rng)
                } else {
                    base
                }
            })
            .collect();
        (mutated, summary)
    }

    /// Applies the model to a protein sequence: each residue independently
    /// becomes a uniformly random *different* standard amino acid with
    /// probability `rate` (the bias parameter has no protein analogue).
    pub fn mutate_protein<R: Rng + ?Sized>(
        &self,
        seq: &ProteinSeq,
        rng: &mut R,
    ) -> (ProteinSeq, MutationSummary) {
        let mut summary = MutationSummary::default();
        let mutated: ProteinSeq = seq
            .iter()
            .map(|&aa| {
                if aa.is_standard() && rng.gen_bool(self.rate.clamp(0.0, 1.0)) {
                    summary.substitutions += 1;
                    loop {
                        let candidate =
                            AminoAcid::STANDARD[rng.gen_range(0..AminoAcid::STANDARD.len())];
                        if candidate != aa {
                            break candidate;
                        }
                    }
                } else {
                    aa
                }
            })
            .collect();
        (mutated, summary)
    }
}

/// Zero-inflated geometric indel model.
///
/// Per kilobase, an *indel burst* occurs with probability `burst_per_kb`;
/// a burst contains `Geometric(mean = burst_mean_events)` indel events.
/// Each event is an insertion or deletion with equal probability, with a
/// geometric length distribution of mean `mean_length` (indels arrive "in
/// contiguous blocks", §I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndelModel {
    /// Probability that a kilobase contains any indel events.
    pub burst_per_kb: f64,
    /// Mean number of events within a burst (≥ 1).
    pub burst_mean_events: f64,
    /// Mean indel length in bases (≥ 1).
    pub mean_length: f64,
}

impl IndelModel {
    /// Model calibrated to the empirical moments quoted in §IV-A:
    /// mean 0.09 events/kb, median 0, standard deviation ≈ 0.36/kb.
    ///
    /// `0.08 × 1.125 = 0.09` events/kb with sd ≈ 0.32/kb; the median is 0
    /// because 92 % of kilobases see no burst.
    pub fn empirical() -> IndelModel {
        IndelModel {
            burst_per_kb: 0.08,
            burst_mean_events: 1.125,
            mean_length: 3.0,
        }
    }

    /// A model that never produces indels.
    pub fn none() -> IndelModel {
        IndelModel {
            burst_per_kb: 0.0,
            burst_mean_events: 1.0,
            mean_length: 1.0,
        }
    }

    /// Expected indel events per kilobase.
    pub fn mean_events_per_kb(&self) -> f64 {
        self.burst_per_kb * self.burst_mean_events
    }

    fn sample_geometric<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
        // Geometric on {1, 2, ...} with the given mean (>= 1).
        let p = (1.0 / mean.max(1.0)).clamp(f64::MIN_POSITIVE, 1.0);
        let mut k = 1usize;
        while !rng.gen_bool(p) && k < 10_000 {
            k += 1;
        }
        k
    }

    /// Samples how many indel events affect a sequence of `len` bases.
    pub fn sample_event_count<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> usize {
        let kb = len as f64 / 1000.0;
        // Probability at least one burst hits this sequence. Rates of one
        // burst/kb or more saturate to certainty.
        let per_kb = self.burst_per_kb.clamp(0.0, 1.0);
        let p_burst = (1.0 - (1.0 - per_kb).powf(kb.max(0.0))).clamp(0.0, 1.0);
        if self.burst_per_kb <= 0.0 || !rng.gen_bool(p_burst) {
            return 0;
        }
        Self::sample_geometric(self.burst_mean_events, rng)
    }

    /// Applies the model to an RNA sequence, returning the mutated copy and
    /// a summary.
    pub fn mutate_rna<R: Rng + ?Sized>(
        &self,
        seq: &RnaSeq,
        rng: &mut R,
    ) -> (RnaSeq, MutationSummary) {
        let mut summary = MutationSummary::default();
        let mut bases: Vec<Nucleotide> = seq.as_slice().to_vec();
        let events = self.sample_event_count(bases.len(), rng);
        for _ in 0..events {
            let length = Self::sample_geometric(self.mean_length, rng);
            if rng.gen_bool(0.5) {
                // Insertion at a uniform position.
                let at = rng.gen_range(0..=bases.len());
                let insert: Vec<Nucleotide> = (0..length)
                    .map(|_| Nucleotide::from_code2(rng.gen_range(0..4u8)))
                    .collect();
                bases.splice(at..at, insert);
                summary.insertions += 1;
                summary.inserted_bases += length;
            } else if !bases.is_empty() {
                // Deletion of a contiguous block.
                let length = length.min(bases.len());
                let at = rng.gen_range(0..=bases.len() - length);
                bases.drain(at..at + length);
                summary.deletions += 1;
                summary.deleted_bases += length;
            }
        }
        (RnaSeq::from(bases), summary)
    }
}

/// Convenience: applies substitutions then indels to an RNA sequence.
pub fn mutate_rna<R: Rng + ?Sized>(
    seq: &RnaSeq,
    substitutions: &SubstitutionModel,
    indels: &IndelModel,
    rng: &mut R,
) -> (RnaSeq, MutationSummary) {
    let (subbed, mut summary) = substitutions.mutate_rna(seq, rng);
    let (final_seq, indel_summary) = indels.mutate_rna(&subbed, rng);
    summary.merge(indel_summary);
    (final_seq, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFAB9)
    }

    fn random_rna(len: usize, rng: &mut StdRng) -> RnaSeq {
        (0..len)
            .map(|_| Nucleotide::from_code2(rng.gen_range(0..4u8)))
            .collect()
    }

    #[test]
    fn zero_rate_is_identity() {
        let mut rng = rng();
        let seq = random_rna(500, &mut rng);
        let model = SubstitutionModel::new(0.0);
        let (mutated, summary) = model.mutate_rna(&seq, &mut rng);
        assert_eq!(mutated, seq);
        assert_eq!(summary.substitutions, 0);
    }

    #[test]
    fn full_rate_changes_every_position() {
        let mut rng = rng();
        let seq = random_rna(200, &mut rng);
        let model = SubstitutionModel::new(1.0);
        let (mutated, summary) = model.mutate_rna(&seq, &mut rng);
        assert_eq!(summary.substitutions, 200);
        for (a, b) in seq.iter().zip(mutated.iter()) {
            assert_ne!(a, b, "substitution must change the base");
        }
    }

    #[test]
    fn substitution_rate_is_approximately_respected() {
        let mut rng = rng();
        let seq = random_rna(20_000, &mut rng);
        let model = SubstitutionModel::new(0.1);
        let (_, summary) = model.mutate_rna(&seq, &mut rng);
        let rate = summary.substitutions as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn transition_bias_favors_transitions() {
        let mut rng = rng();
        let seq: RnaSeq = (0..50_000).map(|_| Nucleotide::A).collect();
        let model = SubstitutionModel {
            rate: 1.0,
            kappa: 2.0,
        };
        let (mutated, _) = model.mutate_rna(&seq, &mut rng);
        let transitions = mutated.iter().filter(|&&n| n == Nucleotide::G).count();
        let share = transitions as f64 / 50_000.0;
        // kappa=2 -> P(transition) = 2/4 = 0.5.
        assert!((share - 0.5).abs() < 0.02, "transition share {share}");
    }

    #[test]
    fn protein_mutation_changes_residues() {
        let mut rng = rng();
        let seq: ProteinSeq = "MFSRKLVA".parse().unwrap();
        let model = SubstitutionModel::new(1.0);
        let (mutated, summary) = model.mutate_protein(&seq, &mut rng);
        assert_eq!(summary.substitutions, 8);
        for (a, b) in seq.iter().zip(mutated.iter()) {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn stop_residues_are_never_substituted() {
        let mut rng = rng();
        let seq: ProteinSeq = "M*F".parse().unwrap();
        let model = SubstitutionModel::new(1.0);
        let (mutated, _) = model.mutate_protein(&seq, &mut rng);
        assert_eq!(mutated[1], AminoAcid::Stop);
    }

    #[test]
    fn indel_none_is_identity() {
        let mut rng = rng();
        let seq = random_rna(1000, &mut rng);
        let (mutated, summary) = IndelModel::none().mutate_rna(&seq, &mut rng);
        assert_eq!(mutated, seq);
        assert!(!summary.involved_indels());
    }

    #[test]
    fn empirical_model_mean_matches_paper() {
        let m = IndelModel::empirical();
        assert!((m.mean_events_per_kb() - 0.09).abs() < 1e-9);
    }

    #[test]
    fn empirical_model_rarely_hits_short_queries() {
        // A 750-base query (250 aa, the paper's longest) should involve
        // indels only a few percent of the time; most samples see none.
        let mut rng = rng();
        let model = IndelModel::empirical();
        let seq = random_rna(750, &mut rng);
        let affected = (0..2000)
            .filter(|_| model.mutate_rna(&seq, &mut rng).1.involved_indels())
            .count();
        let share = affected as f64 / 2000.0;
        assert!(share < 0.12, "affected share {share}");
    }

    #[test]
    fn saturating_burst_rate_affects_everything() {
        // Rates above one burst/kb must saturate, not produce NaN
        // probabilities (regression test).
        let mut rng = rng();
        let model = IndelModel {
            burst_per_kb: 1000.0,
            burst_mean_events: 1.0,
            mean_length: 2.0,
        };
        let seq = random_rna(500, &mut rng);
        for _ in 0..20 {
            let (_, summary) = model.mutate_rna(&seq, &mut rng);
            assert!(summary.involved_indels());
        }
    }

    #[test]
    fn indel_lengths_are_accounted() {
        let mut rng = rng();
        let model = IndelModel {
            burst_per_kb: 1.0,
            burst_mean_events: 4.0,
            mean_length: 3.0,
        };
        let seq = random_rna(5000, &mut rng);
        let (mutated, summary) = model.mutate_rna(&seq, &mut rng);
        assert_eq!(
            mutated.len(),
            seq.len() + summary.inserted_bases - summary.deleted_bases
        );
    }

    #[test]
    fn combined_mutation_merges_summaries() {
        let mut rng = rng();
        let seq = random_rna(2000, &mut rng);
        let subs = SubstitutionModel::new(0.05);
        let indels = IndelModel {
            burst_per_kb: 1.0,
            burst_mean_events: 2.0,
            mean_length: 2.0,
        };
        let (_, summary) = mutate_rna(&seq, &subs, &indels, &mut rng);
        assert!(summary.substitutions > 0);
    }
}
