//! Synthetic workload generators.
//!
//! The paper evaluates on queries "randomly sampled from the NCBI protein
//! database" and "1 GByte of reference sequences from the NCBI DNA
//! Database" (§IV). Those databases are not redistributable here, so this
//! module generates statistically comparable synthetic workloads:
//! uniform/biased random sequences and — for accuracy experiments —
//! reference databases with *planted* coding regions whose ground-truth
//! positions are recorded.

use crate::alphabet::{AminoAcid, Nucleotide};
use crate::backtranslate::back_translate;
use crate::codon::codons_of;
use crate::mutate::{IndelModel, MutationSummary, SubstitutionModel};
use crate::seq::{ProteinSeq, RnaSeq};
use rand::Rng;

/// Generates a uniform random RNA sequence of `len` bases.
pub fn random_rna<R: Rng + ?Sized>(len: usize, rng: &mut R) -> RnaSeq {
    (0..len)
        .map(|_| Nucleotide::from_code2(rng.gen_range(0..4u8)))
        .collect()
}

/// Generates a random RNA sequence with the given GC content in `[0, 1]`.
pub fn random_rna_gc<R: Rng + ?Sized>(len: usize, gc: f64, rng: &mut R) -> RnaSeq {
    let gc = gc.clamp(0.0, 1.0);
    (0..len)
        .map(|_| {
            if rng.gen_bool(gc) {
                if rng.gen_bool(0.5) {
                    Nucleotide::G
                } else {
                    Nucleotide::C
                }
            } else if rng.gen_bool(0.5) {
                Nucleotide::A
            } else {
                Nucleotide::U
            }
        })
        .collect()
}

/// Generates a random protein of `len` residues.
///
/// Residues are drawn with probability proportional to codon degeneracy —
/// the distribution a uniformly random coding sequence induces — which is a
/// reasonable stand-in for natural amino-acid frequencies. No Stop symbols
/// are produced.
pub fn random_protein<R: Rng + ?Sized>(len: usize, rng: &mut R) -> ProteinSeq {
    // 61 coding codons; sample a codon uniformly and keep its amino acid.
    (0..len)
        .map(|_| loop {
            let codon = crate::codon::Codon::from_index(rng.gen_range(0..64u8));
            let aa = codon.translate();
            if aa.is_standard() {
                break aa;
            }
        })
        .collect()
}

/// Generates a uniformly random protein (each of the 20 residues equally
/// likely).
pub fn random_protein_uniform<R: Rng + ?Sized>(len: usize, rng: &mut R) -> ProteinSeq {
    (0..len)
        .map(|_| AminoAcid::STANDARD[rng.gen_range(0..AminoAcid::STANDARD.len())])
        .collect()
}

/// Picks, for every residue of `protein`, a uniformly random codon among
/// those that translate to it — one concrete mRNA the protein could have
/// originated from (the inverse of translation, used as ground truth when
/// planting homologies).
pub fn coding_rna_for<R: Rng + ?Sized>(protein: &ProteinSeq, rng: &mut R) -> RnaSeq {
    let mut rna = RnaSeq::with_capacity(protein.len() * 3);
    for &aa in protein {
        let codons = codons_of(aa);
        let codon = codons[rng.gen_range(0..codons.len())];
        rna.extend(codon.0);
    }
    rna
}

/// Like [`coding_rna_for`], but draws only codons the paper's degenerate
/// pattern accepts (i.e. excludes Serine's `AGU`/`AGC`). Useful to separate
/// the Ser-representation accuracy loss from indel-related loss.
pub fn coding_rna_for_paper_patterns<R: Rng + ?Sized>(protein: &ProteinSeq, rng: &mut R) -> RnaSeq {
    let mut rna = RnaSeq::with_capacity(protein.len() * 3);
    for &aa in protein {
        let pattern = back_translate(aa);
        let accepted = pattern.accepted_codons();
        let codon = accepted[rng.gen_range(0..accepted.len())];
        rna.extend(codon.0);
    }
    rna
}

/// Ground truth for one planted homologous region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedRegion {
    /// Index of the query in the generator's query list.
    pub query_index: usize,
    /// Start position (bases) of the planted region in the reference.
    pub position: usize,
    /// Length in bases of the planted (possibly indel-shifted) region.
    pub length: usize,
    /// Mutations applied to the planted copy.
    pub mutations: MutationSummary,
}

/// A synthetic reference database with planted homologies.
#[derive(Debug, Clone)]
pub struct PlantedDatabase {
    /// The reference sequence (random background + planted regions).
    pub reference: RnaSeq,
    /// The protein queries whose coding sequences were planted.
    pub queries: Vec<ProteinSeq>,
    /// Ground-truth locations of every planted region.
    pub regions: Vec<PlantedRegion>,
}

/// Configuration for [`PlantedDatabase::generate`].
#[derive(Debug, Clone)]
pub struct PlantedDatabaseConfig {
    /// Total reference length in bases.
    pub reference_len: usize,
    /// Number of protein queries to sample and plant.
    pub num_queries: usize,
    /// Length of each protein query in residues.
    pub query_len: usize,
    /// Substitution model applied to each planted copy.
    pub substitutions: SubstitutionModel,
    /// Indel model applied to each planted copy.
    pub indels: IndelModel,
    /// When `true`, planted coding sequences avoid codons the paper's
    /// patterns cannot express (Ser `AGU`/`AGC`).
    pub paper_codons_only: bool,
}

impl Default for PlantedDatabaseConfig {
    fn default() -> PlantedDatabaseConfig {
        PlantedDatabaseConfig {
            reference_len: 100_000,
            num_queries: 16,
            query_len: 50,
            substitutions: SubstitutionModel::new(0.0),
            indels: IndelModel::none(),
            paper_codons_only: false,
        }
    }
}

impl PlantedDatabase {
    /// Generates a random reference and plants one mutated coding copy of
    /// each sampled query at non-overlapping random positions.
    ///
    /// # Panics
    ///
    /// Panics if the queries cannot fit in the reference
    /// (`num_queries × (3 × query_len + slack)` must be ≤ `reference_len`).
    pub fn generate<R: Rng + ?Sized>(
        config: &PlantedDatabaseConfig,
        rng: &mut R,
    ) -> PlantedDatabase {
        let coding_len = config.query_len * 3;
        // Partition the reference into equal slots, one per query, and
        // plant at a random offset inside each slot: non-overlapping by
        // construction and near-uniform placement.
        let slot = config
            .reference_len
            .checked_div(config.num_queries.max(1))
            .unwrap_or(0);
        assert!(
            config.num_queries == 0 || slot >= coding_len + coding_len / 2 + 8,
            "reference too short: slot {slot} cannot hold a {coding_len}-base region"
        );

        let mut reference = random_rna(config.reference_len, rng);
        let mut queries = Vec::with_capacity(config.num_queries);
        let mut regions = Vec::with_capacity(config.num_queries);

        for qi in 0..config.num_queries {
            let query = random_protein(config.query_len, rng);
            let coding = if config.paper_codons_only {
                coding_rna_for_paper_patterns(&query, rng)
            } else {
                coding_rna_for(&query, rng)
            };
            let (mutated, mut summary) = config.substitutions.mutate_rna(&coding, rng);
            let (mutated, indel_summary) = config.indels.mutate_rna(&mutated, rng);
            summary.merge(indel_summary);

            let slot_start = qi * slot;
            let max_offset = slot.saturating_sub(mutated.len()).max(1);
            let position = slot_start + rng.gen_range(0..max_offset);
            let mut bases: Vec<Nucleotide> = reference.as_slice().to_vec();
            bases.splice(
                position..(position + mutated.len()).min(bases.len()),
                mutated.iter().copied(),
            );
            bases.truncate(config.reference_len);
            reference = RnaSeq::from(bases);

            regions.push(PlantedRegion {
                query_index: qi,
                position,
                length: mutated.len(),
                mutations: summary,
            });
            queries.push(query);
        }

        PlantedDatabase {
            reference,
            queries,
            regions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtranslate::BackTranslatedQuery;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn random_rna_has_requested_length() {
        let mut rng = rng();
        assert_eq!(random_rna(123, &mut rng).len(), 123);
        assert!(random_rna(0, &mut rng).is_empty());
    }

    #[test]
    fn random_rna_is_roughly_uniform() {
        let mut rng = rng();
        let seq = random_rna(40_000, &mut rng);
        for target in Nucleotide::ALL {
            let share = seq.iter().filter(|&&n| n == target).count() as f64 / seq.len() as f64;
            assert!((share - 0.25).abs() < 0.02, "{target}: {share}");
        }
    }

    #[test]
    fn gc_content_is_respected() {
        let mut rng = rng();
        let seq = random_rna_gc(40_000, 0.7, &mut rng);
        let gc = seq
            .iter()
            .filter(|&&n| matches!(n, Nucleotide::G | Nucleotide::C))
            .count() as f64
            / seq.len() as f64;
        assert!((gc - 0.7).abs() < 0.02, "gc {gc}");
    }

    #[test]
    fn random_protein_is_stop_free() {
        let mut rng = rng();
        let p = random_protein(500, &mut rng);
        assert_eq!(p.len(), 500);
        assert!(p.is_stop_free());
        let u = random_protein_uniform(500, &mut rng);
        assert!(u.is_stop_free());
    }

    #[test]
    fn coding_rna_translates_back_to_protein() {
        let mut rng = rng();
        let protein = random_protein(100, &mut rng);
        let rna = coding_rna_for(&protein, &mut rng);
        assert_eq!(crate::translate::translate_frame(&rna, 0), protein);
    }

    #[test]
    fn paper_codon_rna_matches_patterns_perfectly() {
        let mut rng = rng();
        let protein = random_protein(200, &mut rng);
        let rna = coding_rna_for_paper_patterns(&protein, &mut rng);
        let bt = BackTranslatedQuery::from_protein(&protein);
        assert_eq!(bt.score_window(rna.as_slice()), bt.len());
    }

    #[test]
    fn planted_database_regions_are_where_claimed() {
        let mut rng = rng();
        let config = PlantedDatabaseConfig {
            reference_len: 20_000,
            num_queries: 8,
            query_len: 30,
            paper_codons_only: true,
            ..PlantedDatabaseConfig::default()
        };
        let db = PlantedDatabase::generate(&config, &mut rng);
        assert_eq!(db.queries.len(), 8);
        assert_eq!(db.regions.len(), 8);
        for region in &db.regions {
            let bt = BackTranslatedQuery::from_protein(&db.queries[region.query_index]);
            let window = &db.reference.as_slice()[region.position..region.position + region.length];
            // No mutations configured: the planted copy matches perfectly.
            assert_eq!(bt.score_window(window), bt.len());
        }
    }

    #[test]
    fn planted_regions_do_not_overlap() {
        let mut rng = rng();
        let config = PlantedDatabaseConfig {
            reference_len: 50_000,
            num_queries: 10,
            query_len: 40,
            ..PlantedDatabaseConfig::default()
        };
        let db = PlantedDatabase::generate(&config, &mut rng);
        let mut spans: Vec<(usize, usize)> = db
            .regions
            .iter()
            .map(|r| (r.position, r.position + r.length))
            .collect();
        spans.sort();
        for pair in spans.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "regions overlap: {pair:?}");
        }
    }

    #[test]
    #[should_panic(expected = "reference too short")]
    fn planting_panics_when_reference_too_small() {
        let mut rng = rng();
        let config = PlantedDatabaseConfig {
            reference_len: 100,
            num_queries: 4,
            query_len: 30,
            ..PlantedDatabaseConfig::default()
        };
        let _ = PlantedDatabase::generate(&config, &mut rng);
    }

    #[test]
    fn planted_database_with_mutations_tracks_summary() {
        let mut rng = rng();
        let config = PlantedDatabaseConfig {
            reference_len: 40_000,
            num_queries: 6,
            query_len: 40,
            substitutions: SubstitutionModel::new(0.05),
            ..PlantedDatabaseConfig::default()
        };
        let db = PlantedDatabase::generate(&config, &mut rng);
        let total_subs: usize = db.regions.iter().map(|r| r.mutations.substitutions).sum();
        assert!(
            total_subs > 0,
            "5% substitution rate should mutate something"
        );
    }
}
