//! Property-based tests for the alignment baselines.

use fabp_baselines::needleman::needleman_wunsch;
use fabp_baselines::sw::{sw_banded_score, sw_nucleotide, sw_protein, GapPenalties, NucScoring};
use fabp_baselines::tblastn::{tblastn_search, ungapped_extend, TblastnConfig};
use fabp_bio::alphabet::{AminoAcid, Nucleotide};
use fabp_bio::blosum::blosum62;
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use proptest::prelude::*;

fn arb_protein(min: usize, max: usize) -> impl Strategy<Value = Vec<AminoAcid>> {
    prop::collection::vec(0usize..20, min..=max)
        .prop_map(|v| v.into_iter().map(|i| AminoAcid::STANDARD[i]).collect())
}

fn arb_rna(min: usize, max: usize) -> impl Strategy<Value = RnaSeq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|v| v.into_iter().map(Nucleotide::from_code2).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Local alignment scores are non-negative and symmetric.
    #[test]
    fn sw_nonnegative_and_symmetric(
        a in arb_protein(0, 40),
        b in arb_protein(0, 40),
    ) {
        let g = GapPenalties::default();
        let ab = sw_protein(&a, &b, g, false).score;
        let ba = sw_protein(&b, &a, g, false).score;
        prop_assert!(ab >= 0);
        prop_assert_eq!(ab, ba);
    }

    /// Self-alignment achieves exactly the sum of self-scores.
    #[test]
    fn sw_self_alignment_is_maximal(a in arb_protein(1, 50)) {
        let aln = sw_protein(&a, &a, GapPenalties::default(), false);
        let expected: i32 = a.iter().map(|&x| blosum62(x, x)).sum();
        prop_assert_eq!(aln.score, expected);
    }

    /// A banded score never exceeds the full DP score and matches it for
    /// wide bands.
    #[test]
    fn banded_bounds_full(
        a in arb_protein(1, 30),
        b in arb_protein(1, 30),
        band in 1usize..8,
    ) {
        let g = GapPenalties::default();
        let full = sw_protein(&a, &b, g, false).score;
        let banded = sw_banded_score(&a, &b, blosum62, g, 0, band);
        prop_assert!(banded <= full, "banded {banded} > full {full}");
        let wide = sw_banded_score(&a, &b, blosum62, g, 0, a.len() + b.len());
        prop_assert_eq!(wide, full);
    }

    /// Traceback operation counts always reconcile with the aligned
    /// ranges.
    #[test]
    fn sw_traceback_reconciles(
        a in arb_protein(1, 25),
        b in arb_protein(1, 25),
    ) {
        use fabp_baselines::sw::AlignOp;
        let aln = sw_protein(&a, &b, GapPenalties::default(), true);
        let diag = aln.ops.iter().filter(|o| matches!(o, AlignOp::Diagonal)).count();
        let ins = aln.ops.iter().filter(|o| matches!(o, AlignOp::Insertion)).count();
        let del = aln.ops.iter().filter(|o| matches!(o, AlignOp::Deletion)).count();
        prop_assert_eq!(aln.query_range.1 - aln.query_range.0, diag + del);
        prop_assert_eq!(aln.ref_range.1 - aln.ref_range.0, diag + ins);
    }

    /// Global alignment of a sequence against itself never uses gaps.
    #[test]
    fn nw_self_alignment_is_gapless(a in arb_protein(1, 40)) {
        let aln = needleman_wunsch(&a, &a, blosum62, GapPenalties::default(), true);
        prop_assert_eq!(aln.indel_count(), 0);
        prop_assert_eq!(aln.ops.len(), a.len());
    }

    /// Global score is never above the local score (local may skip bad
    /// prefixes/suffixes; global must pay for them).
    #[test]
    fn nw_below_sw(
        a in arb_protein(1, 25),
        b in arb_protein(1, 25),
    ) {
        let g = GapPenalties::default();
        let local = sw_protein(&a, &b, g, false).score;
        let global = needleman_wunsch(&a, &b, blosum62, g, false).score;
        prop_assert!(global <= local, "global {global} > local {local}");
    }

    /// Nucleotide SW of identical sequences is `2 × len` with the default
    /// +2 match score.
    #[test]
    fn nucleotide_sw_identity(rna in arb_rna(1, 60)) {
        let bases = rna.as_slice();
        let aln = sw_nucleotide(bases, bases, NucScoring::default(), GapPenalties::default(), false);
        prop_assert_eq!(aln.score, 2 * bases.len() as i32);
    }

    /// Ungapped extension is bounded by the global self-score and at least
    /// the seed-word score for identical sequences.
    #[test]
    fn ungapped_extension_bounds(a in arb_protein(5, 40), at in 0usize..35) {
        prop_assume!(at + 3 <= a.len());
        let score = ungapped_extend(&a, &a, at, at, 3, 10_000);
        let self_score: i32 = a.iter().map(|&x| blosum62(x, x)).sum();
        prop_assert_eq!(score, self_score, "unlimited X-drop must reach the full self-score");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TBLASTN never reports an HSP below its score cutoff, and all
    /// coordinates are in range.
    #[test]
    fn tblastn_hsps_are_well_formed(
        query in arb_protein(10, 30),
        reference in arb_rna(200, 2000),
    ) {
        let query: ProteinSeq = query.into_iter().collect();
        let config = TblastnConfig { min_score: 25, ..TblastnConfig::default() };
        let result = tblastn_search(&query, &reference, &config);
        for hsp in &result.hsps {
            prop_assert!(hsp.score >= config.min_score);
            prop_assert!(hsp.frame < 3);
            prop_assert!(hsp.nucleotide_pos < reference.len());
            prop_assert!(hsp.query_pos < query.len());
        }
    }
}
