//! Smith–Waterman local alignment (the paper's DP-based reference
//! algorithm, §II).
//!
//! "The Smith-Waterman (SW) algorithm is a dynamic programming technique
//! widely used for local alignment … It calculates a scoring matrix for all
//! possible alignments supporting both substitution and indel mutations."
//! SW serves two roles in the reproduction: the gapped-extension stage of
//! the TBLASTN-like baseline, and the ground-truth aligner for the
//! accuracy experiment (E4) that quantifies FabP's substitution-only
//! approximation.

use fabp_bio::alphabet::{AminoAcid, Nucleotide};
use fabp_bio::blosum::blosum62;

/// Affine gap penalties (positive numbers; they are subtracted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalties {
    /// Cost of opening a gap (charged for the first gapped position).
    pub open: i32,
    /// Cost of extending a gap by one more position.
    pub extend: i32,
}

impl Default for GapPenalties {
    /// BLAST's default protein gap costs (11, 1).
    fn default() -> GapPenalties {
        GapPenalties {
            open: 11,
            extend: 1,
        }
    }
}

/// One aligned-pair operation in a traceback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Both sequences advance (match or substitution).
    Diagonal,
    /// Gap in the query (reference advances alone) — an insertion.
    Insertion,
    /// Gap in the reference (query advances alone) — a deletion.
    Deletion,
}

/// A local alignment with score and coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Alignment score.
    pub score: i32,
    /// Half-open aligned range in the query.
    pub query_range: (usize, usize),
    /// Half-open aligned range in the reference.
    pub ref_range: (usize, usize),
    /// Operations from the start of the ranges (empty when traceback was
    /// not requested).
    pub ops: Vec<AlignOp>,
}

impl LocalAlignment {
    /// Number of indel operations in the traceback.
    pub fn indel_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, AlignOp::Diagonal))
            .count()
    }
}

/// Generic affine-gap Smith–Waterman over any symbol type.
///
/// `score` gives the substitution score for a pair of symbols. Returns the
/// best local alignment (score 0 with empty ranges when nothing positive
/// exists).
pub fn smith_waterman<T: Copy, F: Fn(T, T) -> i32>(
    query: &[T],
    reference: &[T],
    score: F,
    gaps: GapPenalties,
    traceback: bool,
) -> LocalAlignment {
    let q = query.len();
    let r = reference.len();
    if q == 0 || r == 0 {
        return LocalAlignment {
            score: 0,
            query_range: (0, 0),
            ref_range: (0, 0),
            ops: Vec::new(),
        };
    }

    // H, E (gap in query), F (gap in reference), row-major (q+1) x (r+1).
    let width = r + 1;
    let mut h = vec![0i32; (q + 1) * width];
    let mut e = vec![i32::MIN / 2; (q + 1) * width];
    let mut f = vec![i32::MIN / 2; (q + 1) * width];
    let mut best = (0i32, 0usize, 0usize);

    for i in 1..=q {
        for j in 1..=r {
            let idx = i * width + j;
            e[idx] = (e[idx - 1] - gaps.extend).max(h[idx - 1] - gaps.open - gaps.extend);
            f[idx] = (f[idx - width] - gaps.extend).max(h[idx - width] - gaps.open - gaps.extend);
            let diag = h[idx - width - 1] + score(query[i - 1], reference[j - 1]);
            let cell = diag.max(e[idx]).max(f[idx]).max(0);
            h[idx] = cell;
            if cell > best.0 {
                best = (cell, i, j);
            }
        }
    }

    let (best_score, mut bi, mut bj) = best;
    if best_score == 0 {
        return LocalAlignment {
            score: 0,
            query_range: (0, 0),
            ref_range: (0, 0),
            ops: Vec::new(),
        };
    }
    let (qend, rend) = (bi, bj);
    let mut ops = Vec::new();

    if traceback {
        // Re-derive the path from the filled matrices.
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            H,
            E,
            F,
        }
        let mut state = State::H;
        while bi > 0 && bj > 0 {
            let idx = bi * width + bj;
            match state {
                State::H => {
                    if h[idx] == 0 {
                        break;
                    }
                    let diag = h[idx - width - 1] + score(query[bi - 1], reference[bj - 1]);
                    if h[idx] == diag {
                        ops.push(AlignOp::Diagonal);
                        bi -= 1;
                        bj -= 1;
                    } else if h[idx] == e[idx] {
                        state = State::E;
                    } else {
                        state = State::F;
                    }
                }
                State::E => {
                    ops.push(AlignOp::Insertion);
                    let idx_left = idx - 1;
                    if e[idx] == h[idx_left] - gaps.open - gaps.extend {
                        state = State::H;
                    }
                    bj -= 1;
                }
                State::F => {
                    ops.push(AlignOp::Deletion);
                    let idx_up = idx - width;
                    if f[idx] == h[idx_up] - gaps.open - gaps.extend {
                        state = State::H;
                    }
                    bi -= 1;
                }
            }
        }
        ops.reverse();
    } else {
        // Without traceback we still want the start coordinates; rerun a
        // cheap backward scan is avoided by reporting only the end.
        bi = qend;
        bj = rend;
    }

    LocalAlignment {
        score: best_score,
        query_range: (if traceback { bi } else { 0 }, qend),
        ref_range: (if traceback { bj } else { 0 }, rend),
        ops,
    }
}

/// Protein Smith–Waterman with BLOSUM62 and affine gaps.
pub fn sw_protein(
    query: &[AminoAcid],
    reference: &[AminoAcid],
    gaps: GapPenalties,
    traceback: bool,
) -> LocalAlignment {
    smith_waterman(query, reference, blosum62, gaps, traceback)
}

/// Nucleotide scoring parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NucScoring {
    /// Score for a matching pair (positive).
    pub matches: i32,
    /// Score for a mismatching pair (negative).
    pub mismatch: i32,
}

impl Default for NucScoring {
    /// BLASTN-like +2/−3.
    fn default() -> NucScoring {
        NucScoring {
            matches: 2,
            mismatch: -3,
        }
    }
}

/// Nucleotide Smith–Waterman with affine gaps.
pub fn sw_nucleotide(
    query: &[Nucleotide],
    reference: &[Nucleotide],
    scoring: NucScoring,
    gaps: GapPenalties,
    traceback: bool,
) -> LocalAlignment {
    smith_waterman(
        query,
        reference,
        |a, b| {
            if a == b {
                scoring.matches
            } else {
                scoring.mismatch
            }
        },
        gaps,
        traceback,
    )
}

/// Banded Smith–Waterman score: only cells with `|i - j - shift| <= band`
/// are computed. Used by the gapped-extension stage of the TBLASTN
/// baseline, where a seed anchors the diagonal.
pub fn sw_banded_score<T: Copy, F: Fn(T, T) -> i32>(
    query: &[T],
    reference: &[T],
    score: F,
    gaps: GapPenalties,
    shift: isize,
    band: usize,
) -> i32 {
    let q = query.len();
    let r = reference.len();
    if q == 0 || r == 0 {
        return 0;
    }
    let band = band as isize;
    let width = r + 1;
    let neg = i32::MIN / 2;
    let mut h_prev = vec![0i32; width];
    let mut f_prev = vec![neg; width];
    let mut best = 0i32;

    for i in 1..=q {
        let mut h_row = vec![0i32; width];
        let mut e_row = vec![neg; width];
        let mut f_row = vec![neg; width];
        let center = i as isize + shift;
        let lo = (center - band).max(1) as usize;
        let hi = ((center + band).max(1) as usize).min(r);
        for j in lo..=hi {
            e_row[j] = (e_row[j - 1] - gaps.extend).max(h_row[j - 1] - gaps.open - gaps.extend);
            f_row[j] = (f_prev[j] - gaps.extend).max(h_prev[j] - gaps.open - gaps.extend);
            let diag = h_prev[j - 1] + score(query[i - 1], reference[j - 1]);
            let cell = diag.max(e_row[j]).max(f_row[j]).max(0);
            h_row[j] = cell;
            best = best.max(cell);
        }
        h_prev = h_row;
        f_prev = f_row;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::seq::{ProteinSeq, RnaSeq};

    fn protein(s: &str) -> Vec<AminoAcid> {
        s.parse::<ProteinSeq>().unwrap().into_inner()
    }

    fn rna(s: &str) -> Vec<Nucleotide> {
        s.parse::<RnaSeq>().unwrap().into_inner()
    }

    #[test]
    fn identity_alignment_scores_sum_of_diagonal() {
        let q = protein("MKWVF");
        let aln = sw_protein(&q, &q, GapPenalties::default(), true);
        let expected: i32 = q.iter().map(|&a| blosum62(a, a)).sum();
        assert_eq!(aln.score, expected);
        assert_eq!(aln.query_range, (0, 5));
        assert_eq!(aln.ref_range, (0, 5));
        assert!(aln.ops.iter().all(|op| matches!(op, AlignOp::Diagonal)));
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        let q = protein("WWWW");
        let r = protein("AAAAWWWWAAAA");
        let aln = sw_protein(&q, &r, GapPenalties::default(), true);
        assert_eq!(aln.score, 44); // 4 × W/W = 4 × 11
        assert_eq!(aln.ref_range, (4, 8));
    }

    #[test]
    fn gap_penalty_is_applied() {
        // Query = reference with one residue deleted: alignment must bridge
        // with a gap (P/L scores −3, so no gapless path can tie).
        let q = protein("MKWVPLLL");
        let r = protein("MKWVLLL"); // P removed
        let aln = sw_protein(&q, &r, GapPenalties { open: 3, extend: 1 }, true);
        // Bridged alignment: all residues matched except P (deleted):
        // sum of self-scores minus P/P minus gap open+extend.
        let bridged = q.iter().map(|&a| blosum62(a, a)).sum::<i32>()
            - blosum62(AminoAcid::Pro, AminoAcid::Pro)
            - 3
            - 1;
        assert_eq!(aln.score, bridged);
        assert_eq!(aln.indel_count(), 1);
    }

    #[test]
    fn score_is_symmetric() {
        let a = protein("MKWVFAC");
        let b = protein("MKYVFAD");
        let g = GapPenalties::default();
        assert_eq!(
            sw_protein(&a, &b, g, false).score,
            sw_protein(&b, &a, g, false).score
        );
    }

    #[test]
    fn unrelated_sequences_score_low() {
        let a = protein("WWWW");
        let b = protein("GGGG");
        let aln = sw_protein(&a, &b, GapPenalties::default(), false);
        assert_eq!(aln.score, 0, "W vs G is -2; nothing positive exists");
    }

    #[test]
    fn empty_inputs_are_zero() {
        let aln = sw_protein(&[], &protein("MK"), GapPenalties::default(), true);
        assert_eq!(aln.score, 0);
        assert!(aln.ops.is_empty());
    }

    #[test]
    fn nucleotide_sw_counts_matches() {
        let q = rna("ACGUACGU");
        let aln = sw_nucleotide(
            &q,
            &q,
            NucScoring::default(),
            GapPenalties::default(),
            false,
        );
        assert_eq!(aln.score, 16); // 8 × +2
    }

    #[test]
    fn nucleotide_sw_handles_substitution() {
        let q = rna("ACGUACGU");
        let r = rna("ACGUGCGU"); // one substitution
        let aln = sw_nucleotide(
            &q,
            &r,
            NucScoring::default(),
            GapPenalties::default(),
            false,
        );
        assert_eq!(aln.score, 11); // 7 matches × 2 − one mismatch × 3
    }

    #[test]
    fn banded_equals_full_when_band_is_wide() {
        let q = protein("MKWVFLLAC");
        let r = protein("AMKWVFLLACA");
        let g = GapPenalties::default();
        let full = sw_protein(&q, &r, g, false).score;
        let banded = sw_banded_score(&q, &r, blosum62, g, 1, 10);
        assert_eq!(full, banded);
    }

    #[test]
    fn narrow_band_bounds_score_from_below() {
        let q = protein("MKWVFLLAC");
        let r = protein("MKWVFLLAC");
        let g = GapPenalties::default();
        let banded = sw_banded_score(&q, &r, blosum62, g, 0, 1);
        let full = sw_protein(&q, &r, g, false).score;
        assert!(banded <= full);
        assert!(banded > 0);
    }

    #[test]
    fn traceback_ops_are_consistent_with_ranges() {
        let q = protein("MKWVFLLL");
        let r = protein("MKWVLLL");
        let aln = sw_protein(&q, &r, GapPenalties { open: 3, extend: 1 }, true);
        let diag = aln
            .ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Diagonal))
            .count();
        let ins = aln
            .ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Insertion))
            .count();
        let del = aln
            .ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Deletion))
            .count();
        assert_eq!(aln.query_range.1 - aln.query_range.0, diag + del);
        assert_eq!(aln.ref_range.1 - aln.ref_range.0, diag + ins);
    }
}
