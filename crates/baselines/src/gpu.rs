//! Data-parallel brute-force aligner — the algorithm of the paper's CUDA
//! kernel ("our highly optimized GPU implementation on the high-end NVIDIA
//! GTX 1080Ti", §IV).
//!
//! The GPU kernel computes, for every reference position, the number of
//! back-translated query elements matching the window, and reports
//! positions above a threshold — exactly FabP's computation, mapped onto
//! thousands of CUDA threads instead of LUT instances. Here the same
//! kernel runs on CPU threads; the `fabp-platforms` crate scales its
//! *operation counts* by GTX 1080Ti throughput to model GPU wall time.
//!
//! Per query element the matcher pre-computes a 64-entry truth table over
//! the context `(ref[i−2], ref[i−1], ref[i])` — the comparator and its
//! input multiplexer fused into one lookup — making the inner loop a
//! single indexed bit test.

use fabp_bio::backtranslate::BackTranslatedQuery;
use fabp_bio::seq::RnaSeq;

pub use fabp_encoding::fused::FusedScorer as FusedQuery;

/// Work counters for the GPU performance model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuWorkStats {
    /// Alignment positions evaluated.
    pub positions: u64,
    /// Element comparisons performed (`positions × L_q`).
    pub comparisons: u64,
}

/// Result of a brute-force search.
#[derive(Debug, Clone)]
pub struct GpuSearchResult {
    /// `(position, score)` pairs with `score >= threshold`, position-sorted.
    pub hits: Vec<(usize, u32)>,
    /// Work counters.
    pub stats: GpuWorkStats,
}

/// Brute-force threshold search over all reference positions, parallelised
/// over `threads` workers (the CUDA grid's analogue).
pub fn brute_force_search(
    query: &BackTranslatedQuery,
    reference: &RnaSeq,
    threshold: u32,
    threads: usize,
) -> GpuSearchResult {
    let fused = FusedQuery::build(query);
    let bases = reference.as_slice();
    if fused.is_empty() || bases.len() < fused.len() {
        return GpuSearchResult {
            hits: Vec::new(),
            stats: GpuWorkStats::default(),
        };
    }
    let positions = bases.len() - fused.len() + 1;
    let threads = threads.max(1).min(positions);
    let chunk = positions.div_ceil(threads);

    let mut hits: Vec<(usize, u32)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(positions);
            if start >= end {
                break;
            }
            let fused = &fused;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                for pos in start..end {
                    let score = fused.score_window(&bases[pos..]);
                    if score >= threshold {
                        local.push((pos, score));
                    }
                }
                local
            }));
        }
        for handle in handles {
            hits.extend(handle.join().expect("gpu worker panicked"));
        }
    });

    hits.sort_unstable();
    GpuSearchResult {
        hits,
        stats: GpuWorkStats {
            positions: positions as u64,
            comparisons: positions as u64 * fused.len() as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use fabp_bio::seq::ProteinSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fused_scorer_matches_golden_model() {
        let mut rng = StdRng::seed_from_u64(31);
        let protein = random_protein(25, &mut rng);
        let bt = BackTranslatedQuery::from_protein(&protein);
        let fused = FusedQuery::build(&bt);
        let reference = random_rna(500, &mut rng);
        let golden = bt.score_all_positions(reference.as_slice());
        let fast = fused.score_all_positions(reference.as_slice());
        assert_eq!(golden.len(), fast.len());
        for (g, f) in golden.iter().zip(&fast) {
            assert_eq!(*g as u32, *f);
        }
    }

    #[test]
    fn brute_force_finds_planted_hit() {
        let mut rng = StdRng::seed_from_u64(32);
        let protein = random_protein(20, &mut rng);
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let background = random_rna(5_000, &mut rng);
        let mut bases = background.as_slice().to_vec();
        bases.splice(2_000..2_000 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let bt = BackTranslatedQuery::from_protein(&protein);
        let qlen = bt.len() as u32;
        let result = brute_force_search(&bt, &reference, qlen, 4);
        assert!(result.hits.contains(&(2_000, qlen)));
        assert_eq!(
            result.stats.positions as usize,
            reference.len() - bt.len() + 1
        );
    }

    #[test]
    fn parallel_equals_serial() {
        let mut rng = StdRng::seed_from_u64(33);
        let protein = random_protein(10, &mut rng);
        let bt = BackTranslatedQuery::from_protein(&protein);
        let reference = random_rna(4_000, &mut rng);
        let serial = brute_force_search(&bt, &reference, 20, 1);
        let parallel = brute_force_search(&bt, &reference, 20, 8);
        assert_eq!(serial.hits, parallel.hits);
        assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn empty_cases() {
        let bt = BackTranslatedQuery::from_elements(Vec::new());
        let reference: RnaSeq = "ACGU".parse().unwrap();
        let r = brute_force_search(&bt, &reference, 0, 4);
        assert!(r.hits.is_empty());
        let protein: ProteinSeq = "MKWVF".parse().unwrap();
        let bt = BackTranslatedQuery::from_protein(&protein);
        let r = brute_force_search(&bt, &"ACG".parse().unwrap(), 0, 4);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn comparisons_scale_with_query_length() {
        let mut rng = StdRng::seed_from_u64(34);
        let reference = random_rna(2_000, &mut rng);
        let short = BackTranslatedQuery::from_protein(&random_protein(10, &mut rng));
        let long = BackTranslatedQuery::from_protein(&random_protein(40, &mut rng));
        let rs = brute_force_search(&short, &reference, u32::MAX, 2);
        let rl = brute_force_search(&long, &reference, u32::MAX, 2);
        assert!(rl.stats.comparisons > rs.stats.comparisons * 3);
    }
}
