//! Needleman–Wunsch global alignment.
//!
//! The DP family referenced in §II ("Dynamic Programming based algorithms
//! consider all the possible sequence mutations") contains both local
//! (Smith–Waterman) and global alignment; global alignment is the natural
//! scorer when two sequences are already known to correspond end-to-end —
//! used here to quantify how far a mutated planted region drifted from its
//! source.

use crate::sw::{AlignOp, GapPenalties};

/// A global alignment: score plus the operation string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalAlignment {
    /// Total alignment score.
    pub score: i32,
    /// Operations from the start of both sequences (empty when traceback
    /// was not requested).
    pub ops: Vec<AlignOp>,
}

impl GlobalAlignment {
    /// Number of indel operations.
    pub fn indel_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, AlignOp::Diagonal))
            .count()
    }

    /// Fraction of aligned (diagonal) positions among all operations.
    pub fn identity_like_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        let diag = self
            .ops
            .iter()
            .filter(|op| matches!(op, AlignOp::Diagonal))
            .count();
        diag as f64 / self.ops.len() as f64
    }
}

/// Global alignment with affine gaps (Gotoh's algorithm).
///
/// `score` gives the substitution score for a pair of symbols.
pub fn needleman_wunsch<T: Copy, F: Fn(T, T) -> i32>(
    a: &[T],
    b: &[T],
    score: F,
    gaps: GapPenalties,
    traceback: bool,
) -> GlobalAlignment {
    let n = a.len();
    let m = b.len();
    let width = m + 1;
    let neg = i32::MIN / 4;
    let open = gaps.open + gaps.extend;
    let extend = gaps.extend;

    // h = best ending in match/mismatch; e = gap in a (b consumed);
    // f = gap in b (a consumed).
    let mut h = vec![neg; (n + 1) * width];
    let mut e = vec![neg; (n + 1) * width];
    let mut f = vec![neg; (n + 1) * width];
    h[0] = 0;
    for j in 1..=m {
        e[j] = -(gaps.open + gaps.extend * j as i32);
        h[j] = e[j];
    }
    for i in 1..=n {
        f[i * width] = -(gaps.open + gaps.extend * i as i32);
        h[i * width] = f[i * width];
    }

    for i in 1..=n {
        for j in 1..=m {
            let idx = i * width + j;
            e[idx] = (e[idx - 1] - extend).max(h[idx - 1] - open);
            f[idx] = (f[idx - width] - extend).max(h[idx - width] - open);
            let diag = h[idx - width - 1] + score(a[i - 1], b[j - 1]);
            h[idx] = diag.max(e[idx]).max(f[idx]);
        }
    }

    let final_score = h[n * width + m];
    let mut ops = Vec::new();
    if traceback {
        let (mut i, mut j) = (n, m);
        #[derive(PartialEq, Clone, Copy)]
        enum State {
            H,
            E,
            F,
        }
        let mut state = State::H;
        while i > 0 || j > 0 {
            let idx = i * width + j;
            match state {
                State::H => {
                    if i > 0 && j > 0 {
                        let diag = h[idx - width - 1] + score(a[i - 1], b[j - 1]);
                        if h[idx] == diag {
                            ops.push(AlignOp::Diagonal);
                            i -= 1;
                            j -= 1;
                            continue;
                        }
                    }
                    if j > 0 && h[idx] == e[idx] {
                        state = State::E;
                    } else {
                        state = State::F;
                    }
                }
                State::E => {
                    ops.push(AlignOp::Insertion);
                    if e[idx] == h[idx - 1] - open {
                        state = State::H;
                    }
                    j -= 1;
                }
                State::F => {
                    ops.push(AlignOp::Deletion);
                    if f[idx] == h[idx - width] - open {
                        state = State::H;
                    }
                    i -= 1;
                }
            }
        }
        ops.reverse();
    }

    GlobalAlignment {
        score: final_score,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::alphabet::AminoAcid;
    use fabp_bio::blosum::blosum62;
    use fabp_bio::seq::ProteinSeq;

    fn protein(s: &str) -> Vec<AminoAcid> {
        s.parse::<ProteinSeq>().unwrap().into_inner()
    }

    #[test]
    fn identity_global_alignment() {
        let a = protein("MKWVF");
        let aln = needleman_wunsch(&a, &a, blosum62, GapPenalties::default(), true);
        let expected: i32 = a.iter().map(|&x| blosum62(x, x)).sum();
        assert_eq!(aln.score, expected);
        assert_eq!(aln.ops.len(), 5);
        assert_eq!(aln.identity_like_fraction(), 1.0);
    }

    #[test]
    fn single_deletion_bridged() {
        let a = protein("MKWVPLLL");
        let b = protein("MKWVLLL");
        let g = GapPenalties { open: 3, extend: 1 };
        let aln = needleman_wunsch(&a, &b, blosum62, g, true);
        let expected: i32 = a.iter().map(|&x| blosum62(x, x)).sum::<i32>()
            - blosum62(AminoAcid::Pro, AminoAcid::Pro)
            - 4;
        assert_eq!(aln.score, expected);
        assert_eq!(aln.indel_count(), 1);
    }

    #[test]
    fn empty_vs_sequence_is_all_gaps() {
        let b = protein("MKW");
        let g = GapPenalties { open: 5, extend: 2 };
        let aln = needleman_wunsch(&[], &b, blosum62, g, true);
        assert_eq!(aln.score, -(5 + 2 * 3));
        assert_eq!(aln.ops.len(), 3);
        assert_eq!(aln.indel_count(), 3);
    }

    #[test]
    fn both_empty() {
        let aln =
            needleman_wunsch::<AminoAcid, _>(&[], &[], blosum62, GapPenalties::default(), true);
        assert_eq!(aln.score, 0);
        assert!(aln.ops.is_empty());
    }

    #[test]
    fn global_score_is_symmetric_with_swapped_gap_roles() {
        let a = protein("MKWVFAC");
        let b = protein("MKYVAC");
        let g = GapPenalties::default();
        let ab = needleman_wunsch(&a, &b, blosum62, g, false).score;
        let ba = needleman_wunsch(&b, &a, blosum62, g, false).score;
        assert_eq!(ab, ba);
    }

    #[test]
    fn global_never_exceeds_local_plus_context() {
        // For identical sequences global == local; with noise, global pays
        // for mismatched ends that local would skip.
        use crate::sw::sw_protein;
        let a = protein("WWWWMKWVFWWWW");
        let b = protein("GGGGMKWVFGGGG");
        let g = GapPenalties::default();
        let local = sw_protein(&a, &b, g, false).score;
        let global = needleman_wunsch(&a, &b, blosum62, g, false).score;
        assert!(global <= local, "global {global} vs local {local}");
    }

    #[test]
    fn traceback_length_invariant() {
        let a = protein("MKWVFACDE");
        let b = protein("MKVFACD");
        let aln = needleman_wunsch(&a, &b, blosum62, GapPenalties::default(), true);
        let diag = aln
            .ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Diagonal))
            .count();
        let ins = aln
            .ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Insertion))
            .count();
        let del = aln
            .ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Deletion))
            .count();
        assert_eq!(diag + del, a.len());
        assert_eq!(diag + ins, b.len());
    }
}
