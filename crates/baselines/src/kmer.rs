//! Protein k-mer (word) index with BLAST-style neighbourhoods.
//!
//! "BLAST looks for similar k-mers … all the k-mers of the query sequence
//! in a hash-table and use k-mers of the reference sequence to find the
//! similar subsequences (hits)" (§II). For protein search the table is
//! seeded not just with the query's own words but with every word whose
//! BLOSUM62 score against a query word reaches the neighbourhood threshold
//! `T` — the classic BLASTP/TBLASTN word neighbourhood.

use fabp_bio::alphabet::AminoAcid;
use fabp_bio::blosum::blosum62;

/// Number of protein symbols (20 amino acids + Stop).
const SYMBOLS: usize = 21;

/// Packs a protein word into a dense table key (`Σ aa_i · 21^i`).
pub fn pack_word(word: &[AminoAcid]) -> usize {
    word.iter()
        .fold(0usize, |acc, aa| acc * SYMBOLS + aa.index())
}

/// A query word index: maps every neighbourhood word to the query
/// positions it seeds.
///
/// Stored in compressed-sparse-row form (one offsets array over the dense
/// `21^w` key space plus a postings array) so the scan loop's lookup is a
/// two-load slice, cache-friendly even for the full 1 Gbase sweeps.
///
/// # Examples
///
/// ```
/// use fabp_bio::seq::ProteinSeq;
/// use fabp_baselines::kmer::WordIndex;
///
/// let query: ProteinSeq = "MKWVF".parse()?;
/// let index = WordIndex::build(query.as_slice(), 3, 11);
/// // The query's own words always seed themselves.
/// assert!(index.lookup(&query.as_slice()[0..3]).contains(&0));
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WordIndex {
    word_size: usize,
    /// CSR row offsets, `table_size + 1` entries.
    offsets: Vec<u32>,
    /// Query positions, grouped by packed word.
    postings: Vec<u32>,
    /// Number of distinct neighbourhood words stored.
    words_stored: usize,
}

impl WordIndex {
    /// Builds the index for `query` with words of `word_size` residues and
    /// neighbourhood threshold `t` (BLOSUM62 word score ≥ `t` seeds the
    /// position). BLAST's protein defaults are `word_size = 3`, `t = 11`.
    ///
    /// # Panics
    ///
    /// Panics if `word_size` is 0 or greater than 5 (table size 21^w).
    pub fn build(query: &[AminoAcid], word_size: usize, t: i32) -> WordIndex {
        assert!(
            (1..=5).contains(&word_size),
            "word size {word_size} out of supported range"
        );
        let table_size = SYMBOLS.pow(word_size as u32);
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        if query.len() >= word_size {
            let mut scratch = vec![AminoAcid::Ala; word_size];
            for pos in 0..=query.len() - word_size {
                let qword = &query[pos..pos + word_size];
                enumerate_neighbourhood(qword, t, &mut scratch, 0, 0, &mut |word| {
                    pairs.push((pack_word(word) as u32, pos as u32));
                });
            }
        }

        // Counting sort into CSR.
        let mut counts = vec![0u32; table_size + 1];
        for &(key, _) in &pairs {
            counts[key as usize + 1] += 1;
        }
        let words_stored = counts[1..].iter().filter(|&&c| c > 0).count();
        for i in 0..table_size {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut postings = vec![0u32; pairs.len()];
        for &(key, pos) in &pairs {
            let slot = cursor[key as usize];
            postings[slot as usize] = pos;
            cursor[key as usize] += 1;
        }

        WordIndex {
            word_size,
            offsets,
            postings,
            words_stored,
        }
    }

    /// The configured word size.
    pub fn word_size(&self) -> usize {
        self.word_size
    }

    /// Number of distinct words present in the table.
    pub fn words_stored(&self) -> usize {
        self.words_stored
    }

    /// Query positions seeded by the packed word `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 21^word_size`.
    #[inline]
    pub fn lookup_key(&self, key: usize) -> &[u32] {
        let start = self.offsets[key] as usize;
        let end = self.offsets[key + 1] as usize;
        &self.postings[start..end]
    }

    /// Query positions seeded by `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != self.word_size()`.
    pub fn lookup(&self, word: &[AminoAcid]) -> &[u32] {
        assert_eq!(word.len(), self.word_size, "word length mismatch");
        self.lookup_key(pack_word(word))
    }

    /// Modulus for rolling-key updates: `21^(word_size − 1)`.
    pub fn rolling_modulus(&self) -> usize {
        SYMBOLS.pow(self.word_size as u32 - 1)
    }
}

/// Recursively enumerates all words whose partial BLOSUM62 score can still
/// reach `t`, calling `emit` for each complete word with total score ≥ `t`.
fn enumerate_neighbourhood(
    qword: &[AminoAcid],
    t: i32,
    scratch: &mut [AminoAcid],
    depth: usize,
    score_so_far: i32,
    emit: &mut impl FnMut(&[AminoAcid]),
) {
    if depth == qword.len() {
        if score_so_far >= t {
            emit(scratch);
        }
        return;
    }
    // Upper bound on the remaining score: best self-score is 11 (W/W).
    let remaining_max: i32 = qword[depth..]
        .iter()
        .map(|&q| {
            AminoAcid::ALL
                .iter()
                .map(|&s| blosum62(q, s))
                .max()
                .unwrap_or(0)
        })
        .sum();
    if score_so_far + remaining_max < t {
        return;
    }
    for symbol in AminoAcid::ALL {
        scratch[depth] = symbol;
        enumerate_neighbourhood(
            qword,
            t,
            scratch,
            depth + 1,
            score_so_far + blosum62(qword[depth], symbol),
            emit,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::seq::ProteinSeq;

    fn protein(s: &str) -> Vec<AminoAcid> {
        s.parse::<ProteinSeq>().unwrap().into_inner()
    }

    #[test]
    fn own_words_seed_when_self_score_clears_t() {
        let q = protein("MKWVFA");
        let index = WordIndex::build(&q, 3, 11);
        for pos in 0..=q.len() - 3 {
            let word = &q[pos..pos + 3];
            let self_score: i32 = word.iter().map(|&a| blosum62(a, a)).sum();
            if self_score >= 11 {
                assert!(
                    index.lookup(word).contains(&(pos as u32)),
                    "word at {pos} missing"
                );
            }
        }
    }

    #[test]
    fn neighbourhood_includes_conservative_substitutions() {
        // ILE and VAL score +3; WWW region: neighbourhood of "WIW" should
        // include "WVW" (11 + 3 + 11 = 25 >= 11).
        let q = protein("WIW");
        let index = WordIndex::build(&q, 3, 11);
        assert!(index.lookup(&protein("WVW")).contains(&0));
        // And exclude hopeless words like "GGG" (-2 -4 -2 = -8).
        assert!(!index.lookup(&protein("GGG")).contains(&0));
    }

    #[test]
    fn higher_threshold_shrinks_neighbourhood() {
        let q = protein("MKWVFACDE");
        let loose = WordIndex::build(&q, 3, 10);
        let tight = WordIndex::build(&q, 3, 14);
        assert!(tight.words_stored() < loose.words_stored());
    }

    #[test]
    fn short_query_yields_empty_index() {
        let q = protein("MK");
        let index = WordIndex::build(&q, 3, 11);
        assert_eq!(index.words_stored(), 0);
    }

    #[test]
    fn pack_word_is_injective_for_small_words() {
        let mut seen = std::collections::HashSet::new();
        for a in AminoAcid::ALL {
            for b in AminoAcid::ALL {
                assert!(seen.insert(pack_word(&[a, b])), "collision at {a}{b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "word length mismatch")]
    fn lookup_rejects_wrong_length() {
        let q = protein("MKWVF");
        let index = WordIndex::build(&q, 3, 11);
        let _ = index.lookup(&q[0..2]);
    }

    #[test]
    fn word_size_two_works() {
        let q = protein("WW");
        let index = WordIndex::build(&q, 2, 15);
        assert!(index.lookup(&protein("WW")).contains(&0));
    }
}
