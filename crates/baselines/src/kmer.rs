//! Protein k-mer (word) index with BLAST-style neighbourhoods.
//!
//! "BLAST looks for similar k-mers … all the k-mers of the query sequence
//! in a hash-table and use k-mers of the reference sequence to find the
//! similar subsequences (hits)" (§II). For protein search the table is
//! seeded not just with the query's own words but with every word whose
//! BLOSUM62 score against a query word reaches the neighbourhood threshold
//! `T` — the classic BLASTP/TBLASTN word neighbourhood.

use fabp_bio::alphabet::AminoAcid;
use fabp_bio::blosum::blosum62;
use fabp_resilience::{FabpError, FabpResult};

/// Number of protein symbols (20 amino acids + Stop).
pub const SYMBOLS: usize = 21;

/// Packs a protein word into a dense table key (`Σ aa_i · 21^i`).
///
/// The key is only meaningful against an index whose `word_size` equals
/// `word.len()`; a longer word packs to a key outside that index's
/// `21^word_size` table. Use [`WordIndex::try_lookup`] for a checked
/// lookup that rejects mismatched lengths with a typed error.
pub fn pack_word(word: &[AminoAcid]) -> usize {
    word.iter()
        .fold(0usize, |acc, aa| acc * SYMBOLS + aa.index())
}

/// A query word index: maps every neighbourhood word to the query
/// positions it seeds.
///
/// Stored in compressed-sparse-row form (one offsets array over the dense
/// `21^w` key space plus a postings array) so the scan loop's lookup is a
/// two-load slice, cache-friendly even for the full 1 Gbase sweeps.
///
/// # Examples
///
/// ```
/// use fabp_bio::seq::ProteinSeq;
/// use fabp_baselines::kmer::WordIndex;
///
/// let query: ProteinSeq = "MKWVF".parse()?;
/// let index = WordIndex::build(query.as_slice(), 3, 11);
/// // The query's own words always seed themselves.
/// assert!(index.lookup(&query.as_slice()[0..3]).contains(&0));
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WordIndex {
    word_size: usize,
    /// CSR row offsets, `table_size + 1` entries.
    offsets: Vec<u32>,
    /// Query positions, grouped by packed word.
    postings: Vec<u32>,
    /// Number of distinct neighbourhood words stored.
    words_stored: usize,
}

impl WordIndex {
    /// Builds the index for `query` with words of `word_size` residues and
    /// neighbourhood threshold `t` (BLOSUM62 word score ≥ `t` seeds the
    /// position). BLAST's protein defaults are `word_size = 3`, `t = 11`.
    ///
    /// # Panics
    ///
    /// Panics if `word_size` is 0 or greater than 5 (table size 21^w).
    /// Use [`WordIndex::try_build`] for a non-panicking variant.
    pub fn build(query: &[AminoAcid], word_size: usize, t: i32) -> WordIndex {
        match WordIndex::try_build(query, word_size, t) {
            Ok(index) => index,
            Err(e) => panic!("word size {word_size} out of supported range: {e}"),
        }
    }

    /// Builds the index like [`WordIndex::build`] but returns a typed
    /// [`FabpError::InvalidWord`] instead of panicking when `word_size`
    /// is outside the supported `1..=5` range.
    pub fn try_build(query: &[AminoAcid], word_size: usize, t: i32) -> FabpResult<WordIndex> {
        if !(1..=5).contains(&word_size) {
            return Err(FabpError::InvalidWord {
                word_size,
                detail: "supported word sizes are 1..=5 (table size 21^w)".to_string(),
            });
        }
        let table_size = SYMBOLS.pow(word_size as u32);
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        if query.len() >= word_size {
            let mut scratch = vec![AminoAcid::Ala; word_size];
            for pos in 0..=query.len() - word_size {
                let qword = &query[pos..pos + word_size];
                enumerate_neighbourhood(qword, t, &mut scratch, 0, 0, &mut |word| {
                    // Safe: each residue index < 21, word_size ≤ 5, so the
                    // packed key < 21^5 < 2^32. Checked, not assumed.
                    let key = u32::try_from(pack_word(word)).expect("key fits u32 for w <= 5");
                    pairs.push((key, pos as u32));
                });
            }
        }

        // Counting sort into CSR.
        let mut counts = vec![0u32; table_size + 1];
        for &(key, _) in &pairs {
            counts[key as usize + 1] += 1;
        }
        let words_stored = counts[1..].iter().filter(|&&c| c > 0).count();
        for i in 0..table_size {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut postings = vec![0u32; pairs.len()];
        for &(key, pos) in &pairs {
            let slot = cursor[key as usize];
            postings[slot as usize] = pos;
            cursor[key as usize] += 1;
        }

        Ok(WordIndex {
            word_size,
            offsets,
            postings,
            words_stored,
        })
    }

    /// The configured word size.
    pub fn word_size(&self) -> usize {
        self.word_size
    }

    /// Number of distinct words present in the table.
    pub fn words_stored(&self) -> usize {
        self.words_stored
    }

    /// Size of the dense key space, `21^word_size`.
    pub fn table_size(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Query positions seeded by the packed word `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 21^word_size`. Use
    /// [`WordIndex::try_lookup_key`] for a checked variant.
    #[inline]
    pub fn lookup_key(&self, key: usize) -> &[u32] {
        match self.try_lookup_key(key) {
            Ok(postings) => postings,
            Err(e) => panic!("packed key out of range: {e}"),
        }
    }

    /// Query positions seeded by the packed word `key`, or a typed
    /// [`FabpError::InvalidWord`] if `key` is at or beyond the
    /// `21^word_size` table — as happens when a word longer than
    /// `word_size` is packed and its key used here.
    #[inline]
    pub fn try_lookup_key(&self, key: usize) -> FabpResult<&[u32]> {
        if key + 1 >= self.offsets.len() {
            return Err(FabpError::InvalidWord {
                word_size: self.word_size,
                detail: format!(
                    "packed key {key} is outside the table of {} entries",
                    self.table_size()
                ),
            });
        }
        let start = self.offsets[key] as usize;
        let end = self.offsets[key + 1] as usize;
        Ok(&self.postings[start..end])
    }

    /// Query positions seeded by `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != self.word_size()`. Use
    /// [`WordIndex::try_lookup`] for a checked variant.
    pub fn lookup(&self, word: &[AminoAcid]) -> &[u32] {
        assert_eq!(word.len(), self.word_size, "word length mismatch");
        self.lookup_key(pack_word(word))
    }

    /// Query positions seeded by `word`, or a typed
    /// [`FabpError::InvalidWord`] if `word.len() != self.word_size()`
    /// (packing a mismatched word would silently alias or overflow the
    /// key space).
    pub fn try_lookup(&self, word: &[AminoAcid]) -> FabpResult<&[u32]> {
        if word.len() != self.word_size {
            return Err(FabpError::InvalidWord {
                word_size: self.word_size,
                detail: format!("word has {} residue(s)", word.len()),
            });
        }
        self.try_lookup_key(pack_word(word))
    }

    /// Modulus for rolling-key updates: `21^(word_size − 1)`.
    pub fn rolling_modulus(&self) -> usize {
        SYMBOLS.pow(self.word_size as u32 - 1)
    }
}

/// Recursively enumerates all words whose partial BLOSUM62 score can still
/// reach `t`, calling `emit` for each complete word with total score ≥ `t`.
fn enumerate_neighbourhood(
    qword: &[AminoAcid],
    t: i32,
    scratch: &mut [AminoAcid],
    depth: usize,
    score_so_far: i32,
    emit: &mut impl FnMut(&[AminoAcid]),
) {
    if depth == qword.len() {
        if score_so_far >= t {
            emit(scratch);
        }
        return;
    }
    // Upper bound on the remaining score: best self-score is 11 (W/W).
    let remaining_max: i32 = qword[depth..]
        .iter()
        .map(|&q| {
            AminoAcid::ALL
                .iter()
                .map(|&s| blosum62(q, s))
                .max()
                .unwrap_or(0)
        })
        .sum();
    if score_so_far + remaining_max < t {
        return;
    }
    for symbol in AminoAcid::ALL {
        scratch[depth] = symbol;
        enumerate_neighbourhood(
            qword,
            t,
            scratch,
            depth + 1,
            score_so_far + blosum62(qword[depth], symbol),
            emit,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::seq::ProteinSeq;

    fn protein(s: &str) -> Vec<AminoAcid> {
        s.parse::<ProteinSeq>().unwrap().into_inner()
    }

    #[test]
    fn own_words_seed_when_self_score_clears_t() {
        let q = protein("MKWVFA");
        let index = WordIndex::build(&q, 3, 11);
        for pos in 0..=q.len() - 3 {
            let word = &q[pos..pos + 3];
            let self_score: i32 = word.iter().map(|&a| blosum62(a, a)).sum();
            if self_score >= 11 {
                assert!(
                    index.lookup(word).contains(&(pos as u32)),
                    "word at {pos} missing"
                );
            }
        }
    }

    #[test]
    fn neighbourhood_includes_conservative_substitutions() {
        // ILE and VAL score +3; WWW region: neighbourhood of "WIW" should
        // include "WVW" (11 + 3 + 11 = 25 >= 11).
        let q = protein("WIW");
        let index = WordIndex::build(&q, 3, 11);
        assert!(index.lookup(&protein("WVW")).contains(&0));
        // And exclude hopeless words like "GGG" (-2 -4 -2 = -8).
        assert!(!index.lookup(&protein("GGG")).contains(&0));
    }

    #[test]
    fn higher_threshold_shrinks_neighbourhood() {
        let q = protein("MKWVFACDE");
        let loose = WordIndex::build(&q, 3, 10);
        let tight = WordIndex::build(&q, 3, 14);
        assert!(tight.words_stored() < loose.words_stored());
    }

    #[test]
    fn short_query_yields_empty_index() {
        let q = protein("MK");
        let index = WordIndex::build(&q, 3, 11);
        assert_eq!(index.words_stored(), 0);
    }

    #[test]
    fn pack_word_is_injective_for_small_words() {
        let mut seen = std::collections::HashSet::new();
        for a in AminoAcid::ALL {
            for b in AminoAcid::ALL {
                assert!(seen.insert(pack_word(&[a, b])), "collision at {a}{b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "word length mismatch")]
    fn lookup_rejects_wrong_length() {
        let q = protein("MKWVF");
        let index = WordIndex::build(&q, 3, 11);
        let _ = index.lookup(&q[0..2]);
    }

    #[test]
    fn word_size_two_works() {
        let q = protein("WW");
        let index = WordIndex::build(&q, 2, 15);
        assert!(index.lookup(&protein("WW")).contains(&0));
    }

    // --- Regressions for the silent-truncation / unchecked-bounds bug.
    // Before the checked APIs existed, packing an over-long word produced
    // a key outside the `21^word_size` table and `lookup_key` indexed
    // `offsets[key + 1]` unchecked — an index-out-of-bounds panic at
    // best, a silently aliased posting list at worst.

    #[test]
    fn try_build_rejects_unsupported_word_size_with_typed_error() {
        let q = protein("MKWVF");
        for bad in [0usize, 6, 9] {
            match WordIndex::try_build(&q, bad, 11) {
                Err(FabpError::InvalidWord { word_size, .. }) => assert_eq!(word_size, bad),
                other => panic!("word_size {bad} accepted: {other:?}"),
            }
        }
        assert!(WordIndex::try_build(&q, 3, 11).is_ok());
    }

    #[test]
    fn try_lookup_rejects_mismatched_word_length_with_typed_error() {
        let q = protein("MKWVF");
        let index = WordIndex::try_build(&q, 3, 11).unwrap();
        // A 4-residue word packs to a key up to 21^4 − 1, far past the
        // 21^3-entry table; the checked API must refuse, not truncate.
        let long = protein("MKWV");
        match index.try_lookup(&long) {
            Err(FabpError::InvalidWord { word_size, detail }) => {
                assert_eq!(word_size, 3);
                assert!(detail.contains("4 residue"), "detail: {detail}");
            }
            other => panic!("over-long word accepted: {other:?}"),
        }
        assert!(index.try_lookup(&protein("MK")).is_err());
        assert!(index.try_lookup(&q[0..3]).is_ok());
    }

    #[test]
    fn try_lookup_key_bounds_checks_the_table() {
        let q = protein("MKWVF");
        let index = WordIndex::try_build(&q, 3, 11).unwrap();
        let table = index.table_size();
        assert_eq!(table, SYMBOLS.pow(3));
        assert!(index.try_lookup_key(table - 1).is_ok());
        // The first out-of-range key: exactly what pack_word yields for
        // an over-long word. Typed error, no panic, no aliasing.
        match index.try_lookup_key(table) {
            Err(FabpError::InvalidWord { .. }) => {}
            other => panic!("out-of-range key accepted: {other:?}"),
        }
        assert!(index.try_lookup_key(pack_word(&protein("MKWV"))).is_err());
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn build_still_panics_for_compat() {
        let q = protein("MKWVF");
        let _ = WordIndex::build(&q, 7, 11);
    }

    #[test]
    fn checked_and_panicking_lookups_agree() {
        let q = protein("MKWVFACDE");
        let index = WordIndex::build(&q, 3, 11);
        for pos in 0..=q.len() - 3 {
            let word = &q[pos..pos + 3];
            assert_eq!(index.lookup(word), index.try_lookup(word).unwrap());
        }
    }
}
