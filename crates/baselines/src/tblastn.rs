//! TBLASTN-like protein-vs-nucleotide search — the paper's CPU baseline.
//!
//! "TBLASTN aligns protein queries against references of nucleotide
//! sequences. It translates the reference sequences to proteins and then
//! aligns the query with the translated reference sequence" (§II). The
//! pipeline follows NCBI BLAST's structure:
//!
//! 1. translate the reference in all three forward reading frames;
//! 2. scan each frame's words against the query [`WordIndex`]
//!    (neighbourhood seeding);
//! 3. trigger on two word hits on the same diagonal within a window
//!    (the two-hit heuristic), or one hit when configured;
//! 4. X-drop ungapped extension of triggered seeds;
//! 5. banded gapped Smith–Waterman for extensions above the trigger score.
//!
//! The serial and multi-threaded drivers share the same per-chunk kernel;
//! the 12-thread variant reproduces the paper's "multi-thread (12 threads)
//! CPU" configuration.

use crate::kmer::WordIndex;
use crate::sw::{sw_banded_score, GapPenalties};
use fabp_bio::alphabet::AminoAcid;
use fabp_bio::blosum::blosum62;
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use fabp_bio::translate::translate_frame;

/// Tuning parameters of the search (NCBI-flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TblastnConfig {
    /// Word size in residues (BLAST protein default: 3).
    pub word_size: usize,
    /// Neighbourhood threshold `T` (BLAST default: 11).
    pub neighbourhood_t: i32,
    /// Two-hit window in residues along the diagonal (BLAST default: 40).
    pub two_hit_window: usize,
    /// Require two hits before extending (BLAST default behaviour).
    pub two_hit: bool,
    /// X-drop for the ungapped extension.
    pub xdrop: i32,
    /// Ungapped score that triggers gapped extension.
    pub gapped_trigger: i32,
    /// Gap penalties for the gapped stage.
    pub gaps: GapPenalties,
    /// Band half-width for the gapped stage.
    pub band: usize,
    /// Minimum final score to report an HSP.
    pub min_score: i32,
}

impl Default for TblastnConfig {
    fn default() -> TblastnConfig {
        TblastnConfig {
            word_size: 3,
            neighbourhood_t: 11,
            two_hit_window: 40,
            two_hit: true,
            xdrop: 7,
            gapped_trigger: 22,
            gaps: GapPenalties::default(),
            band: 16,
            min_score: 40,
        }
    }
}

/// A reported high-scoring segment pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hsp {
    /// Reading frame offset (0, 1, 2).
    pub frame: u8,
    /// Seed position in the query (residues).
    pub query_pos: usize,
    /// Seed position in the translated frame (residues).
    pub frame_pos: usize,
    /// Nucleotide position of the seed codon in the reference.
    pub nucleotide_pos: usize,
    /// Final (gapped when triggered, else ungapped) score.
    pub score: i32,
}

/// Work counters used by the platform performance models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Reference words scanned across all frames.
    pub words_scanned: u64,
    /// Hash-table seed hits.
    pub seed_hits: u64,
    /// Ungapped extensions performed.
    pub ungapped_extensions: u64,
    /// Gapped extensions performed.
    pub gapped_extensions: u64,
    /// Dynamic-programming cells evaluated in gapped extensions.
    pub dp_cells: u64,
}

impl SearchStats {
    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: SearchStats) {
        self.words_scanned += other.words_scanned;
        self.seed_hits += other.seed_hits;
        self.ungapped_extensions += other.ungapped_extensions;
        self.gapped_extensions += other.gapped_extensions;
        self.dp_cells += other.dp_cells;
    }

    /// Publishes these counters (plus the HSP count) to `registry` as
    /// `fabp_tblastn_*_total` counters. Called once per completed
    /// search, so the per-word scan loop stays untouched.
    pub fn record(&self, registry: &fabp_telemetry::Registry, hsps: usize) {
        if !registry.is_enabled() {
            return;
        }
        registry
            .counter(
                "fabp_tblastn_words_scanned_total",
                "TBLASTN reference words scanned across all frames",
            )
            .add(self.words_scanned);
        registry
            .counter(
                "fabp_tblastn_seed_hits_total",
                "TBLASTN hash-table seed hits",
            )
            .add(self.seed_hits);
        registry
            .counter(
                "fabp_tblastn_ungapped_extensions_total",
                "TBLASTN ungapped X-drop extensions",
            )
            .add(self.ungapped_extensions);
        registry
            .counter(
                "fabp_tblastn_gapped_extensions_total",
                "TBLASTN banded gapped extensions",
            )
            .add(self.gapped_extensions);
        registry
            .counter(
                "fabp_tblastn_dp_cells_total",
                "TBLASTN dynamic-programming cells evaluated",
            )
            .add(self.dp_cells);
        registry
            .counter_with(
                "fabp_hits_total",
                "Hits emitted, by engine",
                fabp_telemetry::labels(&[("engine", "tblastn")]),
            )
            .add(hsps as u64);
    }
}

/// Result of one search: HSPs plus work statistics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// HSPs above the score cutoff, ordered by (frame, nucleotide position).
    pub hsps: Vec<Hsp>,
    /// Work counters.
    pub stats: SearchStats,
}

/// X-drop ungapped extension of a word seed in both directions.
///
/// Returns the extension score. Public so the GPU model and tests can use
/// the same kernel.
pub fn ungapped_extend(
    query: &[AminoAcid],
    frame: &[AminoAcid],
    qpos: usize,
    fpos: usize,
    word: usize,
    xdrop: i32,
) -> i32 {
    // Score of the seed word itself.
    let mut score: i32 = (0..word)
        .map(|k| blosum62(query[qpos + k], frame[fpos + k]))
        .sum();

    // Extend right.
    let mut best = score;
    let (mut qi, mut fi) = (qpos + word, fpos + word);
    while qi < query.len() && fi < frame.len() {
        score += blosum62(query[qi], frame[fi]);
        if score > best {
            best = score;
        } else if best - score > xdrop {
            break;
        }
        qi += 1;
        fi += 1;
    }

    // Extend left.
    let mut score = best;
    let (mut qi, mut fi) = (qpos, fpos);
    while qi > 0 && fi > 0 {
        qi -= 1;
        fi -= 1;
        score += blosum62(query[qi], frame[fi]);
        if score > best {
            best = score;
        } else if best - score > xdrop {
            break;
        }
    }
    best
}

/// Searches one translated frame. `frame_offset` is the frame id,
/// `nucleotide_base` the nucleotide coordinate of frame position 0.
#[allow(clippy::too_many_arguments)] // internal; mirrors the pipeline's knobs
fn search_frame(
    query: &[AminoAcid],
    index: &WordIndex,
    frame: &[AminoAcid],
    frame_offset: u8,
    nucleotide_base: usize,
    config: &TblastnConfig,
    out: &mut Vec<Hsp>,
    stats: &mut SearchStats,
) {
    let w = config.word_size;
    if frame.len() < w || query.len() < w {
        return;
    }
    let q = query.len();
    // Diagonal bookkeeping: diag = fpos - qpos + q (always positive).
    // One compact record per diagonal keeps the random accesses of the
    // seed loop within a single cache line each.
    #[derive(Clone, Copy)]
    struct DiagState {
        /// Last un-extended hit position (two-hit anchor).
        last_hit: u32,
        /// End of the last extension (suppresses rescanning).
        covered_until: u32,
    }
    let diag_count = frame.len() + q + 1;
    let mut diags = vec![
        DiagState {
            last_hit: u32::MAX,
            covered_until: 0,
        };
        diag_count
    ];

    // Rolling packed word key over the frame (drop the oldest residue's
    // digit, append the newest).
    let modulus = index.rolling_modulus();
    let mut key = frame[..w - 1]
        .iter()
        .fold(0usize, |acc, aa| acc * 21 + aa.index());

    for fpos in 0..=frame.len() - w {
        key = (key % modulus) * 21 + frame[fpos + w - 1].index();
        stats.words_scanned += 1;
        for &qpos in index.lookup_key(key) {
            let qpos = qpos as usize;
            stats.seed_hits += 1;
            let diag = fpos + q - qpos;
            let state = &mut diags[diag];
            if (fpos as u32) < state.covered_until {
                continue; // already inside an extended HSP on this diagonal
            }
            let trigger = if config.two_hit {
                // NCBI-style two-hit: the pair must be non-overlapping
                // (≥ w apart) and within the window. Overlapping hits keep
                // the earlier anchor; stale hits restart the window.
                let prev = state.last_hit;
                if prev == u32::MAX || fpos as u32 <= prev {
                    state.last_hit = fpos as u32;
                    false
                } else {
                    let d = fpos - prev as usize;
                    if d < w {
                        false // overlapping: keep the earlier anchor
                    } else {
                        state.last_hit = fpos as u32;
                        d <= config.two_hit_window
                    }
                }
            } else {
                true
            };
            if !trigger {
                continue;
            }

            stats.ungapped_extensions += 1;
            let ungapped = ungapped_extend(query, frame, qpos, fpos, w, config.xdrop);
            diags[diag].covered_until = (fpos + w) as u32;

            let final_score = if ungapped >= config.gapped_trigger {
                stats.gapped_extensions += 1;
                // Banded gapped alignment around the seed diagonal over a
                // local window of the frame.
                let window_start = fpos.saturating_sub(qpos + config.band);
                let window_end = (fpos + (q - qpos) + config.band).min(frame.len());
                let window = &frame[window_start..window_end];
                let shift = fpos as isize - qpos as isize - window_start as isize;
                stats.dp_cells += (q * (2 * config.band + 1)) as u64;
                sw_banded_score(query, window, blosum62, config.gaps, shift, config.band)
            } else {
                ungapped
            };

            if final_score >= config.min_score {
                out.push(Hsp {
                    frame: frame_offset,
                    query_pos: qpos,
                    frame_pos: fpos,
                    nucleotide_pos: nucleotide_base + 3 * fpos,
                    score: final_score,
                });
            }
        }
    }
}

/// Serial TBLASTN-like search of a protein query against an RNA reference
/// (three forward frames).
///
/// # Examples
///
/// ```
/// use fabp_bio::seq::{ProteinSeq, RnaSeq};
/// use fabp_baselines::tblastn::{tblastn_search, TblastnConfig};
///
/// let query: ProteinSeq = "MKWVFLLAMKWVFLLA".parse()?;
/// // Reference containing the query's coding sequence.
/// let reference: RnaSeq =
///     "AUGAAAUGGGUUUUUCUACUAGCUAUGAAAUGGGUUUUUCUACUAGCU".parse()?;
/// let result = tblastn_search(&query, &reference, &TblastnConfig::default());
/// assert!(!result.hsps.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn tblastn_search(
    query: &ProteinSeq,
    reference: &RnaSeq,
    config: &TblastnConfig,
) -> SearchResult {
    let index = WordIndex::build(query.as_slice(), config.word_size, config.neighbourhood_t);
    let mut result = SearchResult {
        hsps: Vec::new(),
        stats: SearchStats::default(),
    };
    for offset in 0u8..3 {
        let frame = translate_frame(reference, offset);
        search_frame(
            query.as_slice(),
            &index,
            frame.as_slice(),
            offset,
            offset as usize,
            config,
            &mut result.hsps,
            &mut result.stats,
        );
    }
    result
        .hsps
        .sort_by_key(|h| (h.frame, h.nucleotide_pos, h.query_pos));
    result
        .stats
        .record(fabp_telemetry::Registry::global(), result.hsps.len());
    result
}

/// Multi-threaded search: the reference is split into overlapping chunks
/// distributed over `threads` workers (the paper's 12-thread baseline uses
/// `threads = 12`).
pub fn tblastn_search_parallel(
    query: &ProteinSeq,
    reference: &RnaSeq,
    config: &TblastnConfig,
    threads: usize,
) -> SearchResult {
    let threads = threads.max(1);
    if threads == 1 || reference.len() < 4096 {
        return tblastn_search(query, reference, config);
    }
    let index = WordIndex::build(query.as_slice(), config.word_size, config.neighbourhood_t);
    // Overlap must cover a full alignment plus band so chunk-boundary HSPs
    // are found by at least one worker (in nucleotides, codon-aligned).
    let overlap = 3 * (query.len() + 2 * config.band + config.two_hit_window);
    let chunk_len = reference.len().div_ceil(threads).max(overlap);

    let bases = reference.as_slice();
    let mut results: Vec<(Vec<Hsp>, SearchStats)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut start = 0usize;
        while start < bases.len() {
            let end = (start + chunk_len + overlap).min(bases.len());
            let chunk = &bases[start..end];
            let index = &index;
            let query = query.as_slice();
            handles.push((
                start,
                scope.spawn(move || {
                    let mut hsps = Vec::new();
                    let mut stats = SearchStats::default();
                    let chunk_rna: RnaSeq = chunk.iter().copied().collect();
                    for offset in 0u8..3 {
                        let frame = translate_frame(&chunk_rna, offset);
                        search_frame(
                            query,
                            index,
                            frame.as_slice(),
                            offset,
                            offset as usize,
                            config,
                            &mut hsps,
                            &mut stats,
                        );
                    }
                    (hsps, stats)
                }),
            ));
            start += chunk_len;
        }
        for (chunk_start, handle) in handles {
            let (mut hsps, stats) = handle.join().expect("search worker panicked");
            for h in &mut hsps {
                h.nucleotide_pos += chunk_start;
                // Frame ids are relative to the chunk; renormalise to the
                // global frame of the seed's nucleotide position.
                h.frame = (h.nucleotide_pos % 3) as u8;
            }
            results.push((hsps, stats));
        }
    });

    let mut merged = SearchResult {
        hsps: Vec::new(),
        stats: SearchStats::default(),
    };
    for (hsps, stats) in results {
        merged.hsps.extend(hsps);
        merged.stats.merge(stats);
    }
    // Deduplicate overlap-region duplicates.
    merged.hsps.sort_by_key(|h| {
        (
            h.frame,
            h.nucleotide_pos,
            h.query_pos,
            std::cmp::Reverse(h.score),
        )
    });
    merged
        .hsps
        .dedup_by_key(|h| (h.frame, h.nucleotide_pos, h.query_pos));
    merged
        .stats
        .record(fabp_telemetry::Registry::global(), merged.hsps.len());
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::alphabet::Nucleotide;
    use fabp_bio::generate::{coding_rna_for, random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plant(reference: &RnaSeq, coding: &RnaSeq, at: usize) -> RnaSeq {
        let mut bases: Vec<Nucleotide> = reference.as_slice().to_vec();
        bases.splice(at..at + coding.len(), coding.iter().copied());
        RnaSeq::from(bases)
    }

    #[test]
    fn finds_planted_homology_in_each_frame() {
        let mut rng = StdRng::seed_from_u64(21);
        let protein = random_protein(40, &mut rng);
        let coding = coding_rna_for(&protein, &mut rng);
        for frame in 0usize..3 {
            let background = random_rna(3000, &mut rng);
            let at = 900 + frame;
            let reference = plant(&background, &coding, at);
            let result = tblastn_search(&protein, &reference, &TblastnConfig::default());
            let hit = result
                .hsps
                .iter()
                .find(|h| h.nucleotide_pos.abs_diff(at) < 3 * 40);
            assert!(
                hit.is_some(),
                "frame {frame}: no HSP near {at}; got {:?}",
                result.hsps
            );
            assert_eq!(hit.unwrap().frame as usize, frame);
        }
    }

    #[test]
    fn hsp_score_reflects_full_match() {
        let mut rng = StdRng::seed_from_u64(22);
        let protein = random_protein(30, &mut rng);
        let coding = coding_rna_for(&protein, &mut rng);
        let background = random_rna(2000, &mut rng);
        let reference = plant(&background, &coding, 600);
        let result = tblastn_search(&protein, &reference, &TblastnConfig::default());
        let best = result.hsps.iter().map(|h| h.score).max().unwrap();
        let self_score: i32 = protein.iter().map(|&a| blosum62(a, a)).sum();
        assert!(
            best >= self_score * 9 / 10,
            "best {best} vs self-score {self_score}"
        );
    }

    #[test]
    fn random_reference_yields_few_hits() {
        let mut rng = StdRng::seed_from_u64(23);
        let protein = random_protein(50, &mut rng);
        let reference = random_rna(30_000, &mut rng);
        let result = tblastn_search(&protein, &reference, &TblastnConfig::default());
        assert!(
            result.hsps.len() < 5,
            "unexpected hits in random data: {}",
            result.hsps.len()
        );
        assert!(result.stats.words_scanned > 25_000);
    }

    #[test]
    fn two_hit_reduces_extensions() {
        let mut rng = StdRng::seed_from_u64(24);
        let protein = random_protein(40, &mut rng);
        let reference = random_rna(20_000, &mut rng);
        let two_hit = tblastn_search(&protein, &reference, &TblastnConfig::default());
        let one_hit = tblastn_search(
            &protein,
            &reference,
            &TblastnConfig {
                two_hit: false,
                ..TblastnConfig::default()
            },
        );
        assert!(
            two_hit.stats.ungapped_extensions < one_hit.stats.ungapped_extensions,
            "two-hit {} vs one-hit {}",
            two_hit.stats.ungapped_extensions,
            one_hit.stats.ungapped_extensions
        );
    }

    #[test]
    fn parallel_matches_serial_hits() {
        let mut rng = StdRng::seed_from_u64(25);
        let protein = random_protein(35, &mut rng);
        let coding = coding_rna_for(&protein, &mut rng);
        let background = random_rna(40_000, &mut rng);
        let reference = plant(&background, &coding, 17_000);

        let serial = tblastn_search(&protein, &reference, &TblastnConfig::default());
        let parallel = tblastn_search_parallel(&protein, &reference, &TblastnConfig::default(), 4);

        // The planted hit must be found by both.
        let near = |hs: &[Hsp]| {
            hs.iter()
                .any(|h| h.nucleotide_pos.abs_diff(17_000) < 3 * 35)
        };
        assert!(near(&serial.hsps));
        assert!(near(&parallel.hsps));
        // Parallel finds at least everything serial finds (it may find
        // boundary duplicates which dedup removes).
        let serial_best = serial.hsps.iter().map(|h| h.score).max().unwrap_or(0);
        let parallel_best = parallel.hsps.iter().map(|h| h.score).max().unwrap_or(0);
        assert_eq!(serial_best, parallel_best);
    }

    #[test]
    fn ungapped_extension_grows_score() {
        let mut rng = StdRng::seed_from_u64(26);
        let protein = random_protein(20, &mut rng);
        // frame = query itself: extension from the middle should reach the
        // full self-score.
        let q = protein.as_slice();
        let score = ungapped_extend(q, q, 8, 8, 3, 1000);
        let self_score: i32 = q.iter().map(|&a| blosum62(a, a)).sum();
        assert_eq!(score, self_score);
    }

    #[test]
    fn stats_counters_are_populated() {
        let mut rng = StdRng::seed_from_u64(27);
        let protein = random_protein(30, &mut rng);
        let coding = coding_rna_for(&protein, &mut rng);
        let background = random_rna(5_000, &mut rng);
        let reference = plant(&background, &coding, 1_200);
        let result = tblastn_search(&protein, &reference, &TblastnConfig::default());
        assert!(result.stats.words_scanned > 0);
        assert!(result.stats.seed_hits > 0);
        assert!(result.stats.ungapped_extensions > 0);
        assert!(result.stats.gapped_extensions > 0);
        assert!(result.stats.dp_cells > 0);
    }

    #[test]
    fn empty_query_or_reference() {
        let empty_q = ProteinSeq::new();
        let reference: RnaSeq = "ACGUACGUACGU".parse().unwrap();
        let r = tblastn_search(&empty_q, &reference, &TblastnConfig::default());
        assert!(r.hsps.is_empty());
        let q: ProteinSeq = "MKWVF".parse().unwrap();
        let r = tblastn_search(&q, &RnaSeq::new(), &TblastnConfig::default());
        assert!(r.hsps.is_empty());
    }
}
