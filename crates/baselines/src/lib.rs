//! # fabp-baselines — the comparison algorithms of the paper's evaluation
//!
//! * [`sw`] — Smith–Waterman local alignment (linear/affine gaps, protein
//!   BLOSUM62 and nucleotide scoring, banded variant): the DP ground truth
//!   for the accuracy experiment and the gapped stage of TBLASTN.
//! * [`kmer`] — BLAST-style query word index with BLOSUM62 neighbourhood
//!   seeding.
//! * [`tblastn`] — the TBLASTN-like pipeline (3-frame translation, two-hit
//!   seeding, X-drop ungapped extension, banded gapped extension), serial
//!   and multi-threaded: the paper's CPU baseline.
//! * [`gpu`] — the brute-force data-parallel kernel of the paper's CUDA
//!   implementation, with work counters for the GPU performance model.

pub mod gpu;
pub mod kmer;
pub mod needleman;
pub mod sw;
pub mod tblastn;

pub use gpu::{brute_force_search, FusedQuery, GpuSearchResult};
pub use kmer::WordIndex;
pub use needleman::{needleman_wunsch, GlobalAlignment};
pub use sw::{sw_nucleotide, sw_protein, GapPenalties, LocalAlignment, NucScoring};
pub use tblastn::{tblastn_search, tblastn_search_parallel, Hsp, SearchResult, TblastnConfig};
