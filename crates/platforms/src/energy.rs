//! Energy accounting and Fig. 6-style normalisation.

use std::fmt;

/// One platform's result for one workload: time and power, from which
/// energy and the paper's normalised metrics derive.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformPoint {
    /// Platform label ("TBLASTN-1", "TBLASTN-12", "GPU", "FabP").
    pub name: String,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Average power in watts.
    pub watts: f64,
}

impl PlatformPoint {
    /// Creates a point.
    pub fn new(name: impl Into<String>, seconds: f64, watts: f64) -> PlatformPoint {
        PlatformPoint {
            name: name.into(),
            seconds,
            watts,
        }
    }

    /// Energy in joules.
    pub fn joules(&self) -> f64 {
        self.seconds * self.watts
    }

    /// Speedup of `self` relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &PlatformPoint) -> f64 {
        baseline.seconds / self.seconds
    }

    /// Energy-efficiency gain of `self` relative to `baseline` (>1 means
    /// less energy).
    pub fn energy_gain_vs(&self, baseline: &PlatformPoint) -> f64 {
        baseline.joules() / self.joules()
    }
}

impl fmt::Display for PlatformPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.4} s @ {:.1} W = {:.2} J",
            self.name,
            self.seconds,
            self.watts,
            self.joules()
        )
    }
}

/// Normalised Fig. 6 row: every platform's speedup and energy gain
/// relative to the first point (the paper normalises "to the single-thread
/// execution time and energy consumption of the TBLASTN running on a
/// single core", §IV-A).
pub fn normalize(points: &[PlatformPoint]) -> Vec<(String, f64, f64)> {
    let Some(baseline) = points.first() else {
        return Vec::new();
    };
    points
        .iter()
        .map(|p| {
            (
                p.name.clone(),
                p.speedup_vs(baseline),
                p.energy_gain_vs(baseline),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_is_time_times_power() {
        let p = PlatformPoint::new("x", 2.0, 10.0);
        assert_eq!(p.joules(), 20.0);
    }

    #[test]
    fn speedup_and_energy_relative() {
        let slow = PlatformPoint::new("cpu", 10.0, 100.0);
        let fast = PlatformPoint::new("fpga", 0.5, 10.0);
        assert_eq!(fast.speedup_vs(&slow), 20.0);
        assert_eq!(fast.energy_gain_vs(&slow), 200.0);
        assert!((slow.speedup_vs(&slow) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_uses_first_as_baseline() {
        let points = vec![
            PlatformPoint::new("base", 8.0, 50.0),
            PlatformPoint::new("better", 2.0, 25.0),
        ];
        let rows = normalize(&points);
        assert_eq!(rows[0].1, 1.0);
        assert_eq!(rows[0].2, 1.0);
        assert_eq!(rows[1].1, 4.0);
        assert_eq!(rows[1].2, 8.0);
    }

    #[test]
    fn normalize_empty_is_empty() {
        assert!(normalize(&[]).is_empty());
    }
}
