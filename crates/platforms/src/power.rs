//! Platform power constants and their calibration.
//!
//! The paper reports energy-efficiency ratios rather than absolute power;
//! the constants below are physically plausible for the named hardware and
//! were chosen so the modelled ratios land on the paper's headline numbers
//! (documented per constant; re-derived in `EXPERIMENTS.md`):
//!
//! * FabP vs GPU energy efficiency 23.2×: `250 W / 11.6 W × 1.081 ≈ 23.3`.
//! * FabP vs 12-thread CPU 266.8×: `125 W / 11.6 W × 24.8 ≈ 267`.

/// Intel i7-8700K package power running one AVX2-heavy thread.
pub const CPU_SINGLE_THREAD_W: f64 = 55.0;

/// Intel i7-8700K package + DRAM power with all 12 hardware threads busy
/// (above the 95 W TDP, as sustained AVX loads on this part are).
pub const CPU_TWELVE_THREAD_W: f64 = 125.0;

/// NVIDIA GTX 1080Ti board power under full kernel load.
pub const GPU_W: f64 = 250.0;

/// Kintex-7 board power while the FabP kernel runs (mid-range FPGA plus
/// DRAM).
pub const FPGA_W: f64 = 11.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_reproduce_paper_headlines() {
        // Energy efficiency = (P_other × t_other) / (P_fabp × t_fabp).
        let gpu_ratio = GPU_W / FPGA_W * 1.081; // GPU 8.1% slower
        assert!((gpu_ratio - 23.3).abs() < 0.5, "gpu ratio {gpu_ratio}");
        let cpu_ratio = CPU_TWELVE_THREAD_W / FPGA_W * 24.8; // CPU 24.8x slower
        assert!((cpu_ratio - 266.8).abs() < 8.0, "cpu ratio {cpu_ratio}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the calibration table's ordering
    fn power_ordering_is_sane() {
        assert!(FPGA_W < CPU_SINGLE_THREAD_W);
        assert!(CPU_SINGLE_THREAD_W < CPU_TWELVE_THREAD_W);
        assert!(CPU_TWELVE_THREAD_W < GPU_W);
    }
}
