//! Execution-time models per platform.

use crate::workload::Workload;

/// Linear extrapolation of a measured run to a larger reference.
///
/// Every platform's search time is linear in the reference length for a
/// fixed query (one streaming pass), so a measurement on `measured_bases`
/// scales to the paper's 1 GB faithfully.
///
/// # Examples
///
/// ```
/// use fabp_platforms::models::scale_to_reference;
/// // 0.5 s over 16 Mbase -> 31.25 s over 1 Gbase.
/// let scaled = scale_to_reference(0.5, 16_000_000, 1_000_000_000);
/// assert!((scaled - 31.25).abs() < 1e-9);
/// ```
pub fn scale_to_reference(measured_seconds: f64, measured_bases: u64, target_bases: u64) -> f64 {
    assert!(measured_bases > 0, "measured run must be non-empty");
    measured_seconds * target_bases as f64 / measured_bases as f64
}

/// Thread-count scaling for the CPU baseline.
///
/// The paper's 12-thread TBLASTN is modelled from the single-thread
/// measurement via Amdahl-style parallel efficiency (the search is
/// embarrassingly parallel over reference chunks; efficiency < 1 captures
/// memory-bandwidth and turbo-frequency loss).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuScaling {
    /// Worker threads.
    pub threads: usize,
    /// Fraction of ideal speedup retained (0–1].
    pub parallel_efficiency: f64,
}

impl CpuScaling {
    /// Single thread: no scaling.
    pub fn single() -> CpuScaling {
        CpuScaling {
            threads: 1,
            parallel_efficiency: 1.0,
        }
    }

    /// The paper's 12-thread configuration with a typical 0.75 efficiency
    /// (i7-8700K: 6 cores / 12 SMT threads; SMT yields well under 2×).
    pub fn twelve_threads() -> CpuScaling {
        CpuScaling {
            threads: 12,
            parallel_efficiency: 0.75,
        }
    }

    /// Effective speedup over one thread.
    pub fn speedup(&self) -> f64 {
        1.0f64.max(self.threads as f64 * self.parallel_efficiency)
    }

    /// Applies the scaling to a single-thread time.
    pub fn apply(&self, single_thread_seconds: f64) -> f64 {
        single_thread_seconds / self.speedup()
    }
}

/// GTX 1080Ti brute-force kernel model.
///
/// The kernel performs `positions × L_q` element comparisons
/// ([`Workload::comparisons`]); the effective throughput folds in ALU
/// width (SIMD-within-register packing of 2-bit elements), occupancy and
/// memory behaviour. The default is **calibrated** so the modelled
/// GPU-vs-FabP gap averages the paper's 8.1 % over the query sweep —
/// the per-length *shape* then falls out of the model (GPU ahead on short
/// queries, behind once FabP's segmentation plateau matches it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Element comparisons per second.
    pub comparisons_per_second: f64,
    /// Fixed per-search overhead (kernel launches, result read-back).
    pub overhead_seconds: f64,
}

impl Default for GpuModel {
    fn default() -> GpuModel {
        GpuModel {
            // 3584 CUDA cores × 1.58 GHz ≈ 5.7e12 ALU ops/s; ~2 packed
            // 2-bit comparisons per op with dp4a-style packing. Calibrated
            // together with the overhead so the GPU-vs-FabP gap averages
            // the paper's 8.1% over the 50–250 aa sweep.
            comparisons_per_second: 1.07e13,
            overhead_seconds: 6.0e-3,
        }
    }
}

impl GpuModel {
    /// Modelled execution time for a workload.
    pub fn seconds(&self, workload: &Workload) -> f64 {
        self.overhead_seconds + workload.comparisons() as f64 / self.comparisons_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_linear() {
        assert_eq!(scale_to_reference(1.0, 100, 200), 2.0);
        assert_eq!(scale_to_reference(4.0, 1000, 250), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn scaling_rejects_zero_measurement() {
        let _ = scale_to_reference(1.0, 0, 100);
    }

    #[test]
    fn twelve_threads_speedup() {
        let s = CpuScaling::twelve_threads();
        assert!((s.speedup() - 9.0).abs() < 1e-9);
        assert!((s.apply(9.0) - 1.0).abs() < 1e-9);
        assert_eq!(CpuScaling::single().speedup(), 1.0);
    }

    #[test]
    fn gpu_time_grows_linearly_with_query() {
        let gpu = GpuModel::default();
        let short = gpu.seconds(&Workload::paper_scale(50));
        let long = gpu.seconds(&Workload::paper_scale(250));
        let ratio = (long - gpu.overhead_seconds) / (short - gpu.overhead_seconds);
        assert!((ratio - 5.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn gpu_paper_scale_magnitude() {
        // 250-aa query over 1 Gbase: 7.5e11 comparisons / 1.05e13 ≈ 71 ms.
        let gpu = GpuModel::default();
        let t = gpu.seconds(&Workload::paper_scale(250));
        assert!((0.05..0.12).contains(&t), "t = {t}");
    }
}
