//! Calibration of the CPU baseline against NCBI TBLASTN.
//!
//! The paper's CPU numbers come from NCBI's TBLASTN binary — two decades
//! of SIMD tuning. This reproduction measures its own from-scratch
//! pipeline, which is algorithmically faithful but slower per scanned
//! base; ratios against the CPU therefore inflate by the implementation
//! gap. This module quantifies that gap so the harness can report both the
//! raw and the implementation-normalised ratios (EXPERIMENTS.md E1/E2).

/// Single-thread reference-scan rate (bases/second) implied for NCBI
/// TBLASTN by the paper's own numbers.
///
/// Derivation: the paper reports FabP 24.8× faster than 12-thread
/// TBLASTN. Our cycle model puts FabP's 1 Gbase kernel at 20.5–58.6 ms
/// over the query sweep (mean ≈ 39 ms), giving a 12-thread TBLASTN time
/// of ≈ 0.97 s/Gbase. De-rating by the 9× twelve-thread speedup
/// ([`crate::models::CpuScaling::twelve_threads`]) yields ≈ 1.1×10⁸
/// bases/s for one thread.
pub const NCBI_SINGLE_THREAD_SCAN_RATE: f64 = 1.1e8;

/// The implementation factor: how much slower the measured scanner is
/// than NCBI's, `>= 1` in practice.
///
/// # Panics
///
/// Panics if the measurement is non-positive.
pub fn implementation_factor(measured_bases: u64, measured_seconds: f64) -> f64 {
    assert!(
        measured_bases > 0 && measured_seconds > 0.0,
        "measurement must be positive"
    );
    let measured_rate = measured_bases as f64 / measured_seconds;
    NCBI_SINGLE_THREAD_SCAN_RATE / measured_rate
}

/// Normalises a FabP-vs-CPU ratio by the implementation factor — the
/// ratio the paper's NCBI-based baseline would have produced.
pub fn normalize_cpu_ratio(raw_ratio: f64, factor: f64) -> f64 {
    raw_ratio / factor.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_of_ncbi_rate_is_one() {
        let f = implementation_factor(110_000_000, 1.0);
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slower_scanner_has_larger_factor() {
        // 10 Mbase in 1 s = 11x slower than NCBI's implied rate.
        let f = implementation_factor(10_000_000, 1.0);
        assert!((f - 11.0).abs() < 1e-9);
        assert!((normalize_cpu_ratio(275.0, f) - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_measurement_panics() {
        let _ = implementation_factor(0, 1.0);
    }
}
