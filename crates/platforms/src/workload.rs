//! Workload descriptors shared by all platform models.

use std::fmt;

/// One evaluation point: a protein query of `query_aa` residues searched
/// against `reference_bases` nucleotides.
///
/// The paper sweeps `query_aa ∈ {50, 100, 150, 200, 250}` against 1 GB of
/// NCBI `nt` (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Query length in amino-acid residues.
    pub query_aa: usize,
    /// Reference length in nucleotides.
    pub reference_bases: u64,
}

impl Workload {
    /// The paper's reference size: 1 GB of FASTA ≈ 10⁹ nucleotides.
    pub const PAPER_REFERENCE_BASES: u64 = 1_000_000_000;

    /// The paper's query-length sweep.
    pub const PAPER_QUERY_SWEEP: [usize; 5] = [50, 100, 150, 200, 250];

    /// Creates a workload.
    pub fn new(query_aa: usize, reference_bases: u64) -> Workload {
        Workload {
            query_aa,
            reference_bases,
        }
    }

    /// A paper-scale workload (1 GB reference) for the given query length.
    pub fn paper_scale(query_aa: usize) -> Workload {
        Workload::new(query_aa, Self::PAPER_REFERENCE_BASES)
    }

    /// Back-translated query length in elements (`3 ×` residues, §IV-A).
    pub fn query_elements(&self) -> usize {
        self.query_aa * 3
    }

    /// Packed reference size in bytes (2 bits per base) — the FPGA DRAM
    /// traffic.
    pub fn packed_reference_bytes(&self) -> u64 {
        self.reference_bases.div_ceil(4)
    }

    /// Alignment positions (`L_r − L_q + 1`).
    pub fn positions(&self) -> u64 {
        self.reference_bases
            .saturating_sub(self.query_elements() as u64)
            + 1
    }

    /// Element comparisons a brute-force kernel performs.
    pub fn comparisons(&self) -> u64 {
        self.positions() * self.query_elements() as u64
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} aa query vs {:.1} Mbase reference",
            self.query_aa,
            self.reference_bases as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_are_three_per_residue() {
        assert_eq!(Workload::new(50, 1000).query_elements(), 150);
        assert_eq!(Workload::new(250, 1000).query_elements(), 750);
    }

    #[test]
    fn packed_bytes_are_quarter_of_bases() {
        assert_eq!(Workload::new(50, 1000).packed_reference_bytes(), 250);
        assert_eq!(Workload::new(50, 1001).packed_reference_bytes(), 251);
    }

    #[test]
    fn comparisons_scale_with_both_dimensions() {
        let w = Workload::new(50, 10_000);
        assert_eq!(w.positions(), 10_000 - 150 + 1);
        assert_eq!(w.comparisons(), (10_000 - 150 + 1) * 150);
    }

    #[test]
    fn paper_scale_constants() {
        let w = Workload::paper_scale(250);
        assert_eq!(w.reference_bases, 1_000_000_000);
        assert_eq!(Workload::PAPER_QUERY_SWEEP.len(), 5);
    }
}
