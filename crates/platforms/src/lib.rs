//! # fabp-platforms — performance and energy models for the evaluation
//!
//! Fig. 6 compares four platforms: single-thread TBLASTN, 12-thread
//! TBLASTN (Intel i7-8700K), the authors' CUDA kernel (GTX 1080Ti) and
//! FabP (Kintex-7). The CPU baseline is *measured* on the real Rust
//! implementation and linearly extrapolated to the paper's 1 GB
//! reference; the GPU and FPGA are *modelled* (no CUDA device or FPGA is
//! available — see DESIGN.md's substitution table):
//!
//! * the GPU model charges the brute-force kernel's element-comparison
//!   count against a calibrated effective throughput;
//! * the FPGA time comes from `fabp-fpga`'s cycle model.
//!
//! Power constants reproduce the paper's energy ratios: the
//! [`power`] module documents each calibration.

pub mod calibration;
pub mod energy;
pub mod models;
pub mod power;
pub mod workload;

pub use calibration::{implementation_factor, normalize_cpu_ratio};
pub use energy::{normalize, PlatformPoint};
pub use models::{scale_to_reference, CpuScaling, GpuModel};
pub use workload::Workload;
